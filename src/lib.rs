//! Umbrella package for the ANNODA reproduction workspace.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the actual library
//! code lives in the `crates/` workspace members.

pub use annoda;
pub use annoda_baselines as baselines;
pub use annoda_lorel as lorel;
pub use annoda_match as matcher;
pub use annoda_mediator as mediator;
pub use annoda_oem as oem;
pub use annoda_sources as sources;
pub use annoda_wrap as wrap;
