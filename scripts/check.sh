#!/usr/bin/env bash
# Full local gate: everything CI would run, offline.
#
#   scripts/check.sh            # build + tests + fmt + clippy
#
# The build is fully vendored (see vendor/), so --offline always works.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo build --examples =="
cargo build --release --offline --examples

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== crash-consistency harness (annoda-persist) =="
cargo test -q --offline --test persist_recovery

echo "== serve loadgen smoke (B8) =="
cargo run --release --offline -p annoda-bench --bin bench_report -- serve --smoke

echo "== persistence smoke (B9) =="
cargo run --release --offline -p annoda-bench --bin bench_report -- persist --smoke

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== OK =="
