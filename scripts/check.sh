#!/usr/bin/env bash
# Full local gate: everything CI would run, offline.
#
#   scripts/check.sh            # build + tests + fmt + clippy
#
# The build is fully vendored (see vendor/), so --offline always works.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo build --examples =="
cargo build --release --offline --examples

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== crash-consistency harness (annoda-persist) =="
cargo test -q --offline --test persist_recovery

# The B12 smoke run fails if throughput at 16 connections drops below
# throughput at 1 connection — the event-loop regression guard.
echo "== serve loadgen smoke (B12) =="
cargo run --release --offline -p annoda-bench --bin bench_report -- serve --smoke

echo "== persistence smoke (B9) =="
cargo run --release --offline -p annoda-bench --bin bench_report -- persist --smoke

echo "== query-serving smoke (B10) =="
cargo run --release --offline -p annoda-bench --bin bench_report -- query-serve --smoke

echo "== federation smoke (B11) =="
cargo run --release --offline -p annoda-bench --bin bench_report -- federation --smoke

# The B13 smoke keeps the full 10k-locus corpus and fails if indexed
# top-k diverges from the naive-scan oracle (recall < 1.0), if the p50
# speedup falls under 10x, or if the tri-source locus stops outranking
# single-source hits; writes BENCH_search.json.
echo "== ranked-search smoke (B13) =="
cargo run --release --offline -p annoda-bench --bin bench_report -- search --smoke

# The B14 smoke spins up a leader plus two WAL-shipping followers,
# checks aggregate read throughput does not fall as serving nodes are
# added, and fails if follower lag does not converge to zero after the
# write load stops.
echo "== replication smoke (B14) =="
cargo run --release --offline -p annoda-bench --bin bench_report -- replication --smoke

# The B15 smoke shards the store 1 -> 2 -> 4 ways under 4 concurrent
# MVCC writers and fails if commit throughput stops growing with the
# shard count or concurrent readers' pinned-snapshot p99 leaves 2x of
# the idle baseline; writes BENCH_sharded.json.
echo "== sharded MVCC store smoke (B15) =="
cargo run --release --offline -p annoda-bench --bin bench_report -- sharded --smoke

# The B16 smoke tails a live change feed into a serving node under a
# mixed read load and fails if read p99 leaves 2x of the idle baseline
# at any mutation rate, or if the absorbed state is not byte-identical
# to a full re-fetch; writes BENCH_stream.json.
echo "== streaming change-feed smoke (B16) =="
cargo run --release --offline -p annoda-bench --bin bench_report -- stream --smoke

echo "== sharded store byte-identity + commit-conflict properties =="
cargo test -q --offline --test sharded_props

echo "== kill-the-leader failover e2e (leader + 2 followers over TCP) =="
cargo test -q --offline --test replica_e2e

echo "== replication resume/corruption properties =="
cargo test -q --offline --test replica_props

echo "== stream absorb-equivalence + resume properties =="
cargo test -q --offline --test stream_props

echo "== kill-the-source feed failover e2e (tailer resumes at acked seq) =="
cargo test -q --offline -p annoda-stream

echo "== federation e2e (3 source-servers over TCP) =="
cargo test -q --offline --test federation_e2e

echo "== parallel evaluator equivalence =="
cargo test -q --offline -p annoda-lorel --test parallel_oracle

echo "== parallel evaluator under ThreadSanitizer (nightly-only, best effort) =="
# TSan needs a nightly toolchain with rust-src for -Zbuild-std; skip
# cleanly when the box doesn't have one, but propagate real test
# failures when it does.
if rustup toolchain list 2>/dev/null | grep -q nightly \
    && rustup component list --toolchain nightly 2>/dev/null \
        | grep -q 'rust-src (installed)'; then
    RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -q --offline \
        -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" \
        -p annoda-lorel --test parallel_oracle -- wide_store_join_is_deterministic_across_worker_counts
else
    echo "(skipped: no nightly toolchain with rust-src installed)"
fi

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== OK =="
