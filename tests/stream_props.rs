//! Property tests for the streaming change feed (satellites of the
//! annoda-stream subsystem):
//!
//! 1. Absorbing any sequence of record-level changes — upserts and
//!    deletes, split into arbitrary batches — leaves the serve node in
//!    exactly the state a full re-fetch would build: the assembled GML
//!    is byte-identical and ranked search returns identical answers.
//!    Incremental absorption is an optimisation, never a divergence.
//! 2. Every sequence inside the journal's window is a valid resume
//!    point (the feed has no privileged starting offset — the same
//!    property the replica tier holds for WAL byte boundaries), a
//!    compacted sequence is always refused, and a full-state bootstrap
//!    converges to the same bytes no matter what the subscriber had
//!    absorbed before.

use proptest::prelude::*;

use annoda::{Annoda, DurableSystem, FusionStrategy};
use annoda_federation::{ChangeJournal, ChangeRecord};
use annoda_persist::encode_store;
use annoda_sources::{Corpus, CorpusConfig};
use annoda_wrap::{scripted_mutation, LocusLinkWrapper, Wrapper};

const SOURCE: &str = "LocusLink";
const SEED: u64 = 77;

fn corpus() -> Corpus {
    Corpus::generate(CorpusConfig::tiny(SEED))
}

fn system_over(c: &Corpus) -> DurableSystem {
    let (a, _) = Annoda::over_sources(c.locuslink.clone(), c.go.clone(), c.omim.clone());
    DurableSystem::new_sharded(a, 3).expect("shard the store")
}

/// Canonical bytes of the system's assembled GML snapshot.
fn state_bytes(sys: &DurableSystem) -> Vec<u8> {
    encode_store(&sys.query_snapshot().expect("snapshot").store)
}

/// Ranked search answers, rendered for comparison (the stores being
/// byte-identical makes Debug equality exact, floats included).
fn search_fingerprint(sys: &DurableSystem) -> String {
    let snap = sys.query_snapshot().expect("snapshot");
    format!(
        "{:?}",
        DurableSystem::search_on(&snap, "revised annotation", 5, FusionStrategy::Rrf)
    )
}

/// Drives the upstream wrapper through `ops`, returning the change
/// records a source-server would journal: `(pick, true)` deletes the
/// picked locus, `(pick, false)` runs one scripted upsert.
fn run_ops(
    upstream: &mut Box<dyn Wrapper>,
    ids: &[String],
    ops: &[(u8, bool)],
) -> Vec<ChangeRecord> {
    let mut records = Vec::new();
    let mut step = 0u64;
    for (pick, delete) in ops {
        if *delete {
            let key = ids[*pick as usize % ids.len()].clone();
            upstream
                .apply_change(&key, None)
                .expect("deletes are idempotent");
            records.push(ChangeRecord { key, flat: None });
        } else if let Some((key, flat)) = scripted_mutation(&mut **upstream, SEED, step) {
            step += 1;
            records.push(ChangeRecord {
                key,
                flat: Some(flat),
            });
        }
    }
    records
}

/// The state a non-streaming node reaches: apply every record straight
/// to the wrapper, then pull-refresh once.
fn full_refetch(c: &Corpus, records: &[ChangeRecord]) -> DurableSystem {
    let mut control = system_over(c);
    {
        let w = control
            .annoda_mut()
            .registry_mut()
            .mediator_mut()
            .wrapper_mut(SOURCE)
            .expect("control wrapper");
        for rec in records {
            w.apply_change(&rec.key, rec.flat.as_deref())
                .expect("replay change");
        }
    }
    control.refresh_source(SOURCE).expect("full re-fetch");
    control
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Incremental absorption under any batching is indistinguishable
    /// from a full re-fetch: same assembled bytes, same search answers.
    #[test]
    fn absorb_under_any_batching_matches_full_refetch(
        ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..16),
        chunk in 1usize..5,
    ) {
        let c = corpus();
        let ids: Vec<String> = c
            .locuslink
            .scan()
            .map(|r| r.locus_id.to_string())
            .collect();
        let mut upstream: Box<dyn Wrapper> =
            Box::new(LocusLinkWrapper::new(c.locuslink.clone()));
        let records = run_ops(&mut upstream, &ids, &ops);

        let mut streamed = system_over(&c);
        for batch in records.chunks(chunk) {
            streamed.absorb_delta(SOURCE, batch, false).expect("absorb batch");
        }

        let control = full_refetch(&c, &records);
        prop_assert_eq!(state_bytes(&streamed), state_bytes(&control),
            "absorbed store assembly must be byte-identical to a full re-fetch");
        prop_assert_eq!(search_fingerprint(&streamed), search_fingerprint(&control),
            "ranked search must agree answer-for-answer");
    }

    /// Every journal sequence is a valid resume point, compacted
    /// sequences are refused, and a bootstrap converges regardless of
    /// what came before it.
    #[test]
    fn every_feed_seq_resumes_to_the_same_state(
        picks in proptest::collection::vec(any::<u8>(), 2..9),
        cap in 4usize..12,
        batch_max in 1usize..4,
    ) {
        let c = corpus();
        let ids: Vec<String> = c
            .locuslink
            .scan()
            .map(|r| r.locus_id.to_string())
            .collect();
        let mut upstream: Box<dyn Wrapper> =
            Box::new(LocusLinkWrapper::new(c.locuslink.clone()));
        let ops: Vec<(u8, bool)> = picks.iter().map(|p| (*p, p % 3 == 0)).collect();
        let records = run_ops(&mut upstream, &ids, &ops);

        let journal = ChangeJournal::new(cap);
        for rec in &records {
            journal.append(rec.clone());
        }
        let window = journal.window();
        prop_assert_eq!(window.head, records.len() as u64);

        let reference = {
            let mut sys = system_over(&c);
            sys.absorb_delta(SOURCE, &records, false).expect("absorb all");
            state_bytes(&sys)
        };

        // A subscriber holding the first `from_seq - 1` records resumes
        // mid-window and converges — for *every* in-window position
        // (head + 1 is the caught-up subscriber).
        for from_seq in window.tail..=window.head + 1 {
            let mut sys = system_over(&c);
            let prefix = &records[..(from_seq - 1) as usize];
            if !prefix.is_empty() {
                sys.absorb_delta(SOURCE, prefix, false).expect("absorb prefix");
            }
            let mut at = from_seq;
            loop {
                let batch = journal
                    .replay_from(at, batch_max)
                    .expect("in-window seq must replay");
                let Some((last, _)) = batch.last() else { break };
                at = last + 1;
                let recs: Vec<ChangeRecord> =
                    batch.into_iter().map(|(_, r)| r).collect();
                sys.absorb_delta(SOURCE, &recs, false).expect("absorb replay");
            }
            prop_assert_eq!(&state_bytes(&sys), &reference,
                "resume from seq {} must converge", from_seq);
        }

        // Below the window only a bootstrap is possible — and a
        // bootstrap erases whatever partial state came before it.
        if window.tail > 1 {
            prop_assert!(journal.replay_from(window.tail - 1, batch_max).is_none(),
                "compacted seq must force a bootstrap");
        }
        let dump: Vec<ChangeRecord> = upstream
            .change_dump()
            .expect("dump upstream")
            .into_iter()
            .map(|(key, flat)| ChangeRecord { key, flat: Some(flat) })
            .collect();
        let mut sys = system_over(&c);
        let head = records.len().min(2);
        sys.absorb_delta(SOURCE, &records[..head], false).expect("absorb prefix");
        sys.absorb_delta(SOURCE, &dump, true).expect("absorb bootstrap");
        prop_assert_eq!(&state_bytes(&sys), &reference,
            "a bootstrap replaces prior state byte-for-byte");
    }
}
