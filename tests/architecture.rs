//! F1 — the Figure 1 architecture, verified end to end: each component
//! hands off to the next exactly as the diagram wires them.

use annoda::{Annoda, QuestionBuilder};
use annoda_match::SchemaExtract;
use annoda_mediator::GmlBuilder;
use annoda_sources::{Corpus, CorpusConfig};

fn corpus() -> Corpus {
    Corpus::generate(CorpusConfig::tiny(42))
}

#[test]
fn wrappers_export_oml_local_models() {
    let c = corpus();
    let (annoda, _) = Annoda::over_sources(c.locuslink, c.go, c.omim);
    for name in ["LocusLink", "GO", "OMIM"] {
        let w = annoda.mediator().wrapper(name).expect("wrapper registered");
        let oml = w.oml();
        assert!(oml.named(name).is_some(), "{name} OML has its root");
        assert!(oml.len() > 10, "{name} OML is populated");
        assert!(!w.schema_paths().is_empty());
    }
}

#[test]
fn mapping_module_connects_oml_to_gml() {
    let c = corpus();
    let (annoda, reports) = Annoda::over_sources(c.locuslink, c.go, c.omim);
    // Every source produced rules against the Figure 4 global schema.
    for r in &reports {
        assert!(r.matched > 0, "{} matched nothing", r.source);
        assert!(!r.entities.is_empty());
    }
    // And the schema extract of the exemplar is what they matched into.
    let exemplar = GmlBuilder::exemplar();
    let glb = SchemaExtract::from_store(&exemplar, "ANNODA-GML", 2);
    assert!(glb.get("Gene.Symbol").is_some());
    assert!(glb.get("Disease.DiseaseID").is_some());
    let _ = annoda;
}

#[test]
fn mediator_decomposes_executes_and_fuses() {
    let c = corpus();
    let (annoda, _) = Annoda::over_sources(c.locuslink.clone(), c.go.clone(), c.omim.clone());
    let question = QuestionBuilder::new()
        .require_go_function()
        .exclude_omim_disease()
        .build();

    // Query manager: the plan names each source in its own vocabulary.
    let plan = annoda.mediator().plan(&question);
    let sources: Vec<&str> = plan.steps.iter().map(|s| s.query.source.as_str()).collect();
    assert!(sources.contains(&"LocusLink"));
    assert!(sources.contains(&"GO"));
    assert!(sources.contains(&"OMIM"));
    for step in &plan.steps {
        assert!(
            step.query
                .lorel
                .contains(&format!("from {}", step.query.source)),
            "subquery addresses its source: {}",
            step.query.lorel
        );
    }

    // Execution produces the fused, filtered view.
    let answer = annoda.ask(&question).unwrap();
    for gene in &answer.fused.genes {
        assert!(!gene.functions.is_empty());
        assert!(gene.diseases.is_empty());
        assert!(gene.links.iter().any(|l| l.is_internal()));
    }
    assert!(answer.cost.requests >= 3, "all three sources contacted");
}

#[test]
fn user_interface_reaches_the_stack_without_sql() {
    let c = corpus();
    let (annoda, _) = Annoda::over_sources(c.locuslink, c.go, c.omim);
    // The user's artifact is a form, rendered and compiled for them.
    let builder = QuestionBuilder::new().require_go_function();
    let form = builder.render_form();
    assert!(form.contains("ANNODA query interface"));
    let answer = annoda.ask_form(builder).unwrap();
    assert!(answer.fused.genes.iter().all(|g| !g.functions.is_empty()));
}

#[test]
fn navigation_closes_the_loop() {
    let c = corpus();
    let (annoda, _) = Annoda::over_sources(c.locuslink, c.go, c.omim);
    let answer = annoda
        .ask(&QuestionBuilder::new().require_go_function().build())
        .unwrap();
    let gene = &answer.fused.genes[0];
    let nav = annoda.navigator();
    let link = gene.links.iter().find(|l| l.is_internal()).unwrap();
    let view = nav.follow(link).expect("internal link resolves");
    assert_eq!(view.kind, "gene");
    assert_eq!(view.key, gene.symbol);
}
