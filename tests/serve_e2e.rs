//! End-to-end tests for the annoda-serve HTTP layer, over a real
//! loopback socket: the Figure 5 routes in both formats, malformed and
//! oversized input, overload shedding, and graceful shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use annoda::{Annoda, GeneQuestion};
use annoda_serve::loadgen::read_response;
use annoda_serve::{ServeConfig, Server};
use annoda_sources::{Corpus, CorpusConfig};

fn system() -> Annoda {
    let c = Corpus::generate(CorpusConfig::tiny(42));
    let (mut a, _) = Annoda::over_sources(c.locuslink, c.go, c.omim);
    a.registry_mut().mediator_mut().enable_cache();
    a
}

/// A symbol guaranteed to exist in the corpus the server runs over.
fn known_symbol(a: &Annoda) -> String {
    let answer = a.ask(&GeneQuestion::default()).expect("blank question");
    answer.fused.genes[0].symbol.clone()
}

fn start(config: ServeConfig) -> (Server, String) {
    let a = system();
    let symbol = known_symbol(&a);
    let server = Server::start(a, config).expect("bind ephemeral port");
    (server, symbol)
}

fn ephemeral() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    }
}

/// One request on a fresh connection; returns `(status, body)`.
fn roundtrip(server: &Server, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    let (status, body) = read_response(&mut reader).expect("response");
    (status, String::from_utf8_lossy(&body).into_owned())
}

fn get(server: &Server, path: &str, accept: &str) -> (u16, String) {
    roundtrip(
        server,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nAccept: {accept}\r\nConnection: close\r\n\r\n"),
    )
}

#[test]
fn figure5_routes_serve_text_and_json() {
    let (server, symbol) = start(ephemeral());

    // Figure 5a/5b: the query form → integrated view.
    let (status, text) = get(&server, "/genes?function=require&combine=all", "text/plain");
    assert_eq!(status, 200);
    assert!(text.contains("Annotation integrated view"), "{text}");
    let (status, json) = get(&server, "/genes", "application/json");
    assert_eq!(status, 200);
    assert!(json.starts_with("{\"count\":"), "{json}");
    assert!(json.contains("\"genes\":["));

    // Figure 5c: the individual object view, links as served hrefs.
    let (status, text) = get(&server, &format!("/object/gene/{symbol}"), "text/plain");
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("Individual object view"), "{text}");
    assert!(
        !text.contains("annoda://"),
        "links must be rewritten: {text}"
    );
    let (status, json) = get(
        &server,
        &format!("/object/gene/{symbol}"),
        "application/json",
    );
    assert_eq!(status, 200);
    assert!(json.contains("\"kind\":\"gene\""), "{json}");
    assert!(json.contains("\"href\":"), "{json}");

    // Lorel over POST.
    let query = "select count(GML.Gene) from ANNODA-GML GML";
    let (status, body) = roundtrip(
        &server,
        &format!(
            "POST /lorel HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{query}",
            query.len()
        ),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"rows\":"), "{body}");
    let (status, body) = roundtrip(
        &server,
        &format!(
            "POST /lorel HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{query}",
            query.len()
        ),
    );
    assert_eq!(status, 200);
    assert!(body.contains("answer"), "{body}");

    // Health and metrics.
    let (status, body) = get(&server, "/healthz", "text/plain");
    assert_eq!(status, 200);
    assert!(body.starts_with("ok"));
    let (status, body) = get(&server, "/metrics", "text/plain");
    assert_eq!(status, 200);
    assert!(
        body.contains("annoda_requests_total{route=\"genes\"} 2"),
        "{body}"
    );
    assert!(body.contains("annoda_mediator_cache_hits_total"), "{body}");
    let (status, body) = get(&server, "/metrics", "application/json");
    assert_eq!(status, 200);
    assert!(body.contains("\"queue_depth_high_water\""), "{body}");

    server.shutdown(Duration::from_secs(5));
}

#[test]
fn error_statuses_are_typed() {
    let (server, _symbol) = start(ephemeral());

    // Unknown object kind is the client's mistake: 400.
    let (status, body) = get(&server, "/object/widget/x", "text/plain");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown object kind"), "{body}");
    // A valid kind with a dangling id: 404.
    let (status, body) = get(&server, "/object/gene/NO-SUCH-GENE", "text/plain");
    assert_eq!(status, 404, "{body}");
    // Bad question clause: 400.
    let (status, _) = get(&server, "/genes?combine=sometimes", "text/plain");
    assert_eq!(status, 400);
    let (status, _) = get(&server, "/genes?frobnicate=1", "text/plain");
    assert_eq!(status, 400);
    // Unknown route: 404; wrong method: 405; unacceptable format: 406.
    let (status, _) = get(&server, "/nope", "text/plain");
    assert_eq!(status, 404);
    let (status, _) = roundtrip(
        &server,
        "DELETE /genes HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 405);
    for path in ["/genes", "/healthz", "/metrics", "/object/gene/X"] {
        let (status, _) = get(&server, path, "text/html");
        assert_eq!(status, 406, "{path} should refuse text/html");
    }

    server.shutdown(Duration::from_secs(5));
}

#[test]
fn malformed_and_oversized_requests_close_the_connection() {
    let (server, _symbol) = start(ServeConfig {
        max_head_bytes: 512,
        ..ephemeral()
    });

    // Malformed request line → 400, then EOF.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"NOT A VALID REQUEST\r\n\r\n").unwrap();
    let mut reader = BufReader::new(stream);
    let (status, _) = read_response(&mut reader).unwrap();
    assert_eq!(status, 400);
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection must be closed after 400");

    // Oversized header → 431, then EOF.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let huge = format!(
        "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Pad: {}\r\n\r\n",
        "a".repeat(2048)
    );
    stream.write_all(huge.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let (status, _) = read_response(&mut reader).unwrap();
    assert_eq!(status, 431);
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection must be closed after 431");

    server.shutdown(Duration::from_secs(5));
}

#[test]
fn concurrent_clients_share_one_system() {
    let (server, _symbol) = start(ephemeral());
    let addr = server.addr();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                // Keep-alive: several requests on one connection.
                for _ in 0..5 {
                    writer
                        .write_all(
                            b"GET /genes HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\n\r\n",
                        )
                        .unwrap();
                    let (status, body) = read_response(&mut reader).unwrap();
                    assert_eq!(status, 200);
                    assert!(body.starts_with(b"{"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let (_, metrics) = get(&server, "/metrics", "text/plain");
    assert!(
        metrics.contains("annoda_requests_total{route=\"genes\"} 40"),
        "{metrics}"
    );
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn overload_sheds_with_503_and_retry_after() {
    // One worker, a queue of one, and a slow handler. Eight concurrent
    // connections arrive at once: one occupies the worker, one waits in
    // the queue, and the rest are shed by the acceptor with 503 +
    // Retry-After — immediately, without parsing a byte of them.
    let (server, _symbol) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        handler_delay: Duration::from_secs(1),
        ..ephemeral()
    });
    let addr = server.addr();

    // Open all eight sockets up front (TCP connects complete against
    // the listen backlog immediately, independent of scheduling), so
    // the burst arrives as a burst even on a loaded test host.
    let sockets: Vec<TcpStream> = (0..8)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
                .unwrap();
            s
        })
        .collect();
    let results: Vec<(u16, bool)> = sockets
        .into_iter()
        .map(|s| {
            let mut reader = BufReader::new(s);
            // Read the raw head so the Retry-After header is visible.
            let mut status_line = String::new();
            reader.read_line(&mut status_line).unwrap();
            let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
            let mut retry_after = false;
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap() == 0 || line.trim().is_empty() {
                    break;
                }
                if line.to_ascii_lowercase().starts_with("retry-after:") {
                    retry_after = true;
                }
            }
            (status, retry_after)
        })
        .collect();

    let served = results.iter().filter(|(s, _)| *s == 200).count();
    let shed = results.iter().filter(|(s, _)| *s == 503).count();
    assert_eq!(
        served + shed,
        8,
        "every connection gets an answer: {results:?}"
    );
    // The worker serves one connection and the queue may hold another
    // (whether #2 queues or sheds races with the worker's pop); the
    // bulk of the burst must be shed, and nothing may hang.
    assert!(served >= 1, "the occupied worker still serves: {results:?}");
    assert!(shed >= 4, "excess load must be shed: {results:?}");
    for (status, retry_after) in &results {
        if *status == 503 {
            assert!(retry_after, "503 must advertise Retry-After");
        }
    }

    let gauge = server.app().gauge.clone();
    assert!(gauge.rejected() >= shed as u64);
    assert!(gauge.high_water() >= 1);
    server.shutdown(Duration::from_secs(5));
}

/// Regression for the snapshot-serving refactor: a long-running `/lorel`
/// evaluation must never stall `/healthz`, `/metrics`, or
/// `/admin/refresh`. Before the epoch-swapped `Arc<OemStore>` snapshot,
/// the handler held the system read lock through evaluation, so a slow
/// query serialised every other route behind it.
#[test]
fn slow_lorel_does_not_block_other_routes() {
    // A corpus big enough that the 3-way self-join below runs for a
    // while on one worker (it yields zero rows — the predicate cycle is
    // contradictory — so only binding enumeration costs anything).
    let c = Corpus::generate(CorpusConfig::tiny(42).scaled(4.0));
    let (a, _) = Annoda::over_sources(c.locuslink, c.go, c.omim);
    let server = Server::start(
        a,
        ServeConfig {
            workers: 4,
            ..ephemeral()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    let slow_query = "select count(G) from ANNODA-GML GML, GML.Gene G, GML.Gene H, GML.Gene K \
                      where G.Symbol < H.Symbol and H.Symbol < K.Symbol and K.Symbol < G.Symbol";
    let request = format!(
        "POST /lorel HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{slow_query}",
        slow_query.len()
    );
    let started = std::time::Instant::now();
    let slow = thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream);
        let (status, body) = read_response(&mut reader).unwrap();
        (status, String::from_utf8_lossy(&body).into_owned())
    });
    // Let the slow evaluation get onto a worker.
    thread::sleep(Duration::from_millis(150));

    // Every other route must answer while the query is still running.
    let (status, body) = get(&server, "/healthz", "text/plain");
    assert_eq!(status, 200, "{body}");
    let (status, body) = get(&server, "/metrics", "text/plain");
    assert_eq!(status, 200, "{body}");
    let (status, body) = roundtrip(
        &server,
        "POST /admin/refresh HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200, "refresh must not wait for the query: {body}");
    let others_done = started.elapsed();

    let (status, body) = slow.join().expect("slow client");
    let slow_done = started.elapsed();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"rows\":0"), "{body}");
    assert!(
        slow_done > others_done,
        "the slow query ({slow_done:?}) must still have been in flight when \
         healthz/metrics/refresh finished ({others_done:?}) — otherwise this \
         test proves nothing; grow the corpus"
    );
    server.shutdown(Duration::from_secs(5));
}

/// Sixteen concurrent clients mixing `/lorel`, `/object`, and
/// `/admin/refresh`: every response must be internally consistent with
/// exactly one snapshot epoch (no torn reads across an atomic swap) and
/// nothing may 5xx.
#[test]
fn concurrent_serving_has_no_torn_snapshots() {
    let a = system();
    let symbol = known_symbol(&a);
    let server = Server::start(
        a,
        ServeConfig {
            workers: 8,
            ..ephemeral()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    fn json_int(body: &str, key: &str) -> i64 {
        let pat = format!("\"{key}\":");
        let at = body.find(&pat).unwrap_or_else(|| panic!("{key} in {body}"));
        body[at + pat.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '-')
            .collect::<String>()
            .parse()
            .expect("integer field")
    }

    let query = "select count(GML.Gene) from ANNODA-GML GML";
    let handles: Vec<_> = (0..16)
        .map(|client| {
            let symbol = symbol.clone();
            thread::spawn(move || {
                // (epoch, store_len, rows) triples from /lorel responses.
                let mut observed: Vec<(i64, i64, i64)> = Vec::new();
                for round in 0..6 {
                    let request = match (client + round) % 4 {
                        // A quarter of the traffic churns epochs.
                        0 => "POST /admin/refresh HTTP/1.1\r\nHost: t\r\n\
                              Content-Length: 0\r\nConnection: close\r\n\r\n"
                            .to_string(),
                        1 => format!(
                            "GET /object/gene/{symbol} HTTP/1.1\r\nHost: t\r\n\
                             Accept: application/json\r\nConnection: close\r\n\r\n"
                        ),
                        _ => format!(
                            "POST /lorel HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\n\
                             Content-Length: {}\r\nConnection: close\r\n\r\n{query}",
                            query.len()
                        ),
                    };
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream.write_all(request.as_bytes()).unwrap();
                    let mut reader = BufReader::new(stream);
                    let (status, body) = read_response(&mut reader).unwrap();
                    let body = String::from_utf8_lossy(&body).into_owned();
                    assert!(status < 500, "no 5xx under mixed load: {status} {body}");
                    assert_eq!(status, 200, "{body}");
                    if body.contains("\"epoch\":") {
                        observed.push((
                            json_int(&body, "epoch"),
                            json_int(&body, "store_len"),
                            json_int(&body, "rows"),
                        ));
                    }
                }
                observed
            })
        })
        .collect();

    let mut by_epoch: std::collections::BTreeMap<i64, (i64, i64)> = Default::default();
    for h in handles {
        for (epoch, store_len, rows) in h.join().expect("client thread") {
            // A torn snapshot would pair one epoch's store with
            // another's metadata — every response for an epoch must
            // agree on what that epoch contained.
            let entry = by_epoch.entry(epoch).or_insert((store_len, rows));
            assert_eq!(
                *entry,
                (store_len, rows),
                "epoch {epoch} served inconsistent (store_len, rows)"
            );
        }
    }
    assert!(
        by_epoch.len() >= 2,
        "refreshes must have produced multiple epochs: {by_epoch:?}"
    );
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let (server, _symbol) = start(ServeConfig {
        workers: 2,
        handler_delay: Duration::from_millis(300),
        ..ephemeral()
    });
    let addr = server.addr();

    // A request that will still be in flight when shutdown begins.
    let client = thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /genes HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut reader = BufReader::new(s);
        read_response(&mut reader).expect("in-flight request completes")
    });
    thread::sleep(Duration::from_millis(100));

    let report = server.shutdown(Duration::from_secs(10));
    assert!(report.drained, "pool must drain within the deadline");
    let (status, _) = client.join().expect("client thread");
    assert_eq!(status, 200, "the in-flight request was served, not dropped");
    assert!(report.requests_served >= 1);
}

// ---------------------------------------------------------------------
// Epoch-keyed response cache, conditional requests, and the sharded
// event loop's fairness/admission behaviour.

/// Reads one full response from a keep-alive stream: status, headers
/// (names lowercased), body.
fn read_full<R: BufRead>(reader: &mut R) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("numeric status");
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().unwrap_or(0);
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, headers, body)
}

fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn etag_304_conformance_and_cache_transparency() {
    let (server, _symbol) = start(ephemeral());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    const GET_GENES: &str = "GET /genes HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\n\r\n";

    // Fresh epoch: 200 with a strong generation ETag.
    stream.write_all(GET_GENES.as_bytes()).expect("send");
    let (status, headers, body1) = read_full(&mut reader);
    assert_eq!(status, 200);
    let etag1 = header_value(&headers, "etag")
        .expect("cacheable route carries an ETag")
        .to_string();
    assert!(etag1.starts_with("\"g") && etag1.ends_with('"'), "{etag1}");

    // Same epoch, If-None-Match with the current validator: 304, empty
    // body, validator echoed.
    let conditional = format!(
        "GET /genes HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\n\
         If-None-Match: {etag1}\r\n\r\n"
    );
    stream.write_all(conditional.as_bytes()).expect("send");
    let (status, headers, body) = read_full(&mut reader);
    assert_eq!(status, 304);
    assert!(body.is_empty(), "304 must not carry a body");
    assert_eq!(header_value(&headers, "etag"), Some(etag1.as_str()));

    // A repeat unconditional GET within the epoch is a cache hit and
    // byte-identical to the first response.
    stream.write_all(GET_GENES.as_bytes()).expect("send");
    let (status, _, body2) = read_full(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(body1, body2, "cached response must be byte-identical");
    let cache = server.app().http_cache.snapshot();
    assert!(cache.hits >= 1, "repeat GET must hit the response cache");
    assert!(cache.not_modified >= 1, "conditional GET must count a 304");

    // A refresh turns the epoch: the old validator no longer matches.
    stream
        .write_all(b"POST /admin/refresh HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
        .expect("send");
    let (status, _, _) = read_full(&mut reader);
    assert_eq!(status, 200);
    stream.write_all(conditional.as_bytes()).expect("send");
    let (status, headers, body3) = read_full(&mut reader);
    assert_eq!(status, 200, "a stale validator must get a full response");
    let etag2 = header_value(&headers, "etag")
        .expect("new epoch ETag")
        .to_string();
    assert_ne!(etag1, etag2, "the validator must change across epochs");

    // And the recomputed body matches a repeat (now cached) request.
    stream.write_all(GET_GENES.as_bytes()).expect("send");
    let (status, _, body4) = read_full(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(
        body3, body4,
        "post-refresh cached response must be byte-identical"
    );
    assert!(
        server.app().http_cache.snapshot().epoch_invalidations >= 1,
        "the refresh must have invalidated the cache wholesale"
    );
    server.shutdown(Duration::from_secs(5));
}

/// A search term guaranteed to hit: the first token harvested from a
/// locus-bearing annotation document (the corpus vocabulary is
/// seed-dependent, so the test derives a term instead of pinning one).
fn live_search_term(a: &Annoda) -> String {
    a.mediator()
        .harvest_text_docs()
        .iter()
        .flat_map(|(_, docs)| docs.iter())
        .filter(|d| !d.loci.is_empty())
        .flat_map(|d| annoda_search::tokenize(&d.text))
        .next()
        .expect("tiny corpus harvests at least one locus-bearing doc")
}

#[test]
fn search_route_is_epoch_cached_and_validated() {
    let a = system();
    let term = live_search_term(&a);
    let server = Server::start(a, ephemeral()).expect("bind ephemeral port");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let get_search = format!(
        "GET /search?q={term}&k=5&fusion=rrf HTTP/1.1\r\nHost: t\r\n\
         Accept: application/json\r\n\r\n"
    );

    // Fresh epoch: 200 with a strong generation ETag and ranked answers.
    stream.write_all(get_search.as_bytes()).expect("send");
    let (status, headers, body1) = read_full(&mut reader);
    assert_eq!(status, 200);
    let text1 = String::from_utf8_lossy(&body1).into_owned();
    assert!(text1.contains("\"answers\":["), "{text1}");
    assert!(text1.contains("\"fused_score\":"), "{text1}");
    assert!(text1.contains("\"fusion\":\"rrf\""), "{text1}");
    let etag1 = header_value(&headers, "etag")
        .expect("search is a cacheable route and carries an ETag")
        .to_string();
    assert!(etag1.starts_with("\"g") && etag1.ends_with('"'), "{etag1}");

    // A repeat unconditional GET within the epoch is served from the
    // response cache, byte-identical to the uncached answer.
    let hits_before = server.app().http_cache.snapshot().hits;
    stream.write_all(get_search.as_bytes()).expect("send");
    let (status, _, body2) = read_full(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(body1, body2, "cached search must be byte-identical");
    assert!(
        server.app().http_cache.snapshot().hits > hits_before,
        "repeat search must hit the epoch cache"
    );

    // Conditional GET with the live validator: 304, no body.
    let conditional = format!(
        "GET /search?q={term}&k=5&fusion=rrf HTTP/1.1\r\nHost: t\r\n\
         Accept: application/json\r\nIf-None-Match: {etag1}\r\n\r\n"
    );
    stream.write_all(conditional.as_bytes()).expect("send");
    let (status, _, body) = read_full(&mut reader);
    assert_eq!(status, 304);
    assert!(body.is_empty(), "304 must not carry a body");

    // Refresh turns the epoch: the stale validator gets a full answer
    // under a new ETag.
    stream
        .write_all(b"POST /admin/refresh HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
        .expect("send");
    let (status, _, _) = read_full(&mut reader);
    assert_eq!(status, 200);
    stream.write_all(conditional.as_bytes()).expect("send");
    let (status, headers, _) = read_full(&mut reader);
    assert_eq!(status, 200, "stale validator must get a full response");
    let etag2 = header_value(&headers, "etag").expect("new epoch ETag");
    assert_ne!(etag1, etag2, "the validator must change across epochs");

    // The index gauges and hit counters surface on /metrics.
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nAccept: text/plain\r\n\r\n")
        .expect("send");
    let (status, _, body) = read_full(&mut reader);
    assert_eq!(status, 200);
    let metrics = String::from_utf8_lossy(&body);
    assert!(metrics.contains("annoda_search_index_terms"), "{metrics}");
    assert!(
        metrics.contains("annoda_search_index_postings"),
        "{metrics}"
    );
    assert!(metrics.contains("annoda_search_index_epoch"), "{metrics}");
    assert!(
        metrics.contains("annoda_search_index_build_us"),
        "{metrics}"
    );
    assert!(metrics.contains("annoda_search_queries_total"), "{metrics}");
    assert!(
        metrics.contains("annoda_requests_total{route=\"search\"}"),
        "{metrics}"
    );
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn search_route_rejects_bad_parameters() {
    let (server, _symbol) = start(ephemeral());
    for (path, want) in [
        ("/search", "missing query parameter q"),
        ("/search?q=", "missing query parameter q"),
        ("/search?q=dna&fusion=wat", "unknown fusion"),
        ("/search?q=dna&k=0", "k must be a positive integer"),
        ("/search?q=dna&k=ten", "k must be a positive integer"),
        ("/search?q=dna&order=asc", "unknown search parameter"),
    ] {
        let (status, body) = get(&server, path, "text/plain");
        assert_eq!(status, 400, "{path}: {body}");
        assert!(body.contains(want), "{path}: {body}");
    }
    // Wrong method on the route.
    let (status, _) = roundtrip(
        &server,
        "POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 405);
    // A query that matches nothing is a valid, empty, 200 answer.
    let (status, body) = get(&server, "/search?q=zzzzunindexedzzzz", "application/json");
    assert_eq!(status, 200);
    assert!(body.contains("\"count\":0"), "{body}");
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn slowloris_drip_does_not_stall_the_shard() {
    // One shard, so the dripping connection and the healthy ones share
    // the same event loop — the old thread-per-connection server would
    // have parked a worker on the drip.
    let (server, _symbol) = start(ServeConfig {
        shards: 1,
        ..ephemeral()
    });
    let addr = server.addr();
    let dripper = thread::spawn(move || {
        let mut s = TcpStream::connect(addr).expect("connect");
        for b in b"GET /healthz HTTP/1.1\r\nHost: drip\r\nX-Slow: ".iter() {
            if s.write_all(&[*b]).is_err() {
                return;
            }
            thread::sleep(Duration::from_millis(20));
        }
        // Never finishes the head; the server's idle timeout reaps it.
    });

    // While the drip is in progress, requests on the same shard must
    // answer promptly.
    for _ in 0..5 {
        let t0 = Instant::now();
        let (status, body) = get(&server, "/healthz", "text/plain");
        assert_eq!(status, 200);
        assert!(body.starts_with("ok"));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "healthz stalled behind a slowloris connection"
        );
    }
    dripper.join().expect("dripper thread");
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn shed_under_load_returns_retry_after_and_counts() {
    let (server, _symbol) = start(ServeConfig {
        shards: 1,
        max_in_flight: 1,
        handler_delay: Duration::from_millis(800),
        ..ephemeral()
    });

    // Occupy the single in-flight slot with a slow-path request.
    let mut busy = TcpStream::connect(server.addr()).expect("connect");
    busy.write_all(b"GET /genes HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\n\r\n")
        .expect("send");
    thread::sleep(Duration::from_millis(300));

    // The next slow-path request must be shed immediately, not queued.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(
            b"GET /genes HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\n\
              Connection: close\r\n\r\n",
        )
        .expect("send");
    let mut reader = BufReader::new(stream);
    let (status, headers, body) = read_full(&mut reader);
    assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
    assert_eq!(header_value(&headers, "retry-after"), Some("1"));
    let shed = server.app().shed.snapshot();
    assert!(shed.total >= 1, "shed counter must record the 503");
    assert!(
        shed.in_flight_budget >= 1,
        "the shed must be attributed to the in-flight budget"
    );

    // The admitted request still completes normally.
    let mut reader = BufReader::new(busy);
    let (status, _) = read_response(&mut reader).expect("busy response");
    assert_eq!(status, 200);
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn pipelined_requests_answer_in_order_under_the_cap() {
    // The per-connection pipeline cap is far below the burst size: the
    // shard must stop reading, drain answers in order, then resume —
    // never drop, reorder, or deadlock.
    let (server, symbol) = start(ServeConfig {
        pipeline_max: 2,
        ..ephemeral()
    });
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let object = format!(
        "GET /object/gene/{symbol} HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\n\r\n"
    );
    let health = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    let genes = "GET /genes HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\n\r\n";
    let kinds = [
        "object", "health", "genes", "health", "genes", "health", "object", "health",
    ];
    let mut burst = String::new();
    for kind in &kinds {
        burst.push_str(match *kind {
            "object" => &object,
            "health" => health,
            "genes" => genes,
            _ => unreachable!(),
        });
    }
    stream.write_all(burst.as_bytes()).expect("send burst");

    for kind in &kinds {
        let (status, _, body) = read_full(&mut reader);
        assert_eq!(status, 200);
        let body = String::from_utf8_lossy(&body);
        match *kind {
            "object" => assert!(body.contains("\"kind\":\"gene\""), "{body}"),
            "health" => assert!(body.starts_with("ok"), "{body}"),
            "genes" => assert!(body.starts_with("{\"count\":"), "{body}"),
            _ => unreachable!(),
        }
    }
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn error_responses_carry_date_and_connection_headers() {
    let (server, _symbol) = start(ephemeral());

    // Malformed request line: 400, with the mandatory headers.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(b"BOGUS /x\r\n\r\n").expect("send");
    let mut reader = BufReader::new(stream);
    let (status, headers, _) = read_full(&mut reader);
    assert_eq!(status, 400);
    assert!(
        header_value(&headers, "date").is_some(),
        "400 must carry Date"
    );
    assert_eq!(header_value(&headers, "connection"), Some("close"));

    // Oversized head: 431, same discipline.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let huge = format!(
        "GET / HTTP/1.1\r\nHost: t\r\nX-Big: {}\r\n\r\n",
        "a".repeat(10 * 1024)
    );
    let _ = stream.write_all(huge.as_bytes());
    let mut reader = BufReader::new(stream);
    let (status, headers, _) = read_full(&mut reader);
    assert_eq!(status, 431);
    assert!(
        header_value(&headers, "date").is_some(),
        "431 must carry Date"
    );
    assert_eq!(header_value(&headers, "connection"), Some("close"));
    server.shutdown(Duration::from_secs(5));
}

// ---------------------------------------------------------------------
// Sharded-store selective cache invalidation.

/// Over a sharded store, a one-source refresh must invalidate only the
/// cached responses whose shard dependencies were actually touched:
/// the rewritten gene's object view recomputes, while object views for
/// genes on untouched shards keep serving the cached bytes — verified
/// byte-for-byte — and the old generation-wholesale invalidation path
/// stays quiet.
#[test]
fn sharded_refresh_invalidates_the_cache_selectively() {
    use annoda::DurableSystem;
    use annoda_oem::ShardRouter;

    const STORE_SHARDS: usize = 8;
    let corpus = Corpus::generate(CorpusConfig::tiny(42));
    let (mut a, _) = Annoda::over_sources(
        corpus.locuslink.clone(),
        corpus.go.clone(),
        corpus.omim.clone(),
    );
    a.registry_mut().mediator_mut().enable_cache();
    let durable = DurableSystem::new_sharded(a, STORE_SHARDS).expect("shard the store");
    let server = Server::start_durable(
        durable,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            // One reactor shard so every request shares one response
            // cache.
            shards: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    // The victim is the first locus; witnesses are genes routed to
    // other store shards, so the victim's refresh cannot stamp them.
    let router = ShardRouter::new(STORE_SHARDS);
    let victim = corpus.locuslink.scan().next().expect("non-empty corpus");
    let victim_shard = router.route(&victim.symbol);
    let witnesses: Vec<String> = corpus
        .locuslink
        .scan()
        .filter(|r| router.route(&r.symbol) != victim_shard)
        .take(6)
        .map(|r| r.symbol.clone())
        .collect();
    assert!(!witnesses.is_empty(), "tiny corpus spans several shards");

    // Rewrite the victim's native record FIRST: the façade mutation
    // turns the serving generation once, but the materialised shard
    // store is untouched until a refresh re-pulls the source.
    const SENTINEL: &str = "selectively invalidated locus description";
    {
        let app = server.app();
        let mut sys = app.system_mut();
        let w = sys
            .annoda_mut()
            .registry_mut()
            .mediator_mut()
            .wrapper_mut("LocusLink")
            .expect("LocusLink plugged")
            .as_any_mut()
            .downcast_mut::<annoda_wrap::LocusLinkWrapper>()
            .expect("native wrapper type");
        w.db_mut()
            .by_id_mut(victim.locus_id)
            .expect("victim exists")
            .description = SENTINEL.to_string();
    }

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    fn fetch(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        symbol: &str,
        validator: Option<&str>,
    ) -> (u16, Option<String>, Vec<u8>) {
        let conditional = validator
            .map(|v| format!("If-None-Match: {v}\r\n"))
            .unwrap_or_default();
        stream
            .write_all(
                format!(
                    "GET /object/gene/{symbol} HTTP/1.1\r\nHost: t\r\n\
                     Accept: application/json\r\n{conditional}\r\n"
                )
                .as_bytes(),
            )
            .expect("send");
        let (status, headers, body) = read_full(reader);
        let etag = header_value(&headers, "etag").map(str::to_string);
        (status, etag, body)
    }

    // Populate the cache: the victim still serves its pre-rewrite
    // bytes, stamped with shard-dependency ETags.
    let (status, victim_etag, victim_before) =
        fetch(&mut stream, &mut reader, &victim.symbol, None);
    assert_eq!(status, 200);
    let victim_etag = victim_etag.expect("object views carry ETags");
    assert!(
        victim_etag.contains(".s"),
        "sharded validators carry a dependency stamp: {victim_etag}"
    );
    assert!(
        !String::from_utf8_lossy(&victim_before).contains(SENTINEL),
        "the native rewrite must not be visible before the refresh"
    );
    let cached: Vec<(String, String, Vec<u8>)> = witnesses
        .iter()
        .map(|symbol| {
            let (status, etag, body) = fetch(&mut stream, &mut reader, symbol, None);
            assert_eq!(status, 200, "{symbol}");
            (symbol.clone(), etag.expect("etag"), body)
        })
        .collect();

    // A cached *selection* must die with any commit: its membership is
    // not fixed by the keys it surfaced (a refresh could add the N+1th
    // matching gene on any shard), so /genes pins the full vector.
    fn fetch_target(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        target: &str,
        validator: Option<&str>,
    ) -> (u16, Option<String>) {
        let conditional = validator
            .map(|v| format!("If-None-Match: {v}\r\n"))
            .unwrap_or_default();
        stream
            .write_all(
                format!(
                    "GET {target} HTTP/1.1\r\nHost: t\r\n\
                     Accept: application/json\r\n{conditional}\r\n"
                )
                .as_bytes(),
            )
            .expect("send");
        let (status, headers, _) = read_full(reader);
        (status, header_value(&headers, "etag").map(str::to_string))
    }
    const GENES: &str = "/genes?organism=Homo+sapiens";
    let (status, genes_etag) = fetch_target(&mut stream, &mut reader, GENES, None);
    assert_eq!(status, 200);
    let genes_etag = genes_etag.expect("selections carry ETags");
    assert!(
        genes_etag.contains(".s"),
        "sharded selection validators carry a dependency stamp: {genes_etag}"
    );

    // Re-pull only LocusLink: the commit bumps the victim's shard
    // epoch and leaves the serving generation alone.
    stream
        .write_all(
            b"POST /admin/refresh?source=LocusLink HTTP/1.1\r\nHost: t\r\n\
              Content-Length: 0\r\n\r\n",
        )
        .expect("send");
    let (status, _, body) = read_full(&mut reader);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));

    // The victim's validator is dead; the recomputed view serves the
    // rewritten description under a fresh stamp.
    let (status, new_etag, victim_after) =
        fetch(&mut stream, &mut reader, &victim.symbol, Some(&victim_etag));
    assert_eq!(status, 200, "a touched shard must fail revalidation");
    assert_ne!(new_etag.as_deref(), Some(victim_etag.as_str()));
    assert!(
        String::from_utf8_lossy(&victim_after).contains(SENTINEL),
        "refresh must surface the rewrite"
    );

    // The cached selection's full-vector stamp is dead too, even
    // though every key it surfaced may live on untouched shards.
    let (status, _) = fetch_target(&mut stream, &mut reader, GENES, Some(&genes_etag));
    assert_eq!(
        status, 200,
        "a selection must never revalidate across a commit — its \
         membership is not fixed by the keys it surfaced"
    );

    // Witness entries on untouched shards keep validating, and repeat
    // reads serve the cached response byte-identically.
    let mut survivors = 0;
    for (symbol, etag, before) in &cached {
        let (status, _, _) = fetch(&mut stream, &mut reader, symbol, Some(etag));
        if status == 304 {
            survivors += 1;
            let (status, _, again) = fetch(&mut stream, &mut reader, symbol, None);
            assert_eq!(status, 200);
            assert_eq!(
                &again, before,
                "surviving cache entry for {symbol} must be byte-identical"
            );
        }
    }
    assert!(
        survivors > 0,
        "a one-locus refresh must keep entries for untouched shards"
    );

    let cache = server.app().http_cache.snapshot();
    assert!(
        cache.deps_invalidations >= 1,
        "the victim's entry must fall to a shard-dependency stamp"
    );
    assert_eq!(
        cache.epoch_invalidations, 0,
        "selective invalidation must not fall back to the wholesale path"
    );
    server.shutdown(Duration::from_secs(5));
}
