//! Property tests for WAL-shipping replication (satellite of the
//! replica subsystem):
//!
//! 1. Resuming a follower from **every** valid WAL boundary — under any
//!    batch byte-budget — replays to a byte-identical store and a
//!    byte-identical WAL file. Replication has no privileged starting
//!    point; any prefix is a valid replica.
//! 2. A torn or corrupted `WalBatch` frame never decodes into anything:
//!    the crc32 framing rejects every single-byte flip and every
//!    truncation, so a follower's only possible reaction is to drop the
//!    session and re-subscribe — divergence is structurally impossible.

use std::io::Cursor;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use annoda_federation::proto::{self, Message};
use annoda_oem::OemStore;
use annoda_persist::{
    delta_records, encode_store, read_tail, DurableStore, FsyncPolicy, WAL_HEADER_LEN,
};

const SYMBOLS: &[&str] = &["TP53", "BRCA1", "BRCA2", "KRAS", "EGFR", "MYC"];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "annoda-replprop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a GML-shaped store holding one `Gene` child per symbol pick.
fn gml(symbol_picks: &[u8]) -> (OemStore, annoda_oem::Oid) {
    let mut db = OemStore::new();
    let root = db.new_complex();
    for pick in symbol_picks {
        let g = db.add_complex_child(root, "Gene").unwrap();
        db.add_atomic_child(g, "Symbol", SYMBOLS[*pick as usize % SYMBOLS.len()])
            .unwrap();
    }
    db.set_name("GML", root).unwrap();
    (db, root)
}

/// Journals the deltas to each target state into a leader store,
/// returning the WAL byte boundary after every record.
fn journal_targets(dir: &Path, targets: &[Vec<u8>]) -> Vec<u64> {
    let mut d = DurableStore::open(dir, FsyncPolicy::Always).unwrap();
    let mut boundaries = vec![d.stats().wal_bytes];
    for picks in targets {
        let (target, troot) = gml(picks);
        for rec in delta_records(d.store(), "GML", &target, troot) {
            d.journal(&rec).unwrap();
            boundaries.push(d.stats().wal_bytes);
        }
    }
    boundaries
}

/// Ships `leader`'s WAL into `follower` from the follower's current
/// position, `budget` bytes per batch, until caught up.
fn ship(leader_wal: &Path, follower: &mut DurableStore, budget: u64) {
    loop {
        let from = follower.wal_offset();
        let tail = read_tail(leader_wal, from, budget)
            .expect("leader WAL is readable")
            .expect("follower position is a valid boundary");
        for record in &tail.records {
            follower.journal_raw(record).unwrap();
        }
        assert_eq!(follower.wal_offset(), tail.next_offset);
        if tail.next_offset == tail.end_offset {
            return;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every valid boundary is a valid resume point, under any batch
    /// budget: the converged follower is byte-identical to the leader —
    /// same canonical store encoding, same WAL file bytes.
    #[test]
    fn resume_from_every_boundary_replays_byte_identically(
        targets in proptest::collection::vec(
            proptest::collection::vec(0u8..6, 0..5),
            1..4,
        ),
        budget in 1u64..2048,
    ) {
        let leader_dir = tmp_dir("leader");
        let boundaries = journal_targets(&leader_dir, &targets);
        let leader_wal = leader_dir.join("wal.log");
        let leader_bytes = std::fs::read(&leader_wal).unwrap();
        let full = read_tail(&leader_wal, WAL_HEADER_LEN, u64::MAX)
            .unwrap()
            .expect("base offset is always valid");
        prop_assert_eq!(full.records.len() + 1, boundaries.len());
        let leader_state = {
            let d = DurableStore::open(&leader_dir, FsyncPolicy::Always).unwrap();
            encode_store(d.store())
        };

        for (k, resume_at) in boundaries.iter().enumerate() {
            // A follower that already holds the first k records...
            let follower_dir = tmp_dir(&format!("follower-{k}"));
            let mut follower = DurableStore::open(&follower_dir, FsyncPolicy::Always).unwrap();
            for record in &full.records[..k] {
                follower.journal_raw(record).unwrap();
            }
            prop_assert_eq!(follower.wal_offset(), *resume_at,
                "journaling the leader's bytes reproduces the leader's boundary");
            // ...resumes from its own WAL length and converges.
            ship(&leader_wal, &mut follower, budget);
            prop_assert_eq!(&encode_store(follower.store()), &leader_state);
            prop_assert_eq!(&std::fs::read(follower_dir.join("wal.log")).unwrap(), &leader_bytes);
            let _ = std::fs::remove_dir_all(&follower_dir);
        }
        let _ = std::fs::remove_dir_all(&leader_dir);
    }

    /// Any single corrupted byte in a framed `WalBatch` — and any
    /// truncation — fails the receive. The follower can never observe a
    /// damaged batch as data; it can only re-subscribe.
    #[test]
    fn corrupted_or_torn_wal_batch_frames_never_decode(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..64),
            1..6,
        ),
        flip_pick in any::<u64>(),
        flip_bit in 0u8..8,
        cut_pick in any::<u64>(),
    ) {
        let message = Message::WalBatch {
            generation: 3,
            from_offset: 13,
            records,
            next_offset: 999,
            leader_offset: 1_024,
            remaining_records: 0,
        };
        let mut framed = Vec::new();
        proto::write_frame(&mut framed, &message.encode()).unwrap();

        // Sanity: the clean frame round-trips (compared via
        // re-encoding; the wire enum carries no PartialEq).
        let clean = proto::recv(&mut Cursor::new(framed.clone())).unwrap();
        prop_assert_eq!(clean.encode(), message.encode());

        // One flipped bit anywhere in the frame (length, checksum, or
        // payload) must fail the receive, not decode differently.
        let mut damaged = framed.clone();
        let pos = (flip_pick as usize) % damaged.len();
        damaged[pos] ^= 1 << flip_bit;
        prop_assert!(
            proto::recv(&mut Cursor::new(damaged)).is_err(),
            "flip at byte {pos} must not pass the crc32 framing"
        );

        // Every strict prefix (a torn frame) must also fail.
        let torn_len = (cut_pick as usize) % framed.len();
        prop_assert!(
            proto::recv(&mut Cursor::new(&framed[..torn_len])).is_err(),
            "torn frame of {torn_len} bytes must not decode"
        );
    }
}
