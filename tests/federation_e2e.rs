//! Federation end-to-end: the Figure 1 architecture with the wrapper
//! boundary stretched over real TCP sockets. Three source-servers serve
//! the paper sources; a mediator integrates them through
//! `RemoteWrapper`s and must produce answers byte-identical to the
//! in-process mediator over the same corpus — and degrade to partial
//! answers, not errors, when a source goes away.

use std::time::Duration;

use annoda::{render_integrated_view, Annoda, QuestionBuilder};
use annoda_federation::{
    BreakerConfig, BreakerState, ClientConfig, FaultConfig, ServerConfig, SourceServer,
};
use annoda_mediator::FailureKind;
use annoda_sources::{Corpus, CorpusConfig};
use annoda_wrap::{GoWrapper, LocusLinkWrapper, OmimWrapper};

fn corpus() -> Corpus {
    Corpus::generate(CorpusConfig::tiny(42))
}

/// Three source-servers over one corpus, on ephemeral ports.
fn spawn_paper_servers(c: &Corpus, fault: FaultConfig) -> Vec<SourceServer> {
    let config = ServerConfig {
        fault,
        ..ServerConfig::default()
    };
    vec![
        SourceServer::spawn(
            Box::new(LocusLinkWrapper::new(c.locuslink.clone())),
            "127.0.0.1:0",
            config,
        )
        .expect("bind LocusLink"),
        SourceServer::spawn(
            Box::new(GoWrapper::new(c.go.clone())),
            "127.0.0.1:0",
            config,
        )
        .expect("bind GO"),
        SourceServer::spawn(
            Box::new(OmimWrapper::new(c.omim.clone())),
            "127.0.0.1:0",
            config,
        )
        .expect("bind OMIM"),
    ]
}

fn fast_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_secs(5),
        retries: 1,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        ..ClientConfig::default()
    }
}

/// An ANNODA instance whose three sources live behind the servers.
fn remote_annoda(servers: &[SourceServer], config: ClientConfig) -> Annoda {
    let mut annoda = Annoda::new();
    for server in servers {
        annoda
            .plug_remote_with(&server.addr().to_string(), config)
            .expect("plug remote source");
    }
    annoda
}

#[test]
fn figure5_over_the_wire_matches_in_process() {
    let c = corpus();
    let servers = spawn_paper_servers(&c, FaultConfig::none());
    let remote = remote_annoda(&servers, fast_client());
    let (local, _) = Annoda::over_sources(c.locuslink.clone(), c.go.clone(), c.omim.clone());

    // Same registry: same sources, in the same order.
    let names = |a: &Annoda| -> Vec<String> {
        a.registry()
            .sources()
            .iter()
            .map(|d| d.name.clone())
            .collect()
    };
    assert_eq!(names(&remote), names(&local));

    // The Figure 5 question: genes with GO function annotation and no
    // OMIM disease entry.
    let question = QuestionBuilder::new()
        .require_go_function()
        .exclude_omim_disease()
        .build();
    let remote_answer = remote.ask(&question).expect("remote answer");
    let local_answer = local.ask(&question).expect("local answer");

    // Byte-identical integrated view (Figure 5b) over the wire.
    assert_eq!(
        render_integrated_view(&remote_answer.fused.genes),
        render_integrated_view(&local_answer.fused.genes)
    );
    // Identical virtual accounting: the remote path adds measured
    // wall-clock, never simulated cost.
    assert_eq!(remote_answer.cost.requests, local_answer.cost.requests);
    assert_eq!(remote_answer.cost.records, local_answer.cost.records);
    assert_eq!(remote_answer.cost.virtual_us, local_answer.cost.virtual_us);
    assert!(remote_answer.cost.wall_us > 0, "remote wall-clock is real");
    assert!(remote_answer.wall_path_us > 0);
    assert!(remote_answer.fused.missing_sources.is_empty());
    assert!(remote_answer.failed_sources.is_empty());

    // Every remote source was exercised and stayed healthy.
    let stats = remote.federation_stats();
    assert_eq!(stats.len(), 3);
    for (name, snap) in &stats {
        assert!(snap.requests > 0, "{name} saw no requests");
        assert_eq!(snap.breaker, BreakerState::Closed, "{name} breaker");
        assert_eq!(snap.transport_errors, 0, "{name} transport errors");
    }
}

#[test]
fn killed_server_degrades_to_a_flagged_partial_answer() {
    let c = corpus();
    let mut servers = spawn_paper_servers(&c, FaultConfig::none());
    let mut remote = remote_annoda(&servers, fast_client());
    remote.registry_mut().mediator_mut().partial_results = true;

    // Kill OMIM (the last server) after plug-in succeeded.
    let omim = servers.last_mut().expect("three servers");
    let omim_name = omim.name().to_string();
    omim.shutdown();
    servers.pop();

    // The exclusion clause forces a subquery against the dead OMIM.
    let question = QuestionBuilder::new()
        .require_go_function()
        .exclude_omim_disease()
        .build();
    let answer = remote.ask(&question).expect("partial answer, not error");

    // The loss is surfaced in the fused answer, not silently dropped.
    assert_eq!(answer.fused.missing_sources, vec![omim_name.clone()]);
    let failure = answer
        .failed_sources
        .iter()
        .find(|f| f.source == omim_name)
        .expect("OMIM failure recorded");
    assert_eq!(failure.kind, FailureKind::Transport);
    // The surviving sources still answered.
    assert!(!answer.fused.genes.is_empty());
    assert!(answer
        .per_source_cost
        .iter()
        .any(|(src, _)| src == "LocusLink"));
}

#[test]
fn breaker_trips_fast_fails_and_recovers_after_cooldown() {
    let c = corpus();
    let servers = spawn_paper_servers(
        &c,
        // Each server kills its first two connections at accept: the
        // plug-in dials are retried transparently (2 retries per
        // request cover them) and every later connection is clean.
        FaultConfig {
            drop_first: 2,
            drop_every: 0,
        },
    );
    let config = ClientConfig {
        retries: 2,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(40),
        },
        ..fast_client()
    };
    let mut servers = servers;
    let mut remote = remote_annoda(&servers, config);
    remote.registry_mut().mediator_mut().partial_results = true;
    let omim_stats = |a: &Annoda| {
        a.federation_stats()
            .into_iter()
            .find(|(name, _)| name == "OMIM")
            .expect("OMIM is remote")
            .1
    };

    // Under the drop-every-3 schedule answers keep flowing: dropped
    // dials are retried transparently and the breakers stay closed.
    let question = QuestionBuilder::new()
        .require_go_function()
        .exclude_omim_disease()
        .build();
    for _ in 0..3 {
        let answer = remote.ask(&question).expect("answers despite drops");
        assert!(answer.fused.missing_sources.is_empty());
    }
    let retried: u64 = remote
        .federation_stats()
        .iter()
        .map(|(_, s)| s.retries)
        .sum();
    assert!(retried > 0, "the fault schedule forced retries");
    assert_eq!(omim_stats(&remote).breaker, BreakerState::Closed);

    // Take OMIM down for good: two failed asks trip its breaker while
    // the gene provider keeps the question answerable.
    servers.pop().expect("OMIM server").shutdown();
    for _ in 0..2 {
        let answer = remote.ask(&question).expect("still partial, not error");
        assert_eq!(answer.fused.missing_sources, vec!["OMIM".to_string()]);
    }
    assert_eq!(omim_stats(&remote).breaker, BreakerState::Open);

    // While open, asks fast-fail locally instead of re-dialing.
    let before = omim_stats(&remote);
    let answer = remote.ask(&question).expect("fast-failed partial");
    assert_eq!(answer.fused.missing_sources, vec!["OMIM".to_string()]);
    let during = omim_stats(&remote);
    assert_eq!(
        during.transport_errors, before.transport_errors,
        "an open breaker never touches the wire"
    );
    assert!(during.fast_failures > before.fast_failures);

    // After the cooldown the breaker probes the wire again (and
    // re-opens, since the server is gone for good).
    std::thread::sleep(Duration::from_millis(50));
    let _ = remote.ask(&question).expect("probe round");
    let after = omim_stats(&remote);
    assert!(
        after.transport_errors > during.transport_errors,
        "the half-open probe reached the wire"
    );
    assert_eq!(after.breaker, BreakerState::Open);
}
