//! End-to-end failover: a leader and two followers, each a full HTTP
//! server over a WAL-shipping replication link. The centerpiece kills
//! the leader and proves that **no acknowledged write is lost** across
//! promotion — every write durably journaled and replicated before the
//! kill is still answered, byte-for-byte, by the promoted node — and
//! that `/genes` answers are byte-identical before and after failover.
//!
//! Also covered here: the read-your-writes gate
//! (`min_generation`/`min_offset`) end to end — write on the leader,
//! take the position token from `/healthz`, pin the replica read — and
//! the write-path refusals (`403` naming the leader, `409` promoting a
//! leader, `412` for unreachable positions).

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use annoda::{Annoda, DurableSystem, FsyncPolicy, Role};
use annoda_replica::{LeaderConfig, LeaderServer, ReplicaClient, ReplicaConfig};
use annoda_serve::loadgen::read_response;
use annoda_serve::{ServeConfig, Server};
use annoda_sources::{Corpus, CorpusConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "annoda-replica-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn system() -> Annoda {
    let c = Corpus::generate(CorpusConfig::tiny(42));
    let (mut a, _) = Annoda::over_sources(c.locuslink, c.go, c.omim);
    a.registry_mut().mediator_mut().enable_cache();
    a
}

fn ephemeral() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    }
}

fn fast_client() -> ReplicaConfig {
    ReplicaConfig {
        poll_interval: Duration::from_millis(5),
        backoff: Duration::from_millis(10),
        ..ReplicaConfig::default()
    }
}

fn roundtrip(server: &Server, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    let (status, body) = read_response(&mut reader).expect("response");
    (status, String::from_utf8_lossy(&body).into_owned())
}

fn get(server: &Server, path: &str) -> (u16, String) {
    roundtrip(
        server,
        &format!(
            "GET {path} HTTP/1.1\r\nHost: t\r\nAccept: text/plain\r\nConnection: close\r\n\r\n"
        ),
    )
}

fn post(server: &Server, path: &str, body: &str) -> (u16, String) {
    roundtrip(
        server,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Pulls a `key: value` line out of a text `/healthz` (or promote) body.
fn field<'a>(body: &'a str, key: &str) -> &'a str {
    body.lines()
        .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix(": ")))
        .unwrap_or_else(|| panic!("no `{key}:` line in {body:?}"))
}

/// The node's durable `(generation, wal_offset)` write token.
fn position(server: &Server) -> (u64, u64) {
    let (status, body) = get(server, "/healthz");
    assert_eq!(status, 200, "{body}");
    (
        field(&body, "generation").parse().unwrap(),
        field(&body, "wal_offset").parse().unwrap(),
    )
}

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < deadline {
        if pred() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

/// A multi-count Lorel probe touching all three sources, so losing any
/// replicated write (e.g. an unplug) changes the answer.
const PROBE: &str = "select count(GML.Gene), count(GML.Function), count(GML.Disease) \
                     from ANNODA-GML GML";

fn probe(server: &Server, query_suffix: &str) -> (u16, String) {
    post(server, &format!("/lorel{query_suffix}"), PROBE)
}

/// Strips result oids (`&650` → `&_`) from a Lorel answer. The answer
/// *objects* are freshly allocated per evaluation (and promotion
/// compacts the allocator), so equality of answers means equality
/// modulo those ids — the counts and structure, not the handles.
fn normalized(answer: &str) -> String {
    let mut out = String::with_capacity(answer.len());
    let mut chars = answer.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == '&' {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
            out.push('_');
        }
    }
    out
}

/// A follower node: its own data dir, HTTP server, and shipping client.
struct FollowerNode {
    dir: PathBuf,
    server: Server,
    client: ReplicaClient,
}

fn follower(tag: &str, leader_http: &str, repl_addr: &str) -> FollowerNode {
    let dir = tmp_dir(tag);
    let durable =
        DurableSystem::open_follower(system(), &dir, FsyncPolicy::Always).expect("follower open");
    durable.repl_handle().set_leader_addr(leader_http);
    let server = Server::start_durable(durable, ephemeral()).expect("bind follower");
    let client = ReplicaClient::spawn(Arc::clone(&server.app().system), repl_addr, fast_client());
    FollowerNode {
        dir,
        server,
        client,
    }
}

/// The headline e2e: writes acknowledged by the leader survive its
/// death. Leader + two followers; write, replicate, capture the exact
/// answers; kill the leader; promote follower 1; re-point follower 2 at
/// the new leader. Every answer must come back identical.
#[test]
fn kill_the_leader_loses_no_acknowledged_write() {
    let leader_dir = tmp_dir("leader");
    let durable =
        DurableSystem::open(system(), &leader_dir, FsyncPolicy::Always).expect("leader open");
    let leader = Server::start_durable(durable, ephemeral()).expect("bind leader");
    let leader_http = leader.addr().to_string();
    let mut shipping = LeaderServer::spawn(
        Arc::clone(&leader.app().system),
        "127.0.0.1:0",
        LeaderConfig::default(),
    )
    .expect("bind shipping listener");
    let repl_addr = shipping.addr().to_string();

    let mut f1 = follower("f1", &leader_http, &repl_addr);
    let mut f2 = follower("f2", &leader_http, &repl_addr);

    // Acknowledged write #1: materialise + journal the GML over HTTP.
    let (status, body) = post(&leader, "/admin/refresh", "");
    assert_eq!(status, 200, "{body}");
    // Acknowledged write #2: an unplug, journaled and fsynced before
    // the call returns — the write whose loss would be visible in the
    // Disease count below.
    assert!(
        leader.app().system_mut().unplug("OMIM").expect("unplug"),
        "OMIM was plugged"
    );

    // The client's write token: the leader's durable position.
    let token = position(&leader);
    assert!(token.1 > 0, "writes moved the WAL");

    // Both replicas converge to (at least) the token position.
    wait_until("followers to reach the leader's position", || {
        position(&f1.server) >= token && position(&f2.server) >= token
    });

    // Read-your-writes on a replica: pin the read at the token. The
    // answer must match the leader's own, byte for byte.
    let gate = format!("?min_generation={}&min_offset={}", token.0, token.1);
    let (status, leader_answer) = probe(&leader, "");
    assert_eq!(status, 200, "{leader_answer}");
    for f in [&f1, &f2] {
        let (status, answer) = probe(&f.server, &gate);
        assert_eq!(status, 200, "{answer}");
        assert_eq!(
            normalized(&answer),
            normalized(&leader_answer),
            "pinned replica read diverged"
        );
    }

    // Followers refuse writes, naming the leader's HTTP address.
    let (status, body) = post(&f1.server, "/admin/refresh", "");
    assert_eq!(status, 403, "{body}");
    assert!(body.contains("read-only follower"), "{body}");
    assert!(
        body.contains(&leader_http),
        "403 should name the leader: {body}"
    );

    // Capture the integrated view, then kill the leader outright.
    let (_, genes_before) = get(&f1.server, "/genes");
    shipping.shutdown();
    leader.shutdown(Duration::from_secs(5));

    // Failover: promote follower 1.
    let (status, body) = post(&f1.server, "/admin/promote", "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(field(&body, "role"), "leader");
    let promoted_generation: u64 = field(&body, "generation").parse().unwrap();
    assert!(
        promoted_generation > token.0,
        "promotion seals the old log behind a new generation"
    );
    f1.client.shutdown();

    // Zero acknowledged-write loss: the promoted node still answers
    // exactly what the dead leader acknowledged...
    let (status, answer) = probe(&f1.server, "");
    assert_eq!(status, 200, "{answer}");
    assert_eq!(
        normalized(&answer),
        normalized(&leader_answer),
        "acknowledged write lost in failover"
    );
    // ...and `/genes` is byte-identical across the promotion.
    let (status, genes_after) = get(&f1.server, "/genes");
    assert_eq!(status, 200);
    assert_eq!(genes_after, genes_before, "/genes changed across failover");

    // The promoted node is a writable leader now.
    let (status, body) = post(&f1.server, "/admin/refresh", "");
    assert_eq!(status, 200, "promoted node must accept writes: {body}");
    let new_token = position(&f1.server);

    // Re-point follower 2 at the new leader. Its WAL is a prefix of the
    // *old* leader's log, so resuming must trigger a fresh snapshot
    // bootstrap (new generation), never a silent divergence.
    f2.client.shutdown();
    let mut new_shipping = LeaderServer::spawn(
        Arc::clone(&f1.server.app().system),
        "127.0.0.1:0",
        LeaderConfig::default(),
    )
    .expect("bind new shipping listener");
    let f2_system: Arc<RwLock<DurableSystem>> = Arc::clone(&f2.server.app().system);
    f2.server
        .app()
        .system()
        .repl_handle()
        .set_leader_addr(&f1.server.addr().to_string());
    let mut f2_client =
        ReplicaClient::spawn(f2_system, &new_shipping.addr().to_string(), fast_client());
    wait_until("follower 2 to converge on the new leader", || {
        position(&f2.server) >= new_token
    });
    let (status, answer) = probe(
        &f2.server,
        &format!("?min_generation={}&min_offset={}", new_token.0, new_token.1),
    );
    assert_eq!(status, 200, "{answer}");
    let (_, expected) = probe(&f1.server, "");
    assert_eq!(
        normalized(&answer),
        normalized(&expected),
        "re-pointed replica diverged"
    );

    f2_client.shutdown();
    new_shipping.shutdown();
    f1.server.shutdown(Duration::from_secs(5));
    f2.server.shutdown(Duration::from_secs(5));
    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&f1.dir);
    let _ = std::fs::remove_dir_all(&f2.dir);
}

/// The consistency gate on a single durable leader: satisfied positions
/// answer `200`, unreachable ones stall then `412`, malformed ones
/// `400`, and promoting a node that is already the leader is `409`.
#[test]
fn gate_and_admin_edges_on_a_leader() {
    let dir = tmp_dir("gate");
    let durable = DurableSystem::open(system(), &dir, FsyncPolicy::Always).expect("open");
    let server = Server::start_durable(durable, ephemeral()).expect("bind");
    let (status, _) = post(&server, "/admin/refresh", "");
    assert_eq!(status, 200);
    let (generation, offset) = position(&server);

    // Already satisfied: the leader is trivially at its own position.
    let (status, _) = get(
        &server,
        &format!("/genes?min_generation={generation}&min_offset={offset}"),
    );
    assert_eq!(status, 200);
    // A later generation is unreachable without more writes: the gate
    // stalls its bounded window, then answers 412.
    let t = Instant::now();
    let (status, body) = get(
        &server,
        &format!("/genes?min_generation={}", generation + 1),
    );
    assert_eq!(status, 412, "{body}");
    assert!(
        t.elapsed() >= Duration::from_millis(400),
        "the gate should stall before giving up, took {:?}",
        t.elapsed()
    );
    // Malformed pins are client errors, not stalls.
    let (status, body) = get(&server, "/genes?min_generation=soon");
    assert_eq!(status, 400, "{body}");
    let (status, body) = get(&server, "/genes?min_offset=9");
    assert_eq!(status, 400, "min_offset without min_generation: {body}");
    // Promoting the leader is a conflict, not a no-op.
    let (status, body) = post(&server, "/admin/promote", "");
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("already the leader"), "{body}");

    server.shutdown(Duration::from_secs(5));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A node with no durable position (no `--data-dir`) can never satisfy
/// a pinned read: `412` immediately, because there is no WAL to wait on.
#[test]
fn gate_on_a_non_durable_node_is_precondition_failed() {
    let server = Server::start_durable(DurableSystem::new(system()), ephemeral()).expect("bind");
    let (status, body) = get(&server, "/genes?min_generation=0");
    assert_eq!(status, 412, "{body}");
    assert!(body.contains("no durable position"), "{body}");
    assert_eq!(server.app().system().role(), Role::Leader);
    server.shutdown(Duration::from_secs(5));
}
