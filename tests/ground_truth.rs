//! Ground-truth checks across many corpora: for every seed, the
//! integrated answers must equal sets computed directly from the raw
//! synthetic databases. This is the end-to-end correctness oracle for
//! the whole wrapper → matcher → mediator → fusion pipeline.

use std::collections::BTreeSet;

use annoda_bench::workload;
use annoda_mediator::decompose::{AspectClause, GeneQuestion};
use annoda_sources::{Corpus, CorpusConfig};

const SEEDS: [u64; 5] = [1, 7, 13, 21, 42];

fn corpus(seed: u64) -> Corpus {
    Corpus::generate(CorpusConfig {
        loci: 50,
        go_terms: 35,
        omim_entries: 20,
        seed,
        inconsistency_rate: 0.1,
    })
}

fn answer_symbols(annoda: &annoda::Annoda, q: &GeneQuestion) -> BTreeSet<String> {
    annoda
        .ask(q)
        .unwrap()
        .fused
        .genes
        .iter()
        .map(|g| g.symbol.clone())
        .collect()
}

#[test]
fn figure5_matches_ground_truth_across_seeds() {
    for seed in SEEDS {
        let c = corpus(seed);
        let annoda = workload::annoda_over(&c);
        let got = answer_symbols(&annoda, &GeneQuestion::figure5());
        let expected: BTreeSet<String> = c
            .locuslink
            .scan()
            .filter(|r| {
                let has_fn =
                    !r.go_ids.is_empty() || c.go.annotations_of_gene(&r.symbol).next().is_some();
                let has_dis = !r.omim_ids.is_empty() || c.omim.by_gene(&r.symbol).next().is_some();
                has_fn && !has_dis
            })
            .map(|r| r.symbol.clone())
            .collect();
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn organism_filter_matches_ground_truth_across_seeds() {
    for seed in SEEDS {
        let c = corpus(seed);
        let annoda = workload::annoda_over(&c);
        let q = GeneQuestion {
            organism: Some("Mus musculus".into()),
            ..GeneQuestion::default()
        };
        let got = answer_symbols(&annoda, &q);
        let expected: BTreeSet<String> = c
            .locuslink
            .by_organism("Mus musculus")
            .map(|r| r.symbol.clone())
            .collect();
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn literature_clause_matches_ground_truth_across_seeds() {
    for seed in SEEDS {
        let c = corpus(seed);
        let annoda = workload::annoda_four_sources(&c);
        let q = GeneQuestion {
            publication: AspectClause::Require(None),
            ..GeneQuestion::default()
        };
        let got = answer_symbols(&annoda, &q);
        let expected: BTreeSet<String> = c
            .locuslink
            .scan()
            .filter(|r| c.pubmed.by_gene(&r.symbol).next().is_some())
            .map(|r| r.symbol.clone())
            .collect();
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn disease_pattern_matches_ground_truth_across_seeds() {
    for seed in SEEDS {
        let c = corpus(seed);
        let annoda = workload::annoda_over(&c);
        let q = GeneQuestion {
            disease: AspectClause::Require(Some("%SYNDROME%".into())),
            ..GeneQuestion::default()
        };
        let got = answer_symbols(&annoda, &q);
        let expected: BTreeSet<String> = c
            .locuslink
            .scan()
            .filter(|r| {
                // Union semantics over both association directions, then
                // the title pattern.
                let mut mims: BTreeSet<u32> = r.omim_ids.iter().copied().collect();
                mims.extend(c.omim.by_gene(&r.symbol).map(|e| e.mim_number));
                mims.iter().any(|&m| {
                    c.omim
                        .by_mim(m)
                        .is_some_and(|e| e.title.contains("SYNDROME"))
                })
            })
            .map(|r| r.symbol.clone())
            .collect();
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn conflicts_count_matches_injected_disagreements() {
    // Every membership conflict the mediator reports corresponds to a
    // genuine asymmetry between the locus records and GO's annotation
    // table.
    for seed in SEEDS {
        let c = corpus(seed);
        let annoda = workload::annoda_over(&c);
        let q = GeneQuestion {
            function: AspectClause::Require(None),
            ..GeneQuestion::default()
        };
        let ans = annoda.ask(&q).unwrap();
        for conflict in &ans.fused.conflicts {
            let rec = c
                .locuslink
                .by_symbol(&conflict.subject)
                .unwrap_or_else(|| panic!("conflict names unknown gene {}", conflict.subject));
            let locus_side = rec.go_ids.contains(&conflict.item);
            let go_side =
                c.go.annotations_of_gene(&rec.symbol)
                    .any(|a| a.term_id == conflict.item);
            assert_ne!(
                locus_side, go_side,
                "seed {seed}: conflict {conflict:?} is not a real disagreement"
            );
        }
    }
}
