//! Pins the paper's concrete artifacts: the Figure 3 notation, the §4.1
//! example query and answer object, the Figure 5 question, and the
//! ANNODA column of Table 1.

use annoda::Annoda;
use annoda_baselines::{probe_row, IntegrationSystem, TABLE1_ROWS};
use annoda_mediator::decompose::GeneQuestion;
use annoda_oem::{text, AtomicValue};
use annoda_sources::{Corpus, CorpusConfig, LocusLinkDb, LocusRecord};
use annoda_wrap::{LocusLinkWrapper, Wrapper};

fn corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        inconsistency_rate: 0.15,
        ..CorpusConfig::tiny(42)
    })
}

#[test]
fn figure3_notation_for_a_locuslink_fragment() {
    let record = LocusRecord {
        locus_id: 7157,
        symbol: "TP53".into(),
        organism: "Homo sapiens".into(),
        description: "tumor protein p53".into(),
        position: "17p13.1".into(),
        go_ids: vec!["GO:0003700".into()],
        omim_ids: vec![191170],
        links: vec![],
    };
    let wrapper = LocusLinkWrapper::new(LocusLinkDb::from_records([record]));
    let oml = wrapper.oml();
    let root = oml.named("LocusLink").unwrap();
    let rendered = text::write_rooted(oml, "LocusLink", root);

    // Each line shows label, oid, type, value — the six Figure 2
    // attributes all appear with the right types.
    assert!(rendered.starts_with("LocusLink &0 Complex"));
    for needle in [
        "LocusID &2 Integer \"7157\"",
        "Organism &3 String \"Homo sapiens\"",
        "Symbol &4 String \"TP53\"",
        "Description &5 String \"tumor protein p53\"",
        "Position &6 String \"17p13.1\"",
        "Links &8 Complex",
    ] {
        assert!(
            rendered.contains(needle),
            "missing `{needle}` in:\n{rendered}"
        );
    }
    // And the notation reads back into a structurally equal store
    // (oid numbers may differ: the reader allocates in line order).
    let (parsed, parsed_root) = text::read(&rendered).unwrap();
    assert!(annoda_oem::graph::structural_eq(
        oml,
        root,
        &parsed,
        parsed_root
    ));
}

#[test]
fn section41_query_produces_a_new_answer_object() {
    let c = corpus();
    let (annoda, _) = Annoda::over_sources(c.locuslink, c.go, c.omim);
    let (gml, outcome, _) = annoda
        .lorel(r#"select S from ANNODA-GML.Source S where S.Name = "LocusLink""#)
        .unwrap();

    // One result: a NEW object…
    let answer_obj = outcome.sole_result(&gml).unwrap();
    let original = outcome.projected[0].1[0];
    assert_ne!(answer_obj, original);

    // …whose references are the paper's four Source attributes, pointing
    // at the original database objects.
    let labels: Vec<&str> = gml
        .edges_of(answer_obj)
        .iter()
        .map(|e| gml.label_name(e.label))
        .collect();
    assert_eq!(labels, vec!["SourceID", "Name", "Content", "Structure"]);
    for edge in gml.edges_of(answer_obj) {
        assert!(
            gml.edges_of(original)
                .iter()
                .any(|oe| oe.target == edge.target),
            "answer must reference original objects"
        );
    }

    // `answer` is registered and re-bound on the next query.
    assert_eq!(gml.named("answer"), Some(outcome.answer));
}

#[test]
fn figure5_question_text_matches_the_paper() {
    let q = GeneQuestion::figure5();
    assert_eq!(
        q.to_string(),
        "Find a set of LocusLink genes, which are annotated with some GO functions, \
         and which are not associated with some OMIM disease"
    );
}

#[test]
fn table1_annoda_column_matches_the_paper() {
    let c = corpus();
    let sample = c
        .locuslink
        .scan()
        .find(|r| !r.go_ids.is_empty())
        .map(|r| r.symbol.clone())
        .unwrap();
    let (annoda, _) = Annoda::over_sources(c.locuslink, c.go, c.omim);
    let mut sys: Box<dyn IntegrationSystem> = Box::new(annoda);
    for cap in TABLE1_ROWS {
        let observed = probe_row(cap.row, sys.as_mut(), &sample);
        let expected = cap.paper[3];
        // Two rows are phrase-level synonyms of the paper's cells.
        let equivalent = matches!(
            (observed.as_str(), expected),
            ("No archival functionality", "Not supported")
        );
        assert!(
            observed == expected || equivalent,
            "row `{}`: observed `{observed}`, paper `{expected}`",
            cap.row
        );
    }
}

#[test]
fn integrated_view_genes_carry_weblinks_for_navigation() {
    let c = corpus();
    let (annoda, _) = Annoda::over_sources(c.locuslink, c.go, c.omim);
    let answer = annoda.ask(&GeneQuestion::default()).unwrap();
    for gene in &answer.fused.genes {
        assert!(
            gene.links.iter().any(|l| l.is_internal()),
            "{} lacks an ANNODA object link",
            gene.symbol
        );
        assert!(
            gene.links.iter().any(|l| l.url.starts_with("http://")),
            "{} lacks an external source link",
            gene.symbol
        );
    }
}

#[test]
fn reconciliation_detects_the_injected_inconsistencies() {
    let c = corpus();
    let (annoda, _) = Annoda::over_sources(c.locuslink.clone(), c.go.clone(), c.omim);
    let q = GeneQuestion {
        function: annoda_mediator::decompose::AspectClause::Require(None),
        ..GeneQuestion::default()
    };
    let answer = annoda.ask(&q).unwrap();
    assert!(
        !answer.fused.conflicts.is_empty(),
        "15% injected inconsistency must surface as conflicts"
    );
    // Every conflict names a real gene and a real GO id.
    for conflict in &answer.fused.conflicts {
        assert!(c.locuslink.by_symbol(&conflict.subject).is_some());
    }
}

#[test]
fn source_values_survive_into_the_gml_source_entities() {
    // The Figure 4 Source entity carries the registry metadata the §4.1
    // query reads.
    let c = corpus();
    let (annoda, _) = Annoda::over_sources(c.locuslink, c.go, c.omim);
    let (gml, _cost) = annoda.mediator().materialize_gml().unwrap();
    let root = gml.named("ANNODA-GML").unwrap();
    let names: Vec<String> = gml
        .children(root, "Source")
        .filter_map(|s| gml.child_value(s, "Name").map(AtomicValue::as_text))
        .collect();
    assert_eq!(names, vec!["LocusLink", "GO", "OMIM"]);
}
