//! Broad Lorel coverage through the public ANNODA surface: every
//! language feature exercised against the materialised ANNODA-GML of a
//! real (synthetic) corpus.

use annoda_bench::workload;
use annoda_sources::{Corpus, CorpusConfig};

fn annoda() -> (annoda::Annoda, Corpus) {
    let c = Corpus::generate(CorpusConfig::tiny(42));
    (workload::annoda_four_sources(&c), c)
}

#[test]
fn aggregates_match_corpus_counts() {
    let (a, c) = annoda();
    let (gml, out, _) = a
        .lorel(
            "select count(GML.Gene), count(GML.Function), count(GML.Disease), \
             count(GML.Publication) from ANNODA-GML GML",
        )
        .unwrap();
    let val = |i: usize| {
        gml.value_of(out.projected[i].1[0])
            .unwrap()
            .as_text()
            .parse::<usize>()
            .unwrap()
    };
    assert_eq!(val(0), c.locuslink.len());
    assert_eq!(val(1), c.go.term_count());
    assert_eq!(val(2), c.omim.len());
    assert_eq!(val(3), c.pubmed.len());
}

#[test]
fn alternation_and_wildcards_navigate_the_gml() {
    let (a, c) = annoda();
    // Every FunctionID or DiseaseID reachable from genes.
    let (_gml, out, _) = a
        .lorel("select X from ANNODA-GML.Gene.(FunctionID|DiseaseID) X")
        .unwrap();
    assert!(!out.projected[0].1.is_empty());
    // `#` from the root reaches every Name-labelled object.
    let (_gml, out, _) = a.lorel("select X from ANNODA-GML.#.Name X").unwrap();
    // Source names + function names + disease names, at least.
    assert!(out.projected[0].1.len() >= 4 + c.go.term_count().min(1));
}

#[test]
fn like_and_multi_key_ordering() {
    let (a, _c) = annoda();
    let (gml, out, _) = a
        .lorel(
            r#"select G.Symbol, G.Organism from ANNODA-GML.Gene G
               where G.Organism like "%musculus%"
               order by G.Organism, G.Symbol desc"#,
        )
        .unwrap();
    let symbols: Vec<String> = out.projected[0]
        .1
        .iter()
        .map(|&o| gml.value_of(o).unwrap().as_text())
        .collect();
    let mut sorted = symbols.clone();
    sorted.sort();
    sorted.reverse();
    assert_eq!(symbols, sorted, "desc order on the second key");
}

#[test]
fn into_answers_are_queryable_in_the_returned_store() {
    let (a, _c) = annoda();
    let (mut gml, out, _) = a
        .lorel(
            "select G into HumanGenes from ANNODA-GML.Gene G where G.Organism = \"Homo sapiens\"",
        )
        .unwrap();
    assert!(gml.named("HumanGenes").is_some());
    let count = out.projected[0].1.len();
    // Query the saved answer inside the returned store.
    let follow = annoda_lorel::run_query(&mut gml, "select count(H.G) from HumanGenes H").unwrap();
    let total: usize = gml
        .value_of(follow.projected[0].1[0])
        .unwrap()
        .as_text()
        .parse()
        .unwrap();
    assert_eq!(total, count);
}

#[test]
fn group_by_namespace_counts_functions() {
    let (a, c) = annoda();
    let (gml, out, _) = a
        .lorel("select count(F.FunctionID) from ANNODA-GML.Function F group by F.Namespace")
        .unwrap();
    assert!(out.groups.len() <= 3, "at most the three GO namespaces");
    let total: usize = gml
        .children(out.answer, "group")
        .filter_map(|g| gml.child_value(g, "count"))
        .filter_map(|v| v.as_text().parse::<usize>().ok())
        .sum();
    assert_eq!(total, c.go.term_count());
}

#[test]
fn standard_functions_compose_with_predicates() {
    let (a, _c) = annoda();
    let (gml, out, _) = a
        .lorel(
            r#"select lower(S.Name) as n from ANNODA-GML.Source S
               where strlen(S.Name) > 2 order by S.Name"#,
        )
        .unwrap();
    let names: Vec<String> = out.projected[0]
        .1
        .iter()
        .map(|&o| gml.value_of(o).unwrap().as_text())
        .collect();
    assert_eq!(names, vec!["locuslink", "omim", "pubmed"]); // "GO" filtered by strlen
}

#[test]
fn every_internal_link_in_a_gene_view_resolves() {
    let (a, c) = annoda();
    let nav = a.navigator();
    let mut followed = 0usize;
    for rec in c.locuslink.scan().take(10) {
        let Some(view) = nav.gene_view(&rec.symbol) else {
            continue;
        };
        for link in view.links.iter().filter(|l| l.is_internal()) {
            let target = nav.follow(link);
            assert!(
                target.is_ok(),
                "{}: dangling internal link {link}",
                rec.symbol
            );
            let target = target.unwrap();
            assert!(!target.attributes.is_empty(), "{link} resolved empty");
            followed += 1;
        }
    }
    assert!(followed > 0, "some links were followed");
}
