//! Property tests for the sharded OEM store (satellites of the MVCC
//! subsystem):
//!
//! 1. Partitioning a materialised ANNODA-GML into **any** shard count
//!    and reassembling it yields the same canonical bytes as a
//!    single-shard partition, and every fragment read through the
//!    router resolves to the same bytes regardless of the shard count
//!    — sharding is invisible to readers.
//! 2. Concurrent transactions follow first-writer-wins per shard:
//!    writers whose staged deltas land on disjoint shards both commit
//!    (and both changes survive assembly), while writers overlapping
//!    on a shard produce exactly one conflict abort.

use proptest::prelude::*;

use annoda::{Annoda, CommitError, ShardedGml};
use annoda_oem::{OemStore, ShardRouter, ShardedStore};
use annoda_persist::{encode_fragment, encode_store};
use annoda_sources::{Corpus, CorpusConfig};
use annoda_wrap::LocusLinkWrapper;

const GML_ROOT: &str = "ANNODA-GML";

fn corpus(seed: u64) -> Corpus {
    Corpus::generate(CorpusConfig::tiny(seed))
}

fn annoda_over(c: &Corpus) -> Annoda {
    let (a, _) = Annoda::over_sources(c.locuslink.clone(), c.go.clone(), c.omim.clone());
    a
}

fn materialize(a: &Annoda) -> OemStore {
    let (gml, _cost) = a.mediator().materialize_gml().expect("materialize");
    gml
}

/// Materialises the corpus with one locus description rewritten;
/// returns the store and the symbol the rewrite is keyed under.
fn materialize_with_rewrite(c: &Corpus, locus_index: usize, desc: &str) -> (OemStore, String) {
    let mut a = annoda_over(c);
    let record = c
        .locuslink
        .scan()
        .nth(locus_index)
        .expect("locus index in range");
    let w = a
        .registry_mut()
        .mediator_mut()
        .wrapper_mut("LocusLink")
        .expect("LocusLink plugged")
        .as_any_mut()
        .downcast_mut::<LocusLinkWrapper>()
        .expect("native wrapper type");
    w.db_mut()
        .by_id_mut(record.locus_id)
        .expect("record exists")
        .description = desc.to_string();
    // The mediator serves from its plugged harvest until the source is
    // re-pulled; without this the rewrite never reaches the GML.
    a.registry_mut()
        .mediator_mut()
        .refresh_source("LocusLink")
        .expect("LocusLink plugged");
    (materialize(&a), record.symbol.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Partition → assemble is shard-count independent on the encoded
    /// store, and fragment reads through the router match a
    /// single-shard baseline byte-for-byte.
    #[test]
    fn partition_assemble_is_byte_identical(seed in 0u64..4, shards in 1usize..9) {
        let c = corpus(seed);
        let flat = materialize(&annoda_over(&c));

        // `assemble` canonicalises the root's edge order by
        // (label, key), so the invariant is shard-count independence:
        // any partitioning reassembles to the same bytes as the
        // single-shard canonical form.
        let baseline = ShardedStore::partition(&flat, GML_ROOT, 1).expect("baseline");
        let canonical = encode_store(&baseline.assemble());
        let sharded = ShardedStore::partition(&flat, GML_ROOT, shards).expect("partition");
        prop_assert_eq!(sharded.shard_count(), shards);
        prop_assert_eq!(
            sharded.total_objects(),
            (0..shards).map(|i| sharded.shard_objects(i)).sum::<usize>()
        );
        prop_assert_eq!(
            encode_store(&sharded.assemble()),
            canonical,
            "assemble(partition(flat, {})) must be shard-count independent",
            shards
        );

        // Fragment-level reads: every Gene/Annotation/Function the
        // corpus surfaces resolves through the router to the same
        // bytes a one-shard store serves.
        let router = ShardRouter::new(shards);
        let mut compared = 0usize;
        for record in c.locuslink.scan() {
            let mut keys: Vec<(&str, &str)> = vec![
                ("Gene", record.symbol.as_str()),
                ("Annotation", record.symbol.as_str()),
            ];
            keys.extend(record.go_ids.iter().map(|id| ("Function", id.as_str())));
            for (label, key) in keys {
                // Not every locus surfaces every fragment kind; what
                // the baseline holds, the sharded store must hold on
                // the routed shard with identical bytes — and nothing
                // more.
                let base = baseline.fragment(label, key);
                let routed = sharded.fragment(label, key);
                prop_assert_eq!(base.is_some(), routed.is_some(), "{} {}", label, key);
                let (Some((_, base_oid)), Some((shard, oid))) = (base, routed) else {
                    continue;
                };
                prop_assert_eq!(shard, router.route(key));
                prop_assert_eq!(
                    encode_fragment(sharded.shard(shard), oid),
                    encode_fragment(baseline.shard(0), base_oid),
                    "{} {} must read identically at {} shards",
                    label, key, shards
                );
                compared += 1;
            }
        }
        prop_assert!(compared > 0, "the corpus must surface fragments to compare");
    }

    /// First-writer-wins: two writers begun against the same pinned
    /// vector both commit when their deltas land on disjoint shards,
    /// and produce exactly one conflict when they overlap.
    #[test]
    fn concurrent_txns_conflict_only_on_shared_shards(
        seed in 0u64..4,
        shards in 1usize..9,
        first in 0usize..8,
        second in 0usize..8,
    ) {
        let c = corpus(seed);
        let base = materialize(&annoda_over(&c));
        let gml = ShardedGml::new(&base, GML_ROOT, shards).expect("shard the GML");

        let (store_a, symbol_a) = materialize_with_rewrite(&c, first, "writer A rewrote this");
        let (store_b, symbol_b) = materialize_with_rewrite(&c, second, "writer B rewrote this");
        let router = gml.router();
        let overlap = router.route(&symbol_a) == router.route(&symbol_b);

        // Both transactions pin the same epoch vector before either
        // commits — the race the MVCC layer exists to resolve.
        let mut txn_a = gml.begin();
        let mut txn_b = gml.begin();
        txn_a.stage(&store_a).expect("stage A");
        txn_b.stage(&store_b).expect("stage B");

        gml.commit(txn_a).expect("first writer always wins");
        let second_outcome = gml.commit(txn_b);
        let stats = gml.txn_stats();
        if overlap {
            match second_outcome {
                Err(CommitError::Conflict { shards: hit }) => {
                    prop_assert!(
                        hit.contains(&router.route(&symbol_b)),
                        "conflict must name the contended shard: {:?}",
                        hit
                    );
                }
                other => prop_assert!(false, "overlap must conflict, got {:?}", other.is_ok()),
            }
            prop_assert_eq!(stats.commits, 1);
            prop_assert_eq!(stats.conflicts, 1);
        } else {
            prop_assert!(second_outcome.is_ok(), "disjoint shards must not contend");
            prop_assert_eq!(stats.commits, 2);
            prop_assert_eq!(stats.conflicts, 0);
            // Neither commit clobbered the other: both rewrites are in
            // the assembled model.
            let (_, assembled) = gml.assembled();
            let bytes = encode_store(&assembled);
            let text = String::from_utf8_lossy(&bytes);
            prop_assert!(text.contains("writer A rewrote this"));
            prop_assert!(text.contains("writer B rewrote this"));
        }
    }
}
