//! Integration tests for the post-paper extensions: the fourth
//! (literature) source, capability-limited sources, Lorel `group by`,
//! result re-organisation, and the bind-join optimisation — all driven
//! end to end through the public APIs.

use annoda::reorganize::{self, GroupKey, SortKey};
use annoda_bench::workload;
use annoda_mediator::decompose::{AspectClause, GeneQuestion};
use annoda_oem::OemStore;
use annoda_sources::{Corpus, CorpusConfig};
use annoda_wrap::{Capabilities, CustomWrapper, LatencyModel, SourceDescription};

fn corpus() -> Corpus {
    Corpus::generate(CorpusConfig::tiny(42))
}

#[test]
fn fourth_source_flows_to_the_user_surfaces() {
    let c = corpus();
    let annoda = workload::annoda_four_sources(&c);
    let q = GeneQuestion {
        publication: AspectClause::Require(None),
        ..GeneQuestion::default()
    };
    let answer = annoda.ask(&q).unwrap();
    assert!(!answer.fused.genes.is_empty());

    // Rendered view shows PMIDs.
    let view = annoda::render_integrated_view(&answer.fused.genes);
    assert!(view.contains("PMID "), "{view}");

    // Navigation reaches publication object views.
    let nav = annoda.navigator();
    let gene = &answer.fused.genes[0];
    let pub_link = gene
        .links
        .iter()
        .find(|l| l.internal_target().map(|(k, _)| k) == Some("publication"));
    // Links on the gene come from gene_view, not the ask() path; resolve
    // via the object view instead.
    let gv = nav.gene_view(&gene.symbol).unwrap();
    let pl = gv
        .links
        .iter()
        .find(|l| l.internal_target().map(|(k, _)| k) == Some("publication"))
        .expect("gene view links to its publications");
    let pv = nav.follow(pl).unwrap();
    assert_eq!(pv.kind, "publication");
    assert!(pv.attributes.iter().any(|(k, _)| k == "Title"));
    assert!(pv.attributes.iter().any(|(k, _)| k == "Journal"));
    let _ = pub_link;
}

#[test]
fn scan_only_sources_fall_back_to_mediator_filtering() {
    // A source that cannot evaluate predicates: pushdown must be
    // stripped, the filter applied at the mediator, and answers stay
    // correct.
    let c = corpus();
    let mut annoda = workload::annoda_over(&c);
    // Replace OMIM with a scan-only clone of its OML.
    let omim_oml = {
        let w = annoda.mediator().wrapper("OMIM").unwrap();
        w.oml().clone()
    };
    annoda.unplug("OMIM");
    annoda.plug(Box::new(CustomWrapper::new(
        SourceDescription {
            name: "OMIM".into(),
            content: "scan-only OMIM dump".into(),
            base_url: "http://omim".into(),
            structure: "flat file".into(),
            capabilities: Capabilities::scan_only(),
            latency: LatencyModel::remote(),
        },
        omim_oml,
    )));

    let q = GeneQuestion {
        disease: AspectClause::Exclude(Some("%SYNDROME%".into())),
        ..GeneQuestion::default()
    };
    let plan = annoda.mediator().plan(&q);
    let omim_step = plan
        .steps
        .iter()
        .find(|s| s.query.source == "OMIM")
        .expect("OMIM planned");
    assert!(!omim_step.query.pushed_down, "scan-only cannot push down");
    assert!(!omim_step.query.lorel.contains("where"));
    assert!(!plan.residual.is_empty());

    // Answers equal the fully-capable configuration's.
    let scan_only_answer = annoda.ask(&q).unwrap();
    let reference = workload::annoda_over(&c).ask(&q).unwrap();
    let a: Vec<&str> = scan_only_answer
        .fused
        .genes
        .iter()
        .map(|g| g.symbol.as_str())
        .collect();
    let b: Vec<&str> = reference
        .fused
        .genes
        .iter()
        .map(|g| g.symbol.as_str())
        .collect();
    assert_eq!(a, b);
}

#[test]
fn group_by_over_the_materialised_gml() {
    let c = corpus();
    let annoda = workload::annoda_over(&c);
    let (gml, outcome, _) = annoda
        .lorel("select count(G.Symbol) from ANNODA-GML.Gene G group by G.Organism")
        .unwrap();
    assert!(!outcome.groups.is_empty());
    // The per-group counts sum to the corpus size.
    let total: i64 = gml
        .children(outcome.answer, "group")
        .filter_map(|g| gml.child_value(g, "count"))
        .filter_map(|v| v.as_text().parse::<i64>().ok())
        .sum();
    assert_eq!(total as usize, c.locuslink.len());
}

#[test]
fn reorganisation_over_a_real_answer() {
    let c = corpus();
    let annoda = workload::annoda_over(&c);
    let mut answer = annoda.ask(&GeneQuestion::default()).unwrap();
    let genes = &mut answer.fused.genes;
    assert!(!genes.is_empty());

    let by_org = reorganize::group_genes(genes, GroupKey::Organism);
    let grouped: usize = by_org.values().map(Vec::len).sum();
    assert_eq!(grouped, genes.len());

    reorganize::sort_genes(genes, SortKey::LocusId, false);
    assert!(genes.windows(2).all(|w| w[0].gene_id <= w[1].gene_id));

    let tsv = reorganize::to_tsv(genes);
    assert_eq!(tsv.lines().count(), genes.len() + 1);

    let summary = reorganize::summarize(genes);
    assert_eq!(summary.genes, genes.len());
    assert_eq!(summary.per_organism.values().sum::<usize>(), genes.len());
}

#[test]
fn bind_join_equivalence_through_the_facade() {
    let c = corpus();
    let mut annoda = workload::annoda_over(&c);
    let q = GeneQuestion {
        symbol_like: Some("C%".into()),
        function: AspectClause::Require(None),
        ..GeneQuestion::default()
    };
    let unbound = annoda.ask(&q).unwrap();
    annoda.registry_mut().mediator_mut().optimizer.bind_join = true;
    let bound = annoda.ask(&q).unwrap();
    let a: Vec<&str> = unbound
        .fused
        .genes
        .iter()
        .map(|g| g.symbol.as_str())
        .collect();
    let b: Vec<&str> = bound
        .fused
        .genes
        .iter()
        .map(|g| g.symbol.as_str())
        .collect();
    assert_eq!(a, b);
    assert!(bound.cost.records <= unbound.cost.records);
}

#[test]
fn selectivity_estimates_order_plans_sensibly() {
    // A rare organism ships fewer estimated records than a common one.
    let c = corpus();
    let annoda = workload::annoda_over(&c);
    let est = |organism: &str| {
        let q = GeneQuestion {
            organism: Some(organism.into()),
            ..GeneQuestion::default()
        };
        annoda.mediator().plan(&q).steps[0].est_records
    };
    let common = est("Homo sapiens");
    let rare = est("Rattus norvegicus");
    let absent = est("Danio rerio");
    assert!(common > rare, "common {common} <= rare {rare}");
    assert!(rare >= absent, "rare {rare} < absent {absent}");
    // And the estimates come from the real distribution.
    let humans = c.locuslink.by_organism("Homo sapiens").count() as u64;
    assert_eq!(common, humans);
}

#[test]
fn value_conflicts_across_two_gene_providers_follow_precedence() {
    use annoda_mediator::{ConflictKind, ReconcilePolicy};
    let c = corpus();
    let symbol = c.locuslink.scan().next().unwrap().symbol.clone();

    // A second gene provider that disagrees about the description.
    let genbank_oml = || {
        let mut oml = OemStore::new();
        let root = oml.new_complex();
        let l = oml.add_complex_child(root, "Locus").unwrap();
        oml.add_atomic_child(l, "Symbol", symbol.as_str()).unwrap();
        oml.add_atomic_child(l, "Organism", "Homo sapiens").unwrap();
        oml.add_atomic_child(l, "Description", "GENBANK VERSION OF THE DESCRIPTION")
            .unwrap();
        oml.set_name("GenBank", root).unwrap();
        oml
    };

    let build = |order: Vec<String>| {
        let mut annoda = workload::annoda_over(&c);
        let report = annoda.plug(Box::new(CustomWrapper::new(
            SourceDescription::remote("GenBank", "sequence-centric gene records", "http://gb"),
            genbank_oml(),
        )));
        assert!(
            report
                .entities
                .contains(&("Locus".to_string(), "Gene".to_string())),
            "{report:?}"
        );
        annoda.registry_mut().mediator_mut().policy = ReconcilePolicy::Precedence(order);
        annoda
    };

    let prefer_genbank = build(vec!["GenBank".into(), "LocusLink".into()]);
    let q = GeneQuestion {
        symbol_like: Some(symbol.clone()),
        ..GeneQuestion::default()
    };
    let ans = prefer_genbank.ask(&q).unwrap();
    let gene = ans.fused.genes.iter().find(|g| g.symbol == symbol).unwrap();
    assert_eq!(
        gene.description.as_deref(),
        Some("GENBANK VERSION OF THE DESCRIPTION")
    );
    // The disagreement is logged as a value conflict.
    assert!(
        ans.fused
            .conflicts
            .iter()
            .any(|cf| matches!(cf.kind, ConflictKind::Value { .. }) && cf.subject == symbol),
        "{:?}",
        ans.fused.conflicts
    );

    let prefer_locuslink = build(vec!["LocusLink".into(), "GenBank".into()]);
    let ans = prefer_locuslink.ask(&q).unwrap();
    let gene = ans.fused.genes.iter().find(|g| g.symbol == symbol).unwrap();
    assert_eq!(
        gene.description.as_deref(),
        c.locuslink
            .by_symbol(&symbol)
            .map(|r| r.description.as_str())
    );
}

#[test]
fn store_persistence_round_trips_an_oml() {
    // The persistence layer can checkpoint a wrapper's OML to disk.
    let c = corpus();
    let annoda = workload::annoda_over(&c);
    let oml = annoda.mediator().wrapper("OMIM").unwrap().oml().clone();
    let path = std::env::temp_dir().join(format!("annoda-omim-{}.oem", std::process::id()));
    annoda_oem::text::save_to_file(&oml, &path).unwrap();
    let back = annoda_oem::text::load_from_file(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let ra = oml.named("OMIM").unwrap();
    let rb = back.named("OMIM").unwrap();
    assert!(annoda_oem::graph::structural_eq(&oml, ra, &back, rb));
}

#[test]
fn custom_wrapper_round_trip_through_registry() {
    // Plug, ask, unplug: the mediator survives source churn.
    let c = corpus();
    let mut annoda = workload::annoda_over(&c);
    let mut oml = OemStore::new();
    let root = oml.new_complex();
    let e = oml.add_complex_child(root, "Entry").unwrap();
    oml.add_atomic_child(e, "MimNumber", 999_999i64).unwrap();
    oml.add_atomic_child(e, "Title", "TRANSIENT DISORDER")
        .unwrap();
    let sym = c.locuslink.scan().next().unwrap().symbol.clone();
    oml.add_atomic_child(e, "GeneSymbol", sym.as_str()).unwrap();
    oml.set_name("Transient", root).unwrap();
    annoda.plug(Box::new(CustomWrapper::new(
        SourceDescription::remote("Transient", "temp registry", "http://t"),
        oml,
    )));
    let q = GeneQuestion {
        disease: AspectClause::Require(None),
        ..GeneQuestion::default()
    };
    let with = annoda.ask(&q).unwrap();
    assert!(with.fused.genes.iter().any(|g| g.symbol == sym));
    assert!(annoda.unplug("Transient"));
    let without = annoda.ask(&q).unwrap();
    // The gene keeps any OMIM-side diseases but loses the transient one.
    let gene_diseases = |ans: &annoda_mediator::MediatedAnswer| {
        ans.fused
            .genes
            .iter()
            .find(|g| g.symbol == sym)
            .map(|g| g.diseases.len())
            .unwrap_or(0)
    };
    assert!(gene_diseases(&with) > gene_diseases(&without));
}
