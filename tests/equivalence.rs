//! Cross-system equivalence: on a *consistent* corpus every automated
//! architecture must return the same gene sets for the same questions
//! (they integrate the same data); what differs is cost, freshness, and
//! conflict visibility. Also pins that the optimizer never changes
//! answers and that reconciliation policies behave monotonically.

use annoda_baselines::IntegrationSystem;
use annoda_mediator::decompose::{AspectClause, GeneQuestion};
use annoda_mediator::{OptimizerConfig, ReconcilePolicy};
use annoda_sources::{Corpus, CorpusConfig};

fn consistent_corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        loci: 80,
        go_terms: 50,
        omim_entries: 30,
        seed: 21,
        inconsistency_rate: 0.0,
    })
}

fn questions() -> Vec<GeneQuestion> {
    vec![
        GeneQuestion::default(),
        GeneQuestion::figure5(),
        GeneQuestion {
            organism: Some("Homo sapiens".into()),
            function: AspectClause::Require(None),
            ..GeneQuestion::default()
        },
        GeneQuestion {
            disease: AspectClause::Require(None),
            ..GeneQuestion::default()
        },
        GeneQuestion {
            symbol_like: Some("B%".into()),
            ..GeneQuestion::default()
        },
    ]
}

fn systems(corpus: &Corpus) -> Vec<Box<dyn IntegrationSystem>> {
    // The four automated systems (hypertext only sees locus-page links,
    // so it legitimately misses GO-side-only annotations).
    let mut all = annoda_bench::workload::all_systems(corpus);
    all.truncate(4);
    all
}

#[test]
fn all_automated_systems_agree_on_consistent_data() {
    let corpus = consistent_corpus();
    for (qi, q) in questions().into_iter().enumerate() {
        let mut reference: Option<Vec<String>> = None;
        for mut sys in systems(&corpus) {
            let mut genes: Vec<String> = sys
                .answer(&q)
                .unwrap()
                .genes
                .iter()
                .map(|g| g.symbol.clone())
                .collect();
            genes.sort();
            match &reference {
                None => reference = Some(genes),
                Some(r) => assert_eq!(&genes, r, "question #{qi}: {} disagrees", sys.name()),
            }
        }
    }
}

#[test]
fn consistent_corpus_yields_zero_conflicts_everywhere() {
    let corpus = consistent_corpus();
    for mut sys in systems(&corpus) {
        let ans = sys.answer(&GeneQuestion::figure5()).unwrap();
        assert_eq!(ans.conflicts, 0, "{}", sys.name());
    }
}

#[test]
fn optimizer_configs_never_change_answers() {
    let corpus = consistent_corpus();
    let configs = [
        OptimizerConfig {
            pushdown: true,
            source_selection: true,
            bind_join: false,
        },
        OptimizerConfig {
            pushdown: true,
            source_selection: true,
            bind_join: true,
        },
        OptimizerConfig {
            pushdown: true,
            source_selection: false,
            bind_join: false,
        },
        OptimizerConfig {
            pushdown: false,
            source_selection: true,
            bind_join: true,
        },
        OptimizerConfig {
            pushdown: false,
            source_selection: false,
            bind_join: false,
        },
    ];
    for q in questions() {
        let mut reference: Option<Vec<String>> = None;
        let mut costs = Vec::new();
        for cfg in configs {
            let mut annoda = annoda_bench::workload::annoda_over(&corpus);
            annoda.registry_mut().mediator_mut().optimizer = cfg;
            let ans = annoda.ask(&q).unwrap();
            let mut genes: Vec<String> = ans.fused.genes.iter().map(|g| g.symbol.clone()).collect();
            genes.sort();
            costs.push(ans.cost.virtual_us);
            match &reference {
                None => reference = Some(genes),
                Some(r) => assert_eq!(&genes, r, "config {cfg:?} changed the answer"),
            }
        }
        // Full optimisation is never more expensive than none.
        assert!(
            costs[0] <= costs[4],
            "optimised {} > naive {}",
            costs[0],
            costs[4]
        );
    }
}

#[test]
fn reconciliation_policies_are_monotone() {
    // Intersection ⊆ Vote ⊆ Union on every gene's function set.
    let corpus = Corpus::generate(CorpusConfig {
        loci: 80,
        go_terms: 50,
        omim_entries: 30,
        seed: 33,
        inconsistency_rate: 0.4,
    });
    let q = GeneQuestion::default();
    let function_sets = |policy: ReconcilePolicy| -> Vec<(String, Vec<String>)> {
        let mut annoda = annoda_bench::workload::annoda_over(&corpus);
        annoda.registry_mut().mediator_mut().policy = policy;
        // Functions are integrated only when fetched; require them.
        let q = GeneQuestion {
            function: AspectClause::Require(None),
            ..q.clone()
        };
        annoda
            .ask(&q)
            .unwrap()
            .fused
            .genes
            .iter()
            .map(|g| {
                let mut f: Vec<String> = g.functions.iter().map(|f| f.id.clone()).collect();
                f.sort();
                (g.symbol.clone(), f)
            })
            .collect()
    };
    let union: std::collections::HashMap<_, _> =
        function_sets(ReconcilePolicy::Union).into_iter().collect();
    let inter: std::collections::HashMap<_, _> = function_sets(ReconcilePolicy::Intersection)
        .into_iter()
        .collect();
    assert!(!union.is_empty());
    for (gene, fns) in &inter {
        let uf = union
            .get(gene)
            .expect("intersection genes appear under union");
        for f in fns {
            assert!(uf.contains(f), "{gene}: {f} in intersection but not union");
        }
    }
    // And the union result is strictly richer somewhere (0.4 inconsistency).
    let union_total: usize = union.values().map(Vec::len).sum();
    let inter_total: usize = inter.values().map(Vec::len).sum();
    assert!(union_total > inter_total);
}

#[test]
fn figure5_answer_matches_ground_truth_exactly() {
    let corpus = consistent_corpus();
    let mut expected: Vec<String> = corpus
        .locuslink
        .scan()
        .filter(|r| !r.go_ids.is_empty() && r.omim_ids.is_empty())
        .map(|r| r.symbol.clone())
        .collect();
    expected.sort();
    for mut sys in systems(&corpus) {
        let mut got: Vec<String> = sys
            .answer(&GeneQuestion::figure5())
            .unwrap()
            .genes
            .iter()
            .map(|g| g.symbol.clone())
            .collect();
        got.sort();
        assert_eq!(got, expected, "{}", sys.name());
    }
}
