//! Crash-consistency harness for `annoda-persist`, plus the
//! kill-and-recover end-to-end path through `annoda-serve`.
//!
//! The core property: for a journaled mutation sequence, truncating the
//! WAL at **every byte offset** and recovering must yield exactly the
//! store state after the last record that fits entirely below the cut —
//! never an error, never a partial record applied. That is the strongest
//! statement of "a crash can only tear the tail".

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use annoda::{Annoda, DurableSystem, FsyncPolicy};
use annoda_oem::OemStore;
use annoda_persist::{delta_records, encode_store, DurableStore};
use annoda_serve::loadgen::read_response;
use annoda_serve::{ServeConfig, Server};
use annoda_sources::{Corpus, CorpusConfig};

const SYMBOLS: &[&str] = &["TP53", "BRCA1", "BRCA2", "KRAS", "EGFR", "MYC"];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "annoda-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a GML-shaped store holding one `Gene` child per symbol.
fn gml(symbol_picks: &[u8]) -> (OemStore, annoda_oem::Oid) {
    let mut db = OemStore::new();
    let root = db.new_complex();
    for pick in symbol_picks {
        let g = db.add_complex_child(root, "Gene").unwrap();
        db.add_atomic_child(g, "Symbol", SYMBOLS[*pick as usize % SYMBOLS.len()])
            .unwrap();
    }
    db.set_name("GML", root).unwrap();
    (db, root)
}

/// Journals the delta to each target state in turn, recording the store
/// encoding and the WAL length after every single record.
struct Journaled {
    /// `states[k]` is the canonical encoding after `k` records.
    states: Vec<Vec<u8>>,
    /// `boundaries[k]` is the WAL byte length after `k` records
    /// (`boundaries[0]` is the bare header).
    boundaries: Vec<u64>,
}

fn journal_targets(dir: &Path, targets: &[Vec<u8>]) -> Journaled {
    let mut d = DurableStore::open(dir, FsyncPolicy::Always).unwrap();
    let mut states = vec![encode_store(d.store())];
    let mut boundaries = vec![d.stats().wal_bytes];
    for picks in targets {
        let (target, troot) = gml(picks);
        for rec in delta_records(d.store(), "GML", &target, troot) {
            d.journal(&rec).unwrap();
            states.push(encode_store(d.store()));
            boundaries.push(d.stats().wal_bytes);
        }
    }
    Journaled { states, boundaries }
}

/// Copies `dir` into a fresh directory with the WAL truncated at `cut`.
fn dir_with_cut(src: &Path, dst: &Path, cut: usize) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    if src.join("snapshot.bin").exists() {
        std::fs::copy(src.join("snapshot.bin"), dst.join("snapshot.bin")).unwrap();
    }
    let wal = std::fs::read(src.join("wal.log")).unwrap();
    std::fs::write(dst.join("wal.log"), &wal[..cut]).unwrap();
}

/// How many whole records fit below `cut`.
fn records_below(boundaries: &[u64], cut: usize) -> usize {
    boundaries
        .iter()
        .filter(|&&b| b <= cut as u64)
        .count()
        .saturating_sub(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Truncate the WAL at every byte offset; recovery must always
    /// restore exactly the longest record prefix below the cut.
    #[test]
    fn truncation_at_every_offset_recovers_a_record_prefix(
        targets in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..5),
            1..4,
        ),
    ) {
        let dir = tmp_dir("everybyte");
        let j = journal_targets(&dir, &targets);
        let wal = std::fs::read(dir.join("wal.log")).unwrap();
        let scratch = tmp_dir("everybyte-cut");
        for cut in 0..=wal.len() {
            dir_with_cut(&dir, &scratch, cut);
            let d = DurableStore::open(&scratch, FsyncPolicy::OnSnapshot)
                .unwrap_or_else(|e| panic!("cut {cut}: recovery errored: {e}"));
            let k = records_below(&j.boundaries, cut);
            prop_assert_eq!(
                encode_store(d.store()),
                j.states[k].clone(),
                "cut at byte {} should recover state {}", cut, k
            );
            prop_assert_eq!(d.recovery().replayed_records, k as u64);
            // Whatever was dropped is accounted for: a cut inside the
            // header discards the whole file; otherwise the tail past
            // the last complete record.
            let expect_truncated = if (cut as u64) < j.boundaries[0] {
                cut as u64
            } else {
                cut as u64 - j.boundaries[k]
            };
            prop_assert_eq!(d.recovery().truncated_bytes, expect_truncated);
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&scratch);
    }

    /// Same property with a snapshot in the middle: recovery = snapshot
    /// + the record prefix of the post-snapshot WAL.
    #[test]
    fn snapshot_plus_torn_suffix_recovers(
        before in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..5),
            1..3,
        ),
        after in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..5),
            1..3,
        ),
    ) {
        let dir = tmp_dir("snapsuffix");
        let mut d = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        for picks in &before {
            let (target, troot) = gml(picks);
            for rec in delta_records(d.store(), "GML", &target, troot) {
                d.journal(&rec).unwrap();
            }
        }
        d.snapshot().unwrap();
        let mut states = vec![encode_store(d.store())];
        let mut boundaries = vec![d.stats().wal_bytes];
        for picks in &after {
            let (target, troot) = gml(picks);
            for rec in delta_records(d.store(), "GML", &target, troot) {
                d.journal(&rec).unwrap();
                states.push(encode_store(d.store()));
                boundaries.push(d.stats().wal_bytes);
            }
        }
        drop(d);
        let wal = std::fs::read(dir.join("wal.log")).unwrap();
        let scratch = tmp_dir("snapsuffix-cut");
        for cut in 0..=wal.len() {
            dir_with_cut(&dir, &scratch, cut);
            let d = DurableStore::open(&scratch, FsyncPolicy::OnSnapshot)
                .unwrap_or_else(|e| panic!("cut {cut}: recovery errored: {e}"));
            let k = records_below(&boundaries, cut);
            prop_assert!(d.recovery().snapshot_loaded);
            prop_assert_eq!(
                encode_store(d.store()),
                states[k].clone(),
                "cut at byte {} should recover snapshot + {} records", cut, k
            );
            prop_assert_eq!(d.recovery().replayed_records, k as u64);
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&scratch);
    }
}

/// Bit flips anywhere in the log must never panic: framed corruption
/// truncates replay at the damaged record; header corruption is a
/// clean, typed error.
#[test]
fn flipping_any_wal_byte_never_panics() {
    let dir = tmp_dir("flip");
    let j = journal_targets(&dir, &[vec![0, 1, 2], vec![0, 3], vec![4, 4, 5, 1]]);
    let wal = std::fs::read(dir.join("wal.log")).unwrap();
    let scratch = tmp_dir("flip-cut");
    for i in 0..wal.len() {
        let mut damaged = wal.clone();
        damaged[i] ^= 0xa5;
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).unwrap();
        std::fs::write(scratch.join("wal.log"), &damaged).unwrap();
        match DurableStore::open(&scratch, FsyncPolicy::OnSnapshot) {
            Ok(d) => {
                // Replay stopped at or before the damage; whatever was
                // recovered is one of the legitimate prefix states.
                let got = encode_store(d.store());
                assert!(
                    j.states.contains(&got),
                    "flip at byte {i} produced a state outside the journaled prefixes"
                );
            }
            Err(e) => {
                // Header damage (or a checksum collision caught at
                // decode) reports corruption; it must never panic.
                let text = e.to_string();
                assert!(text.contains("corrupt"), "unexpected error shape: {text}");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&scratch);
}

// ---------------------------------------------------------------------
// kill-and-recover, end to end through the HTTP layer

fn system() -> Annoda {
    let c = Corpus::generate(CorpusConfig::tiny(42));
    let (mut a, _) = Annoda::over_sources(c.locuslink, c.go, c.omim);
    a.registry_mut().mediator_mut().enable_cache();
    a
}

fn ephemeral() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    }
}

fn roundtrip(server: &Server, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    let (status, body) = read_response(&mut reader).expect("response");
    (status, String::from_utf8_lossy(&body).into_owned())
}

fn get(server: &Server, path: &str) -> (u16, String) {
    roundtrip(
        server,
        &format!(
            "GET {path} HTTP/1.1\r\nHost: t\r\nAccept: text/plain\r\nConnection: close\r\n\r\n"
        ),
    )
}

fn post(server: &Server, path: &str, body: &str) -> (u16, String) {
    roundtrip(
        server,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn metric_value(metrics: &str, name: &str) -> Option<u64> {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
}

#[test]
fn kill_and_recover_serves_the_same_view_warm() {
    let dir = tmp_dir("e2e");

    // First life: durable server, journal a refresh, then die WITHOUT
    // a shutdown snapshot (Server::shutdown never snapshots — only the
    // binary's clean-quit path does, so this models a kill).
    let durable = DurableSystem::open(system(), &dir, FsyncPolicy::Always).expect("cold open");
    let server = Server::start_durable(durable, ephemeral()).expect("bind");
    let (status, body) = post(&server, "/admin/refresh", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("journaled_records"), "{body}");

    let (status, metrics) = get(&server, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metric_value(&metrics, "annoda_persist_appended_records_total").unwrap() > 0,
        "{metrics}"
    );
    let (_, genes_before) = get(&server, "/genes");
    server.shutdown(std::time::Duration::from_secs(5));

    // Second life: recovery must replay the journal (no snapshot was
    // ever written) and serve the identical integrated view warm.
    let durable = DurableSystem::open(system(), &dir, FsyncPolicy::Always).expect("warm open");
    let report = *durable.recovery().expect("durable has a report");
    assert!(!report.snapshot_loaded, "no snapshot was written");
    assert!(report.replayed_records > 0, "journal replayed: {report:?}");
    let server = Server::start_durable(durable, ephemeral()).expect("bind");

    let (status, metrics) = get(&server, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metric_value(&metrics, "annoda_persist_replayed_records").unwrap() > 0,
        "{metrics}"
    );
    assert_eq!(
        metric_value(&metrics, "annoda_persist_snapshot_loaded"),
        Some(0),
        "{metrics}"
    );

    // The Figure 5 routes still answer; /genes is unchanged.
    let (_, genes_after) = get(&server, "/genes");
    assert_eq!(genes_before, genes_after, "recovered view must match");

    // Warm Lorel runs against the recovered GML clone.
    let (status, body) = post(
        &server,
        "/lorel",
        "select count(GML.Gene) from ANNODA-GML GML",
    );
    assert_eq!(status, 200, "{body}");

    // Object navigation still resolves.
    let symbol = {
        let sys = system();
        let ans = sys.ask(&annoda::GeneQuestion::default()).unwrap();
        ans.fused.genes[0].symbol.clone()
    };
    let (status, body) = get(&server, &format!("/object/gene/{symbol}"));
    assert_eq!(status, 200, "{body}");

    // A snapshot over HTTP truncates the log; the third life starts
    // from the snapshot with nothing to replay.
    let (status, body) = post(&server, "/admin/snapshot", "");
    assert_eq!(status, 200, "{body}");
    server.shutdown(std::time::Duration::from_secs(5));

    let durable = DurableSystem::open(system(), &dir, FsyncPolicy::Always).expect("third open");
    let report = *durable.recovery().expect("report");
    assert!(report.snapshot_loaded);
    assert_eq!(report.replayed_records, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_without_data_dir_is_a_conflict() {
    let server = Server::start(system(), ephemeral()).expect("bind");
    let (status, body) = post(&server, "/admin/snapshot", "");
    assert_eq!(status, 409, "{body}");
    // Refresh still works ephemerally — it just persists nothing.
    let (status, body) = post(&server, "/admin/refresh", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("persisted: false"), "{body}");
    server.shutdown(std::time::Duration::from_secs(5));
}
