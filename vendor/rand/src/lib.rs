//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace-local
//! crate supplies the subset of the `rand 0.8` API the repository uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand` uses for seeding. The *stream* differs from
//! upstream `StdRng` (which is ChaCha12), so corpora generated from a
//! given seed differ from ones generated with crates.io `rand`; they
//! remain fully deterministic in the seed, which is the property the
//! test-suite and the experiment harness rely on.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The default seeded generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

mod sealed {
    /// A type that `gen_range` can sample uniformly from a range.
    pub trait SampleUniform: Copy + PartialOrd {
        fn sample_half_open(rng_word: impl FnMut() -> u64, low: Self, high: Self) -> Self;
        fn successor(self) -> Self;
    }
}
use sealed::SampleUniform;

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(mut rng_word: impl FnMut() -> u64, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias of
                // plain `% span` is irrelevant here, but this avoids it
                // anyway and is branch-free.
                let word = rng_word() as u128;
                let offset = (word.wrapping_mul(span)) >> 64;
                (low as i128 + offset as i128) as $t
            }
            fn successor(self) -> Self {
                self.checked_add(1).expect("gen_range: inclusive range ends at type max")
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(mut rng_word: impl FnMut() -> u64, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng_word() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
    fn successor(self) -> Self {
        self
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_half_open(|| rng.next_u64(), self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        let (low, high) = self.into_inner();
        T::sample_half_open(|| rng.next_u64(), low, high.successor())
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(0..5);
            assert!(x < 5);
            let y = rng.gen_range(10..=12u64);
            assert!((10..=12).contains(&y));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((700..1300).contains(&hits), "p=0.5 gave {hits}/2000");
    }

    #[test]
    fn choose_is_none_on_empty_and_uniformish_otherwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        let mut counts = [0u32; 3];
        for _ in 0..300 {
            counts[*items.choose(&mut rng).unwrap() as usize - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 40), "skewed: {counts:?}");
    }
}
