//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace-local
//! crate implements the subset of the proptest API the repository's
//! property suites use: the [`strategy::Strategy`] trait with `prop_map`
//! / `prop_flat_map`, `Just`, numeric range strategies, tuple strategies,
//! [`arbitrary::any`], [`collection::vec`], [`option::of`],
//! [`string::string_regex`] (a small generator-oriented regex subset),
//! and the `proptest!` / `prop_oneof!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs and
//!   panics; it does not minimise them.
//! * **Deterministic cases.** Each `(file, test name, case index)` maps
//!   to a fixed RNG seed, so failures reproduce across runs without a
//!   persistence file.
//! * The default number of cases is 64 (real proptest: 256) to keep
//!   debug-profile `cargo test` time bounded; suites that ask for an
//!   explicit `ProptestConfig::with_cases(n)` get exactly `n`.

pub mod test_runner {
    /// Per-suite configuration accepted by `proptest!`'s
    /// `#![proptest_config(..)]` attribute.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator for one test case; the mapping is a pure
        /// function of the test's location and the case index.
        pub fn for_case(file: &str, test: &str, case: u64) -> Self {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            file.hash(&mut h);
            test.hash(&mut h);
            case.hash(&mut h);
            TestRng {
                state: h.finish() ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent second strategy from each generated value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn sboxed(self) -> SBoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            SBoxedStrategy(Box::new(self))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    trait DynSample<T> {
        fn dyn_sample(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynSample<S::Value> for S {
        fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct SBoxedStrategy<T>(Box<dyn DynSample<T>>);

    impl<T: Debug> Strategy for SBoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.dyn_sample(rng)
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<T>(Vec<SBoxedStrategy<T>>);

    impl<T: Debug> Union<T> {
        /// Builds the union; `arms` must be non-empty.
        pub fn new(arms: Vec<SBoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct AnyStrategy<A>(pub(crate) PhantomData<A>);

    impl<A: super::arbitrary::Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::AnyStrategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: std::fmt::Debug + Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, magnitude up to ~1e9.
            (rng.unit_f64() - 0.5) * 2.0e9
        }
    }

    /// The strategy generating any value of `A`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Size bounds for [`vec`], convertible from ranges and constants.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for vectors of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S>(S);

    /// Generates `None` a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod string {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Error for regexes outside the supported generator subset.
    #[derive(Debug, Clone)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported generator regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    #[derive(Debug, Clone)]
    enum Atom {
        /// Flattened list of admissible characters.
        Class(Vec<char>),
        Literal(char),
    }

    #[derive(Debug, Clone)]
    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// One `|`-alternative: a sequence of quantified pieces.
    type Branch = Vec<Piece>;

    /// Generates strings matching a small regex subset: character
    /// classes with ranges (`[A-Za-z0-9 .:-]`), literal characters,
    /// `{n}` / `{m,n}` quantifiers, and top-level alternation.
    pub struct RegexGeneratorStrategy {
        branches: Vec<Branch>,
    }

    /// Builds a string strategy from `pattern`; errors on syntax outside
    /// the supported subset.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let branches = pattern
            .split('|')
            .map(parse_branch)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RegexGeneratorStrategy { branches })
    }

    fn parse_branch(branch: &str) -> Result<Branch, Error> {
        let chars: Vec<char> = branch.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or_else(|| Error(format!("unclosed class in {branch:?}")))?
                        + i;
                    let class = parse_class(&chars[i + 1..close])?;
                    i = close + 1;
                    Atom::Class(class)
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .ok_or_else(|| Error(format!("trailing escape in {branch:?}")))?;
                    i += 1;
                    Atom::Literal(c)
                }
                c @ ('(' | ')' | '*' | '+' | '?' | '^' | '$') => {
                    return Err(Error(format!("metacharacter {c:?} in {branch:?}")));
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| Error(format!("unclosed quantifier in {branch:?}")))?
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.parse().map_err(|_| Error(body.clone()))?;
                        let hi = hi.parse().map_err(|_| Error(body.clone()))?;
                        (lo, hi)
                    }
                    None => {
                        let n = body.parse().map_err(|_| Error(body.clone()))?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            if min > max {
                return Err(Error(format!("quantifier {min},{max} in {branch:?}")));
            }
            pieces.push(Piece { atom, min, max });
        }
        Ok(pieces)
    }

    fn parse_class(body: &[char]) -> Result<Vec<char>, Error> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            // `a-z` is a range unless the `-` is the final character.
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i], body[i + 2]);
                if lo as u32 > hi as u32 {
                    return Err(Error(format!("inverted range {lo}-{hi}")));
                }
                for c in lo as u32..=hi as u32 {
                    out.push(char::from_u32(c).expect("class range stays in ASCII"));
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        if out.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok(out)
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let branch = &self.branches[rng.below(self.branches.len() as u64) as usize];
            let mut out = String::new();
            for piece in branch {
                let span = (piece.max - piece.min + 1) as u64;
                let n = piece.min + rng.below(span) as usize;
                for _ in 0..n {
                    match &piece.atom {
                        Atom::Literal(c) => out.push(*c),
                        Atom::Class(class) => {
                            out.push(class[rng.below(class.len() as u64) as usize]);
                        }
                    }
                }
            }
            out
        }
    }
}

pub mod prelude {
    //! The customary glob import, mirroring `proptest::prelude::*`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among the listed strategies (weights unsupported).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::sboxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        file!(),
                        stringify!($name),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    let __inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || $body
                    ));
                    if let Err(panic) = __outcome {
                        eprintln!(
                            "proptest {} failed at case {}/{} with inputs:\n{}",
                            stringify!($name),
                            __case,
                            config.cases,
                            __inputs
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_strategies_match_their_patterns() {
        let mut rng = TestRng::for_case("lib.rs", "regex", 0);
        let s = crate::string::string_regex("[A-Za-z]{1,12}").unwrap();
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((1..=12).contains(&v.chars().count()), "{v:?}");
            assert!(v.chars().all(|c| c.is_ascii_alphabetic()), "{v:?}");
        }
        let printable = crate::string::string_regex("[ -~]{0,60}").unwrap();
        for _ in 0..200 {
            let v = printable.sample(&mut rng);
            assert!(v.chars().count() <= 60);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)), "{v:?}");
        }
        let alt =
            crate::string::string_regex("[A-Za-z0-9][A-Za-z0-9 .:-]{0,18}[A-Za-z0-9]|[A-Za-z0-9]")
                .unwrap();
        for _ in 0..200 {
            let v = alt.sample(&mut rng);
            assert!(!v.is_empty());
            assert!(v.chars().next().unwrap().is_ascii_alphanumeric());
            assert!(v.chars().last().unwrap().is_ascii_alphanumeric());
        }
    }

    #[test]
    fn unsupported_regex_reports_an_error() {
        assert!(crate::string::string_regex("a*").is_err());
        assert!(crate::string::string_regex("(grouped)").is_err());
        assert!(crate::string::string_regex("[unclosed").is_err());
    }

    #[test]
    fn union_and_ranges_sample_within_bounds() {
        let mut rng = TestRng::for_case("lib.rs", "union", 0);
        let s = prop_oneof![Just(1u32), Just(2), 5u32..8];
        for _ in 0..300 {
            let v = s.sample(&mut rng);
            assert!(v == 1 || v == 2 || (5..8).contains(&v), "{v}");
        }
        let inclusive = 3usize..=3;
        assert_eq!(inclusive.sample(&mut rng), 3);
    }

    #[test]
    fn vec_and_tuple_and_map_compose() {
        let mut rng = TestRng::for_case("lib.rs", "compose", 0);
        let s = crate::collection::vec((0u8..4, any::<bool>()), 2..5).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = s.sample(&mut rng);
            assert!((2..5).contains(&n));
        }
        let flat = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..2, n..=n));
        for _ in 0..100 {
            let v = flat.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_runs(x in 0u32..10, y in 0u32..10) {
            prop_assert!(x < 10 && y < 10);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
