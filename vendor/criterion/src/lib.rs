//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace-local
//! crate implements the subset of the criterion API the repository's
//! `[[bench]]` targets use: [`Criterion::bench_function`], benchmark
//! groups with `sample_size` / `bench_with_input` / `finish`,
//! [`BenchmarkId`], and the `criterion_group!` / `criterion_main!`
//! macros. Statistics are simple — median and mean of per-sample wall
//! clock — and results print one line per benchmark. There is no HTML
//! report, outlier analysis, or regression baseline.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (some benches import it
/// from here rather than `std::hint`).
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Hard per-benchmark wall-clock budget so full `cargo bench` runs stay
/// bounded even for expensive bodies.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>` form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The stub times one
/// routine call per batch regardless, so the variants only mirror the
/// real API surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Runs one benchmark body repeatedly and records per-sample timings.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `body` once per sample until the sample budget (or the
    /// global time budget) is exhausted.
    pub fn iter<O>(&mut self, mut body: impl FnMut() -> O) {
        // One untimed warm-up run populates caches and lazy statics.
        black_box(body());
        let started = Instant::now();
        while self.samples.len() < self.sample_size && started.elapsed() < TIME_BUDGET {
            let t0 = Instant::now();
            black_box(body());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let started = Instant::now();
        while self.samples.len() < self.sample_size && started.elapsed() < TIME_BUDGET {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{label:<60} no samples");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<60} median {:>12?}  mean {:>12?}  ({} samples)",
        median,
        mean,
        samples.len()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `body` under `group/id`.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        body(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.samples);
        self
    }

    /// Benchmarks `body` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        body(&mut b, input);
        report(&format!("{}/{}", self.name, id.text), &mut b.samples);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `body` under `name`.
    pub fn bench_function(&mut self, name: &str, mut body: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        };
        body(&mut b);
        report(name, &mut b.samples);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 1, "warm-up plus at least one sample");
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &(), |b, ()| b.iter(|| runs += 1));
        group.finish();
        assert!((2..=6).contains(&runs), "5 samples + warm-up, got {runs}");
    }
}
