//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace-local crate provides the (small) subset of the
//! `parking_lot` API the repository uses: [`Mutex`] and [`RwLock`] with
//! the non-poisoning `lock()` / `read()` / `write()` signatures. They are
//! implemented over `std::sync` primitives; a poisoned std lock (a thread
//! panicked while holding it) is transparently recovered, which matches
//! parking_lot's "no poisoning" semantics.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, recovers from poisoning instead of erroring.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_recovers_from_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
        *m.lock() = 8;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(1i32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 2);
    }
}
