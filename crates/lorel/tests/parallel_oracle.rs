//! Parallel-evaluator equivalence oracle.
//!
//! The partitioned outer binding loop must be invisible in every
//! observable: for any worker count, [`eval_rows_workers_with`] returns
//! exactly the rows of the sequential reference [`eval_rows_naive`] —
//! same multiset, same order — and the materialized answer object
//! (overlay path) renders byte-identically to the historical in-place
//! `eval_with` path.

use proptest::prelude::*;

use annoda_lorel::{
    eval_rows_naive_with, eval_rows_workers_with, eval_snapshot_with, eval_with, parse,
    EvalWorkers, FunctionRegistry,
};
use annoda_oem::{text as oem_text, AtomicValue, OemStore, Snapshot};

/// Same corpus shape as `plan_oracle.rs`: genes with an integer `Id`, a
/// unique `Symbol`, a low-cardinality `Organism`, and an `Omim` child
/// on every third gene.
fn annotated_store(n: usize) -> OemStore {
    let mut db = OemStore::new();
    let root = db.new_complex();
    for i in 0..n {
        let g = db.add_complex_child(root, "Gene").unwrap();
        db.add_atomic_child(g, "Id", AtomicValue::Int(i as i64))
            .unwrap();
        db.add_atomic_child(g, "Symbol", format!("G{i}")).unwrap();
        db.add_atomic_child(g, "Organism", ["human", "mouse", "fly"][i % 3])
            .unwrap();
        if i % 3 == 0 {
            let d = db.add_complex_child(g, "Omim").unwrap();
            db.add_atomic_child(d, "Title", format!("T{i}")).unwrap();
        }
    }
    db.set_name("R", root).unwrap();
    db
}

/// Query templates spanning the planner's rewrites: pushdown, residual
/// filters, joins, reordering, negation, grouping, and ordering —
/// everything the partitioned loop has to preserve.
fn template(tmpl: usize, k: usize, t: i64) -> String {
    match tmpl % 10 {
        0 => format!(r#"select G.Symbol from R.Gene G where G.Symbol = "G{k}""#),
        1 => format!(r#"select G from R.Gene G where G.Id < {t}"#),
        2 => format!(r#"select G.Symbol, D.Title from R.Gene G, G.Omim D where G.Id < {t}"#),
        3 => format!(
            r#"select G.Symbol, H.Id from R.Gene G, R.Gene H where G.Id < {t} and H.Symbol = "G{k}""#
        ),
        4 => "select G from R.Gene G where not exists G.Omim".to_string(),
        5 => "select G.Symbol from R.Gene G order by G.Id desc".to_string(),
        6 => format!(r#"select G from R.Gene G where G.Symbol = "G{k}" or G.Id < {t}"#),
        7 => "select D.Title from R.Gene G, G.Omim D".to_string(),
        8 => format!(r#"select G.Id from R.Gene G where G.Organism = "human" and G.Id < {t}"#),
        _ => format!(
            r#"select G.Id, H.Id from R.Gene G, R.Gene H where G.Organism = "mouse" and H.Symbol = "G{k}" and G.Id < H.Id"#
        ),
    }
}

/// Renders the answer object two ways — legacy in-place `eval_with` on
/// a cloned store vs the zero-clone overlay pipeline viewed through a
/// [`Snapshot`] — and returns both strings for comparison.
fn render_both_paths(store: &OemStore, text: &str) -> (String, String) {
    let functions = FunctionRegistry::default();
    let query = parse(text).expect("templates parse");

    let mut mutated = store.clone();
    let legacy = eval_with(&mut mutated, &query, &functions).expect("templates evaluate");
    let legacy_text = oem_text::write_rooted(&mutated, "answer", legacy.answer);

    let (overlay, shared) = eval_snapshot_with(store, &query, &functions).expect("same query");
    let view = Snapshot::new(store, overlay).expect("overlay fits its base");
    let shared_text = oem_text::write_rooted(&view, "answer", shared.answer);

    assert_eq!(legacy.answer, shared.answer, "answer oid diverges");
    assert_eq!(legacy.rows, shared.rows, "bound rows diverge");
    (legacy_text, shared_text)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Row-level equivalence: for 1, 2, and 8 workers the partitioned
    /// evaluator returns exactly the sequential reference rows.
    #[test]
    fn parallel_rows_equal_sequential(
        tmpl in 0usize..10,
        k in 0usize..48,
        t in 0i64..48,
        n in 1usize..64,
    ) {
        let store = annotated_store(n);
        let text = template(tmpl, k, t);
        let query = parse(&text).expect("templates parse");
        let functions = FunctionRegistry::default();
        let naive = eval_rows_naive_with(&store, &query, &functions).expect("templates evaluate");
        for workers in [1usize, 2, 8] {
            let (rows, explain) = eval_rows_workers_with(
                &store,
                &query,
                &functions,
                EvalWorkers::Fixed(workers),
            )
            .expect("templates evaluate");
            prop_assert_eq!(
                &rows,
                &naive,
                "rows diverge for `{}` at {} workers (used {})",
                text,
                workers,
                explain.workers_used
            );
            prop_assert!(explain.workers_used >= 1);
        }
    }

    /// Answer-shape equivalence: the overlay produced over a shared
    /// snapshot renders byte-identically to the answer the historical
    /// `&mut` evaluator writes into the store — same oids in the `&N`
    /// references, same label order, same values.
    #[test]
    fn overlay_answer_renders_identically(
        tmpl in 0usize..10,
        k in 0usize..24,
        t in 0i64..24,
        n in 1usize..24,
    ) {
        let store = annotated_store(n);
        let text = template(tmpl, k, t);
        let (legacy_text, shared_text) = render_both_paths(&store, &text);
        prop_assert_eq!(legacy_text, shared_text, "renders diverge for `{}`", text);
    }
}

/// Pinned: a store wide enough that every requested worker count
/// actually splits the outer loop, on a join whose inner variable
/// depends on the outer — the hardest case for deterministic merging.
#[test]
fn wide_store_join_is_deterministic_across_worker_counts() {
    let store = annotated_store(200);
    let functions = FunctionRegistry::default();
    let query = parse(
        r#"select G.Symbol, D.Title from R.Gene G, G.Omim D where G.Id < 150 order by G.Symbol"#,
    )
    .unwrap();
    let naive = eval_rows_naive_with(&store, &query, &functions).unwrap();
    assert!(!naive.is_empty());
    let mut used = Vec::new();
    for workers in [1usize, 2, 3, 8, 64] {
        let (rows, explain) =
            eval_rows_workers_with(&store, &query, &functions, EvalWorkers::Fixed(workers))
                .unwrap();
        assert_eq!(rows, naive, "{workers} workers");
        used.push(explain.workers_used);
    }
    assert_eq!(used[0], 1);
    assert!(used[3] >= 2, "8 requested workers must actually partition");
}

/// Pinned: evaluation errors surface identically regardless of which
/// worker's chunk hits them first.
#[test]
fn worker_errors_match_sequential_errors() {
    let store = annotated_store(64);
    let functions = FunctionRegistry::default();
    // An unregistered function fails at eval time, inside the loop.
    let query = parse(r#"select G from R.Gene G where unknownfn(G.Symbol) = 3"#).unwrap();
    let sequential = eval_rows_naive_with(&store, &query, &functions);
    let parallel = eval_rows_workers_with(&store, &query, &functions, EvalWorkers::Fixed(8));
    match (sequential, parallel) {
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!(
            "error behaviour diverges: sequential ok={} parallel ok={}",
            a.is_ok(),
            b.is_ok()
        ),
    }
}
