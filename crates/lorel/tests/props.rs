//! Property-based tests for Lorel: the front end must never panic on
//! arbitrary input, and the evaluator must honour its set semantics
//! (oid-deduplication, double-negation, filter monotonicity).

use proptest::prelude::*;

use annoda_lorel::{eval_rows, parse, run_query};
use annoda_oem::{AtomicValue, OemStore};

fn arbitrary_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,60}").expect("valid regex")
}

/// Query-shaped garbage: keywords, identifiers, and punctuation thrown
/// together — much better at exercising the parser than uniform noise.
fn query_shaped() -> impl Strategy<Value = String> {
    let token = prop_oneof![
        Just("select".to_string()),
        Just("from".to_string()),
        Just("where".to_string()),
        Just("and".to_string()),
        Just("not".to_string()),
        Just("exists".to_string()),
        Just("order".to_string()),
        Just("by".to_string()),
        Just("count".to_string()),
        Just("like".to_string()),
        Just("R".to_string()),
        Just("x".to_string()),
        Just("x.y".to_string()),
        Just("\"lit\"".to_string()),
        Just("42".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just(",".to_string()),
        Just("=".to_string()),
        Just("<".to_string()),
        Just("%".to_string()),
        Just("#".to_string()),
        Just(".".to_string()),
    ];
    proptest::collection::vec(token, 0..12).prop_map(|v| v.join(" "))
}

/// A small store of genes with integer ids and string symbols.
fn gene_store(n: usize) -> OemStore {
    let mut db = OemStore::new();
    let root = db.new_complex();
    for i in 0..n {
        let g = db.add_complex_child(root, "Gene").unwrap();
        db.add_atomic_child(g, "Id", AtomicValue::Int(i as i64))
            .unwrap();
        db.add_atomic_child(g, "Symbol", format!("G{i}")).unwrap();
        if i % 3 == 0 {
            db.add_complex_child(g, "Omim").unwrap();
        }
    }
    db.set_name("R", root).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in arbitrary_text()) {
        let _ = parse(&input); // Ok or Err, never a panic
    }

    #[test]
    fn parser_never_panics_on_query_shaped_input(input in query_shaped()) {
        let _ = parse(&input);
    }

    #[test]
    fn valid_parses_always_evaluate_or_fail_cleanly(input in query_shaped()) {
        if let Ok(q) = parse(&input) {
            let store = gene_store(5);
            let _ = eval_rows(&store, &q); // may Err (unknown root), not panic
        }
    }

    #[test]
    fn display_unparse_reparses_to_the_same_ast(input in query_shaped()) {
        if let Ok(q) = parse(&input) {
            let printed = q.to_string();
            match parse(&printed) {
                Ok(q2) => prop_assert_eq!(q, q2, "unparse `{}`", printed),
                Err(e) => prop_assert!(false, "unparse `{}` failed to parse: {}", printed, e),
            }
        }
    }

    #[test]
    fn projection_is_oid_deduplicated(n in 1usize..12) {
        let mut store = gene_store(n);
        let out = run_query(&mut store, "select G from R.Gene G, R.Gene H").unwrap();
        // The cross product visits each G n times; projection keeps each
        // gene once.
        prop_assert_eq!(out.rows.len(), n * n);
        prop_assert_eq!(out.projected[0].1.len(), n);
    }

    #[test]
    fn double_negation_is_identity(n in 0usize..12, threshold in 0i64..12) {
        let store = gene_store(n);
        let plain = parse(&format!("select G from R.Gene G where G.Id < {threshold}")).unwrap();
        let doubled = parse(&format!(
            "select G from R.Gene G where not not G.Id < {threshold}"
        ))
        .unwrap();
        let a = eval_rows(&store, &plain).unwrap();
        let b = eval_rows(&store, &doubled).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn conjunction_filters_monotonically(n in 0usize..12, threshold in 0i64..12) {
        let store = gene_store(n);
        let loose = parse("select G from R.Gene G").unwrap();
        let tight = parse(&format!(
            "select G from R.Gene G where G.Id < {threshold} and exists G.Omim"
        ))
        .unwrap();
        let all = eval_rows(&store, &loose).unwrap();
        let some = eval_rows(&store, &tight).unwrap();
        prop_assert!(some.len() <= all.len());
        // Every tight row appears among the loose rows.
        for row in &some {
            prop_assert!(all.contains(row));
        }
    }

    #[test]
    fn excluded_middle_partitions_rows(n in 0usize..12, threshold in 0i64..12) {
        let store = gene_store(n);
        let pos = parse(&format!("select G from R.Gene G where G.Id < {threshold}")).unwrap();
        let neg = parse(&format!(
            "select G from R.Gene G where not G.Id < {threshold}"
        ))
        .unwrap();
        let p = eval_rows(&store, &pos).unwrap().len();
        let q = eval_rows(&store, &neg).unwrap().len();
        prop_assert_eq!(p + q, n, "comparisons over total atoms must partition");
    }

    #[test]
    fn order_by_is_a_permutation(n in 0usize..12) {
        let store = gene_store(n);
        let unordered = parse("select G.Symbol from R.Gene G").unwrap();
        let ordered = parse("select G.Symbol from R.Gene G order by G.Symbol desc").unwrap();
        let mut a: Vec<_> = eval_rows(&store, &unordered).unwrap();
        let mut b: Vec<_> = eval_rows(&store, &ordered).unwrap();
        a.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        b.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        prop_assert_eq!(a, b);
    }
}
