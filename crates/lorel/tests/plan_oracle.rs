//! Planner equivalence oracle and `PlanExplain` behaviour.
//!
//! The planned evaluator ([`eval_rows`]) must be observationally
//! identical to the reference nested loop ([`eval_rows_naive`]): same
//! rows, same row order, same projected oids per select label, and
//! matching error behaviour — on structured query templates covering
//! every planner rewrite and on arbitrary query-shaped garbage.

use proptest::prelude::*;

use annoda_lorel::{
    eval_rows, eval_rows_explained, eval_rows_naive, parse, project_row, AccessPath, Projected,
    Query, Row,
};
use annoda_oem::{AtomicValue, OemStore, Oid};

/// Genes with an integer `Id`, a unique `Symbol`, a low-cardinality
/// `Organism`, and an `Omim` child on every third gene — enough shape
/// for pushdown, joins, and selectivity differences.
fn annotated_store(n: usize) -> OemStore {
    let mut db = OemStore::new();
    let root = db.new_complex();
    for i in 0..n {
        let g = db.add_complex_child(root, "Gene").unwrap();
        db.add_atomic_child(g, "Id", AtomicValue::Int(i as i64))
            .unwrap();
        db.add_atomic_child(g, "Symbol", format!("G{i}")).unwrap();
        db.add_atomic_child(g, "Organism", ["human", "mouse", "fly"][i % 3])
            .unwrap();
        if i % 3 == 0 {
            let d = db.add_complex_child(g, "Omim").unwrap();
            db.add_atomic_child(d, "Title", format!("T{i}")).unwrap();
        }
    }
    db.set_name("R", root).unwrap();
    db
}

/// Query templates, each exercising a planner feature: index pushdown
/// (0, 1, 2, 10), residual predicates (1, 10), joins over dependent
/// variables (2, 8), reordering of independent variables (3, 11),
/// negation (4), numeric equality — filter-only, no index (5), the
/// relative-path head fallback (6), var-to-var predicates with ordering
/// (7), and disjunction (9).
fn template(tmpl: usize, k: usize, t: i64) -> String {
    match tmpl % 12 {
        0 => format!(r#"select G.Symbol from R.Gene G where G.Symbol = "G{k}""#),
        1 => format!(r#"select G from R.Gene G where G.Symbol = "G{k}" and G.Id < {t}"#),
        2 => format!(r#"select G.Symbol, D.Title from R.Gene G, G.Omim D where G.Symbol = "G{k}""#),
        3 => format!(
            r#"select G.Symbol, H.Id from R.Gene G, R.Gene H where G.Id < {t} and H.Symbol = "G{k}""#
        ),
        4 => "select G from R.Gene G where not exists G.Omim".to_string(),
        5 => format!("select G from R.Gene G where G.Id = {t}"),
        6 => format!(r#"select G from R.Gene G where Symbol = "G{k}""#),
        7 => "select G.Symbol from R.Gene G, R.Gene H where G.Symbol = H.Symbol \
              order by G.Id desc"
            .to_string(),
        8 => "select D.Title from R.Gene G, G.Omim D".to_string(),
        9 => format!(r#"select G from R.Gene G where G.Symbol = "G{k}" or G.Id < {t}"#),
        10 => format!(r#"select G.Id from R.Gene G where G.Organism = "human" and G.Id < {t}"#),
        _ => format!(
            r#"select G.Id, H.Id from R.Gene G, R.Gene H where G.Organism = "mouse" and H.Symbol = "G{k}" and G.Id < H.Id"#
        ),
    }
}

/// Per select label: the original result oids, deduplicated by oid in
/// first-produced order — the projection identity `eval` materialises.
fn projected_oids(store: &OemStore, query: &Query, rows: &[Row]) -> Vec<(String, Vec<Oid>)> {
    let mut out: Vec<(String, Vec<Oid>)> = query
        .select
        .iter()
        .map(|s| (s.label.clone(), Vec::new()))
        .collect();
    let mut seen: Vec<std::collections::HashSet<Oid>> = vec![Default::default(); out.len()];
    for row in rows {
        for (idx, (_, values)) in project_row(store, query, row)
            .expect("templates project cleanly")
            .into_iter()
            .enumerate()
        {
            for v in values {
                if let Projected::Obj(oid) = v {
                    if seen[idx].insert(oid) {
                        out[idx].1.push(oid);
                    }
                }
            }
        }
    }
    out
}

/// Query-shaped garbage (same shape as `props.rs`): tokens that parse
/// often enough to reach the evaluator.
fn query_shaped() -> impl Strategy<Value = String> {
    let token = prop_oneof![
        Just("select".to_string()),
        Just("from".to_string()),
        Just("where".to_string()),
        Just("and".to_string()),
        Just("or".to_string()),
        Just("not".to_string()),
        Just("exists".to_string()),
        Just("order".to_string()),
        Just("by".to_string()),
        Just("count".to_string()),
        Just("like".to_string()),
        Just("R".to_string()),
        Just("G".to_string()),
        Just("Gene".to_string()),
        Just("x".to_string()),
        Just("x.y".to_string()),
        Just("G.Symbol".to_string()),
        Just("\"G1\"".to_string()),
        Just("\"lit\"".to_string()),
        Just("42".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just(",".to_string()),
        Just("=".to_string()),
        Just("<".to_string()),
        Just("%".to_string()),
        Just("#".to_string()),
        Just(".".to_string()),
    ];
    proptest::collection::vec(token, 0..12).prop_map(|v| v.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn planned_rows_and_projections_equal_naive(
        tmpl in 0usize..12,
        k in 0usize..24,
        t in 0i64..24,
        n in 1usize..24,
    ) {
        let store = annotated_store(n);
        let text = template(tmpl, k, t);
        let query = parse(&text).expect("templates parse");
        let planned = eval_rows(&store, &query).expect("templates evaluate");
        let naive = eval_rows_naive(&store, &query).expect("templates evaluate");
        prop_assert_eq!(&planned, &naive, "rows diverge for `{}`", text);
        prop_assert_eq!(
            projected_oids(&store, &query, &planned),
            projected_oids(&store, &query, &naive),
            "projected oids diverge for `{}`",
            text
        );
    }

    #[test]
    fn planned_equals_naive_on_query_shaped_garbage(input in query_shaped()) {
        if let Ok(query) = parse(&input) {
            let store = annotated_store(7);
            let planned = eval_rows(&store, &query);
            let naive = eval_rows_naive(&store, &query);
            match (planned, naive) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "rows diverge for `{}`", input),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "error behaviour diverges for `{}`: planned {:?} vs naive {:?}",
                    input, a.is_ok(), b.is_ok()
                ),
            }
        }
    }
}

// ----- PlanExplain unit behaviour -----------------------------------------

#[test]
fn explain_reports_index_seek_for_eligible_query() {
    let store = annotated_store(30);
    let query = parse(r#"select G from R.Gene G where G.Symbol = "G7""#).unwrap();
    let (rows, explain) = eval_rows_explained(&store, &query).unwrap();
    assert_eq!(rows.len(), 1);
    assert!(!explain.naive_fallback);
    assert!(explain.index_backed());
    match &explain.access {
        AccessPath::IndexSeek {
            var,
            attr,
            key,
            candidates,
        } => {
            assert_eq!(var, "G");
            assert_eq!(attr, "Symbol");
            assert_eq!(key, "G7");
            assert_eq!(*candidates, 1);
        }
        AccessPath::Scan => panic!("expected an index seek"),
    }
    // The seek enumerates the bucket, not the entity set.
    assert_eq!(explain.probes.bindings_enumerated, 1);
    assert_eq!(explain.probes.rows_emitted, 1);
}

#[test]
fn explain_reports_scan_for_numeric_equality() {
    // Numeric keys coerce ("7" == 7.0) so the text index cannot serve
    // them: the planner scans but still filters at binding depth.
    let store = annotated_store(30);
    let query = parse("select G from R.Gene G where G.Id = 7").unwrap();
    let (rows, explain) = eval_rows_explained(&store, &query).unwrap();
    assert_eq!(rows.len(), 1);
    assert!(!explain.naive_fallback);
    assert!(matches!(explain.access, AccessPath::Scan));
    assert_eq!(explain.probes.bindings_enumerated, 30);
    assert_eq!(explain.predicates_at_depth, vec![1]);
}

#[test]
fn explain_reports_fallback_for_duplicate_variables() {
    let store = annotated_store(5);
    let query = parse("select G from R.Gene G, R.Gene G").unwrap();
    let (rows, explain) = eval_rows_explained(&store, &query).unwrap();
    assert!(explain.naive_fallback);
    assert!(!explain.index_backed());
    assert_eq!(rows, eval_rows_naive(&store, &query).unwrap());
}

#[test]
fn selective_variable_binds_first_and_order_is_restored() {
    let store = annotated_store(30);
    let query =
        parse(r#"select G.Id, H.Id from R.Gene G, R.Gene H where H.Symbol = "G3" and G.Id < 5"#)
            .unwrap();
    let (rows, explain) = eval_rows_explained(&store, &query).unwrap();
    assert!(explain.reordered, "the seeded variable must bind first");
    assert_eq!(explain.bind_order, vec!["H".to_string(), "G".to_string()]);
    assert_eq!(explain.estimated_cardinality[0], 1, "index bucket estimate");
    // 1 seek candidate for H, then 30 G candidates under it.
    assert_eq!(explain.probes.bindings_enumerated, 31);
    // Rows come back in the naive (textual) order regardless.
    assert_eq!(rows, eval_rows_naive(&store, &query).unwrap());
}

#[test]
fn value_index_is_cached_on_the_store() {
    let store = annotated_store(20);
    assert_eq!(store.cached_index_count(), 0);
    let q1 = parse(r#"select G from R.Gene G where G.Symbol = "G1""#).unwrap();
    eval_rows(&store, &q1).unwrap();
    assert_eq!(store.cached_index_count(), 1);
    // A different key over the same (root, path, attribute) reuses it.
    let q2 = parse(r#"select G from R.Gene G where G.Symbol = "G2""#).unwrap();
    eval_rows(&store, &q2).unwrap();
    assert_eq!(store.cached_index_count(), 1);
    // A different attribute builds a second index.
    let q3 = parse(r#"select G from R.Gene G where G.Organism = "human""#).unwrap();
    eval_rows(&store, &q3).unwrap();
    assert_eq!(store.cached_index_count(), 2);
}

#[test]
fn mutation_invalidates_the_cached_plan_inputs() {
    let mut store = annotated_store(10);
    let query = parse(r#"select G from R.Gene G where G.Symbol = "G99""#).unwrap();
    assert_eq!(eval_rows(&store, &query).unwrap().len(), 0);
    assert!(store.cached_index_count() >= 1);
    // Grow the store: the stale index must not hide the new gene.
    let root = store.named("R").unwrap();
    let g = store.add_complex_child(root, "Gene").unwrap();
    store.add_atomic_child(g, "Symbol", "G99").unwrap();
    assert_eq!(store.cached_index_count(), 0, "mutation clears the cache");
    assert_eq!(eval_rows(&store, &query).unwrap().len(), 1);
}
