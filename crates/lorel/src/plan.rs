//! Query planning for the Lorel evaluator.
//!
//! The naive evaluator ([`crate::eval_rows_naive`]) binds the `from`
//! clause left to right, enumerating *every* object each range variable
//! can reach, and only evaluates the `where` clause once a full binding
//! exists. This module plans a cheaper but row-for-row identical
//! execution:
//!
//! 1. **Selection pushdown.** A conjunctive equality `V.Attr = "text"`
//!    over a root-anchored range variable seeds `V`'s candidates from a
//!    store-cached [`annoda_oem::ValueIndex`] instead of enumerating the
//!    whole entity set. Non-numeric string keys compare textually under
//!    Lorel's coercion rules, so the index bucket is exact; the equality
//!    conjunct is still re-verified as a residual predicate.
//! 2. **Filter-as-you-bind.** The `where` clause is split into its
//!    top-level conjuncts and each conjunct runs at the shallowest
//!    binding depth where all range variables it mentions are bound,
//!    pruning the cartesian product early.
//! 3. **From-clause reordering.** Range variables bind most-selective
//!    first (store-cached label cardinalities, index bucket sizes),
//!    subject to head dependencies; the naive left-to-right row order is
//!    restored afterwards from memoised candidate positions, so callers
//!    observe byte-identical results.
//!
//! A [`PlanExplain`] records the chosen access path, binding order, and
//! probe counters; `bench_report` and the planner tests assert against
//! it. When a query uses a shape the planner cannot prove equivalent
//! (duplicate variable names, unresolvable heads, unknown functions whose
//! error timing the naive path defines), planning returns `None` and the
//! evaluator falls back to the naive loop.

use std::collections::HashMap;
use std::sync::Arc;

use annoda_oem::{AtomicValue, OemStore, Oid, PathStep};

use crate::ast::{CompOp, Cond, Expr, Query};
use crate::error::LorelError;
use crate::eval::{eval_cond, resolve_head, Ctx, FunctionRegistry, Row};

/// Estimated candidate count for a range variable anchored on another
/// variable (per-parent fan-out is unknowable without binding it).
const DEPENDENT_FANOUT_ESTIMATE: usize = 8;

/// Under [`EvalWorkers::Auto`], outer candidate sets smaller than this
/// stay sequential — thread spawn overhead dwarfs the binding work.
const PARALLEL_MIN_CANDIDATES: usize = 32;

/// Under [`EvalWorkers::Auto`], a **join** plan (more than one range
/// variable) adds a worker only per this many outer candidates. Each
/// worker re-enumerates the inner relations into its own private memo,
/// so splitting a join across workers multiplies that enumeration by
/// the worker count; B10's `worker_sweep` measured join p50 *regressing*
/// 1728µs→2306µs going 1→2 workers at 1k loci (and still losing at
/// 10k). Only outer sets big enough to amortise the duplicated memo per
/// chunk can win.
const PARALLEL_MIN_JOIN_CHUNK: usize = 16_384;

/// Worker policy for the outermost from-clause binding loop.
///
/// The outer loop partitions the first bound variable's candidates into
/// contiguous chunks evaluated by scoped threads; partial row sets merge
/// in chunk order, which *is* the sequential enumeration order, so rows,
/// probe totals, and downstream answers are byte-identical for every
/// worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EvalWorkers {
    /// Size by [`std::thread::available_parallelism`], staying
    /// sequential when the outer candidate set is small.
    #[default]
    Auto,
    /// Use up to this many workers regardless of candidate count
    /// (`0` and `1` both mean sequential). Tests use this to force the
    /// parallel path on small stores.
    Fixed(usize),
}

impl EvalWorkers {
    /// Effective worker count for an outer loop over `candidates`.
    /// `join` marks plans with more than one range variable, whose
    /// workers each pay a private inner-relation memo — under `Auto`
    /// those stay sequential until the per-worker chunk clears
    /// [`PARALLEL_MIN_JOIN_CHUNK`]. `Fixed` is honoured as given (the
    /// worker-sweep bench pins it to measure exactly this trade).
    fn resolve(self, candidates: usize, join: bool) -> usize {
        let want = match self {
            EvalWorkers::Fixed(n) => n.max(1),
            EvalWorkers::Auto if candidates < PARALLEL_MIN_CANDIDATES => 1,
            EvalWorkers::Auto => {
                let hw = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                if join {
                    hw.min(candidates / PARALLEL_MIN_JOIN_CHUNK)
                } else {
                    hw
                }
            }
        };
        want.min(candidates.max(1)).max(1)
    }
}

/// How the planner produces the seeded variable's candidates.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Candidates for `var` come from a value-index bucket.
    IndexSeek {
        /// The seeded range variable.
        var: String,
        /// The indexed attribute label.
        attr: String,
        /// The literal key probed.
        key: String,
        /// Bucket size (candidates seeded).
        candidates: usize,
    },
    /// Every range variable enumerates its full reachable set.
    Scan,
}

/// Execution counters filled in while a plan runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanProbes {
    /// Candidate bindings enumerated across all depths.
    pub bindings_enumerated: u64,
    /// Predicate (conjunct) evaluations performed.
    pub predicate_evaluations: u64,
    /// Rows that survived every predicate.
    pub rows_emitted: u64,
}

/// What the planner decided, plus how execution went.
#[derive(Debug, Clone)]
pub struct PlanExplain {
    /// Access path for the most selective variable.
    pub access: AccessPath,
    /// Range variables in chosen binding order.
    pub bind_order: Vec<String>,
    /// True when the binding order differs from the query text.
    pub reordered: bool,
    /// Estimated candidate count per `bind_order` entry.
    pub estimated_cardinality: Vec<usize>,
    /// Number of conjuncts evaluated at each binding depth.
    pub predicates_at_depth: Vec<usize>,
    /// Conjuncts with no variable dependencies, checked once up front.
    pub floor_predicates: usize,
    /// True when the planner declined and the naive evaluator ran.
    pub naive_fallback: bool,
    /// Worker threads the outer binding loop actually used (1 when the
    /// loop ran sequentially, including every naive fallback).
    pub workers_used: usize,
    /// Execution counters (zero for explain-only calls).
    pub probes: PlanProbes,
}

impl PlanExplain {
    /// True when the plan seeds a variable from a value index.
    pub fn index_backed(&self) -> bool {
        matches!(self.access, AccessPath::IndexSeek { .. })
    }

    /// The explain reported when the planner declines a query.
    pub(crate) fn fallback(query: &Query) -> Self {
        PlanExplain {
            access: AccessPath::Scan,
            bind_order: query.from.iter().map(|f| f.var.clone()).collect(),
            reordered: false,
            estimated_cardinality: Vec::new(),
            predicates_at_depth: Vec::new(),
            floor_predicates: 0,
            naive_fallback: true,
            workers_used: 1,
            probes: PlanProbes::default(),
        }
    }
}

/// Where a `from` item's head anchors.
#[derive(Debug, Clone, Copy, PartialEq)]
enum HeadKind {
    /// A named store root.
    Root(Oid),
    /// The variable of the given (original-order) `from` item.
    Var(usize),
}

/// An index seek feeding one range variable.
struct Seek {
    /// Original index of the seeded `from` item.
    item: usize,
    /// The bucket, in the same order a scan would enumerate (filtered).
    bucket: Arc<Vec<Oid>>,
}

/// A proven-equivalent execution strategy for one query.
pub(crate) struct Plan<'q> {
    /// Original `from`-item indices in chosen binding order.
    order: Vec<usize>,
    /// Binding depth of each original `from` item (inverse of `order`).
    depth_of_item: Vec<usize>,
    /// Head classification per original `from` item.
    heads: Vec<HeadKind>,
    /// Conjuncts evaluated right after the binding at each depth.
    conds_at_depth: Vec<Vec<&'q Cond>>,
    /// Dependency-free conjuncts, evaluated once before binding.
    floor_conds: Vec<&'q Cond>,
    /// Optional index seek for the most selective variable.
    seek: Option<Seek>,
    reordered: bool,
    explain: PlanExplain,
}

/// Splits a condition into its top-level conjuncts, left to right.
fn split_conjuncts<'q>(cond: &'q Cond, out: &mut Vec<&'q Cond>) {
    match cond {
        Cond::And(l, r) => {
            split_conjuncts(l, out);
            split_conjuncts(r, out);
        }
        other => out.push(other),
    }
}

/// Collects every path head mentioned by an expression.
fn expr_heads<'q>(expr: &'q Expr, out: &mut Vec<&'q str>) {
    match expr {
        Expr::Literal(_) => {}
        Expr::Path { head, .. } => out.push(head),
        Expr::Aggregate(_, inner) => expr_heads(inner, out),
        Expr::Call { args, .. } => {
            for a in args {
                expr_heads(a, out);
            }
        }
    }
}

/// Collects every path head mentioned by a condition.
fn cond_heads<'q>(cond: &'q Cond, out: &mut Vec<&'q str>) {
    match cond {
        Cond::And(l, r) | Cond::Or(l, r) => {
            cond_heads(l, out);
            cond_heads(r, out);
        }
        Cond::Not(c) => cond_heads(c, out),
        Cond::Exists(e) => expr_heads(e, out),
        Cond::Cmp(l, _, r) | Cond::In(l, r) => {
            expr_heads(l, out);
            expr_heads(r, out);
        }
    }
}

/// True when the condition calls a function the registry does not know.
/// The naive evaluator reports such errors only when (and if) a full
/// binding reaches the condition, so the planner refuses these queries
/// rather than change error timing.
fn has_unknown_call(cond: &Cond, functions: &FunctionRegistry) -> bool {
    fn expr_has(expr: &Expr, functions: &FunctionRegistry) -> bool {
        match expr {
            Expr::Literal(_) | Expr::Path { .. } => false,
            Expr::Aggregate(_, inner) => expr_has(inner, functions),
            Expr::Call { name, args } => {
                functions.get(name).is_none() || args.iter().any(|a| expr_has(a, functions))
            }
        }
    }
    match cond {
        Cond::And(l, r) | Cond::Or(l, r) => {
            has_unknown_call(l, functions) || has_unknown_call(r, functions)
        }
        Cond::Not(c) => has_unknown_call(c, functions),
        Cond::Exists(e) => expr_has(e, functions),
        Cond::Cmp(l, _, r) | Cond::In(l, r) => expr_has(l, functions) || expr_has(r, functions),
    }
}

/// Plans `query` against `store`, or returns `None` when the naive
/// evaluator must run instead.
pub(crate) fn plan_query<'q>(
    store: &OemStore,
    query: &'q Query,
    functions: &FunctionRegistry,
) -> Option<Plan<'q>> {
    let n = query.from.len();
    if n == 0 {
        return None;
    }
    let vars: Vec<&str> = query.from.iter().map(|f| f.var.as_str()).collect();
    // Duplicate variable names shadow each other positionally in the
    // naive evaluator; reordering would change which binding wins.
    for (i, v) in vars.iter().enumerate() {
        if vars[..i].contains(v) {
            return None;
        }
    }

    // Classify heads. Anything the naive evaluator would fail to resolve
    // (or would resolve differently under reordering) falls back.
    let mut heads = Vec::with_capacity(n);
    for (i, item) in query.from.iter().enumerate() {
        if let Some(j) = vars[..i].iter().position(|v| *v == item.head) {
            heads.push(HeadKind::Var(j));
        } else if vars.contains(&item.head.as_str()) {
            // Head names a variable bound at-or-after this item: the
            // naive evaluator would not see it in scope, but a reordered
            // binding might. Refuse.
            return None;
        } else if let Some(root) = store.named(&item.head) {
            heads.push(HeadKind::Root(root));
        } else {
            // The naive evaluator raises "neither a bound variable nor a
            // named root" here iff earlier candidates exist; keep its
            // exact behaviour.
            return None;
        }
    }

    // Split the where clause and refuse unknown calls (error timing).
    let mut conjuncts: Vec<&'q Cond> = Vec::new();
    if let Some(cond) = &query.where_ {
        if has_unknown_call(cond, functions) {
            return None;
        }
        split_conjuncts(cond, &mut conjuncts);
    }

    // Per-conjunct variable dependencies (bitmask over original items).
    let dep_mask = |cond: &Cond| -> u64 {
        let mut heads_mentioned = Vec::new();
        cond_heads(cond, &mut heads_mentioned);
        let mut mask = 0u64;
        for head in heads_mentioned {
            if let Some(j) = vars.iter().position(|v| *v == head) {
                mask |= 1 << j;
            } else if store.named(head).is_none() {
                // Unknown head: resolved relative to the first range
                // variable (the paper's loose `where Source.Name = …`).
                mask |= 1;
            }
        }
        mask
    };
    let masks: Vec<u64> = conjuncts.iter().map(|c| dep_mask(c)).collect();

    // Selection pushdown: the smallest index bucket among conjunctive
    // equalities `V.Attr = "non-numeric literal"` over root-anchored
    // variables. Non-numeric keys make the text index exact under
    // Lorel's coercing equality (Str-vs-any falls back to text
    // comparison when the string does not parse as a number).
    let mut seek: Option<(usize, String, String, Arc<Vec<Oid>>)> = None;
    for cond in &conjuncts {
        let Cond::Cmp(l, CompOp::Eq, r) = cond else {
            continue;
        };
        for (path_side, lit_side) in [(l, r), (r, l)] {
            let Expr::Path { head, path } = path_side else {
                continue;
            };
            let Expr::Literal(lit) = lit_side else {
                continue;
            };
            let [PathStep::Label(attr)] = path.steps() else {
                continue;
            };
            if !matches!(lit, AtomicValue::Str(_)) || lit.as_real().is_some() {
                continue;
            }
            let Some(i) = vars.iter().position(|v| *v == head.as_str()) else {
                continue;
            };
            let HeadKind::Root(root) = heads[i] else {
                continue;
            };
            let key = lit.as_text();
            let index = store.cached_value_index(root, &query.from[i].path, attr);
            let bucket = index.lookup(&key);
            if seek
                .as_ref()
                .is_none_or(|(_, _, _, b)| bucket.len() < b.len())
            {
                seek = Some((i, attr.clone(), key, Arc::new(bucket.to_vec())));
            }
        }
    }

    // Estimated candidates per item: bucket size for the seeded item,
    // cached path cardinality for root-anchored items, a fixed fan-out
    // guess for dependent items.
    let estimates: Vec<usize> = (0..n)
        .map(|i| match (&seek, heads[i]) {
            (Some((s, _, _, bucket)), _) if *s == i => bucket.len(),
            (_, HeadKind::Root(root)) => store.cached_cardinality(root, &query.from[i].path),
            (_, HeadKind::Var(_)) => DEPENDENT_FANOUT_ESTIMATE,
        })
        .collect();

    // Greedy dependency-respecting order: cheapest ready item first,
    // original position as the deterministic tie-break.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        let next = (0..n)
            .filter(|&i| !placed[i])
            .filter(|&i| match heads[i] {
                HeadKind::Root(_) => true,
                HeadKind::Var(j) => placed[j],
            })
            .min_by_key(|&i| (estimates[i], i))
            .expect("acyclic head dependencies always leave a ready item");
        placed[next] = true;
        order.push(next);
    }
    let reordered = order.iter().enumerate().any(|(d, &i)| d != i);

    let mut depth_of_item = vec![0usize; n];
    for (depth, &item) in order.iter().enumerate() {
        depth_of_item[item] = depth;
    }

    // Assign each conjunct to the shallowest depth where its variables
    // are bound; dependency-free conjuncts run once before binding.
    let mut conds_at_depth: Vec<Vec<&'q Cond>> = vec![Vec::new(); n];
    let mut floor_conds: Vec<&'q Cond> = Vec::new();
    for (cond, &mask) in conjuncts.iter().zip(&masks) {
        if mask == 0 {
            floor_conds.push(cond);
        } else {
            let depth = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| depth_of_item[i])
                .max()
                .expect("non-zero mask");
            conds_at_depth[depth].push(cond);
        }
    }

    let access = match &seek {
        Some((i, attr, key, bucket)) => AccessPath::IndexSeek {
            var: query.from[*i].var.clone(),
            attr: attr.clone(),
            key: key.clone(),
            candidates: bucket.len(),
        },
        None => AccessPath::Scan,
    };
    let explain = PlanExplain {
        access,
        bind_order: order.iter().map(|&i| query.from[i].var.clone()).collect(),
        reordered,
        estimated_cardinality: order.iter().map(|&i| estimates[i]).collect(),
        predicates_at_depth: conds_at_depth.iter().map(Vec::len).collect(),
        floor_predicates: floor_conds.len(),
        naive_fallback: false,
        workers_used: 1,
        probes: PlanProbes::default(),
    };
    Some(Plan {
        order,
        depth_of_item,
        heads,
        conds_at_depth,
        floor_conds,
        seek: seek.map(|(item, _, _, bucket)| Seek { item, bucket }),
        reordered,
        explain,
    })
}

impl Plan<'_> {
    /// Runs the plan, returning rows in the naive evaluator's exact
    /// order plus the filled-in [`PlanExplain`]. The outermost binding
    /// loop fans out across scoped threads per `workers`; results are
    /// byte-identical for every worker count.
    pub(crate) fn execute(
        &self,
        store: &OemStore,
        query: &Query,
        functions: &FunctionRegistry,
        workers: EvalWorkers,
    ) -> Result<(Vec<Row>, PlanExplain), LorelError> {
        let ctx = Ctx {
            default_var: &query.from[0].var,
            functions,
        };
        let mut explain = self.explain.clone();

        let empty = Row {
            bindings: Vec::new(),
        };
        for cond in &self.floor_conds {
            explain.probes.predicate_evaluations += 1;
            if !eval_cond(store, cond, &empty, &ctx)? {
                return Ok((Vec::new(), explain));
            }
        }

        let mut rows = Vec::new();
        let mut memo: HashMap<(usize, Oid), Arc<Vec<Oid>>> = HashMap::new();
        // The depth-0 item is always root-anchored (the greedy order only
        // picks ready items), so its candidates need no environment.
        let top = self.candidates_for(store, query, self.order[0], &[], &mut memo)?;
        let n_workers = workers.resolve(top.len(), self.order.len() > 1);
        explain.workers_used = n_workers;

        if n_workers <= 1 {
            let mut env: Vec<(String, Oid)> = Vec::with_capacity(query.from.len());
            for &candidate in top.iter() {
                self.bind_candidate(
                    store,
                    query,
                    0,
                    candidate,
                    &mut env,
                    &mut rows,
                    &ctx,
                    &mut memo,
                    &mut explain.probes,
                )?;
            }
        } else {
            // Contiguous chunks preserve the sequential enumeration
            // order: concatenating per-chunk row sets in chunk order
            // yields exactly the rows a single worker would emit, and a
            // chunk's error is the error the sequential loop would hit
            // first (earlier chunks completed clean).
            let chunk_size = top.len().div_ceil(n_workers);
            type WorkerOut =
                Result<(Vec<Row>, HashMap<(usize, Oid), Arc<Vec<Oid>>>, PlanProbes), LorelError>;
            let partials: Vec<WorkerOut> = std::thread::scope(|scope| {
                let handles: Vec<_> = top
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move || -> WorkerOut {
                            let ctx = Ctx {
                                default_var: &query.from[0].var,
                                functions,
                            };
                            let mut env: Vec<(String, Oid)> = Vec::with_capacity(query.from.len());
                            let mut rows = Vec::new();
                            let mut memo = HashMap::new();
                            let mut probes = PlanProbes::default();
                            for &candidate in chunk {
                                self.bind_candidate(
                                    store,
                                    query,
                                    0,
                                    candidate,
                                    &mut env,
                                    &mut rows,
                                    &ctx,
                                    &mut memo,
                                    &mut probes,
                                )?;
                            }
                            Ok((rows, memo, probes))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("eval worker panicked"))
                    .collect()
            });
            for partial in partials {
                let (mut worker_rows, worker_memo, worker_probes) = partial?;
                rows.append(&mut worker_rows);
                for (key, value) in worker_memo {
                    memo.entry(key).or_insert(value);
                }
                explain.probes.bindings_enumerated += worker_probes.bindings_enumerated;
                explain.probes.predicate_evaluations += worker_probes.predicate_evaluations;
                explain.probes.rows_emitted += worker_probes.rows_emitted;
            }
        }

        if self.reordered {
            self.restore_naive_order(query, &mut rows, &memo);
        }
        Ok((rows, explain))
    }

    /// Candidate objects for the item at `depth`, memoised per
    /// `(item, start)` so join re-visits skip the path evaluation the
    /// naive evaluator repeats.
    fn candidates_for(
        &self,
        store: &OemStore,
        query: &Query,
        item_idx: usize,
        env: &[(String, Oid)],
        memo: &mut HashMap<(usize, Oid), Arc<Vec<Oid>>>,
    ) -> Result<Arc<Vec<Oid>>, LorelError> {
        if let Some(seek) = &self.seek {
            if seek.item == item_idx {
                return Ok(Arc::clone(&seek.bucket));
            }
        }
        let item = &query.from[item_idx];
        let starts = resolve_head(store, &item.head, env).ok_or_else(|| {
            LorelError::eval(format!(
                "`{}` is neither a bound variable nor a named root",
                item.head
            ))
        })?;
        let start = starts[0];
        if let Some(hit) = memo.get(&(item_idx, start)) {
            return Ok(Arc::clone(hit));
        }
        let computed = Arc::new(item.path.eval_many(store, &starts));
        memo.insert((item_idx, start), Arc::clone(&computed));
        Ok(computed)
    }

    #[allow(clippy::too_many_arguments)] // recursive executor carries its whole state
    fn bind(
        &self,
        store: &OemStore,
        query: &Query,
        depth: usize,
        env: &mut Vec<(String, Oid)>,
        rows: &mut Vec<Row>,
        ctx: &Ctx<'_>,
        memo: &mut HashMap<(usize, Oid), Arc<Vec<Oid>>>,
        probes: &mut PlanProbes,
    ) -> Result<(), LorelError> {
        if depth == self.order.len() {
            probes.rows_emitted += 1;
            // Bindings in original from-clause order, as the naive
            // evaluator produces them.
            let bindings = (0..query.from.len())
                .map(|i| env[self.depth_of_item[i]].clone())
                .collect();
            rows.push(Row { bindings });
            return Ok(());
        }
        let item_idx = self.order[depth];
        let candidates = self.candidates_for(store, query, item_idx, env, memo)?;
        for &candidate in candidates.iter() {
            self.bind_candidate(store, query, depth, candidate, env, rows, ctx, memo, probes)?;
        }
        Ok(())
    }

    /// Binds one candidate at `depth`, runs the depth's residual
    /// conjuncts, and recurses into deeper bindings — the per-candidate
    /// body of [`Plan::bind`], split out so the parallel outer loop can
    /// drive it chunk by chunk.
    #[allow(clippy::too_many_arguments)]
    fn bind_candidate(
        &self,
        store: &OemStore,
        query: &Query,
        depth: usize,
        candidate: Oid,
        env: &mut Vec<(String, Oid)>,
        rows: &mut Vec<Row>,
        ctx: &Ctx<'_>,
        memo: &mut HashMap<(usize, Oid), Arc<Vec<Oid>>>,
        probes: &mut PlanProbes,
    ) -> Result<(), LorelError> {
        let item = &query.from[self.order[depth]];
        probes.bindings_enumerated += 1;
        env.push((item.var.clone(), candidate));
        // Materialise the partial row without copying: the bindings
        // vector is lent to the Row and taken back afterwards.
        let row = Row {
            bindings: std::mem::take(env),
        };
        let mut keep = true;
        let mut failure = None;
        for cond in &self.conds_at_depth[depth] {
            probes.predicate_evaluations += 1;
            match eval_cond(store, cond, &row, ctx) {
                Ok(true) => {}
                Ok(false) => {
                    keep = false;
                    break;
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        *env = row.bindings;
        if let Some(e) = failure {
            return Err(e);
        }
        if keep {
            self.bind(store, query, depth + 1, env, rows, ctx, memo, probes)?;
        }
        env.pop();
        Ok(())
    }

    /// Sorts rows into the order the naive left-to-right enumeration
    /// would have produced them, using each binding's position in its
    /// item's candidate list. The seeded item uses bucket positions,
    /// which are a strictly monotone subsequence of the scan positions,
    /// so comparisons agree.
    fn restore_naive_order(
        &self,
        query: &Query,
        rows: &mut Vec<Row>,
        memo: &HashMap<(usize, Oid), Arc<Vec<Oid>>>,
    ) {
        let n = query.from.len();
        let mut position_maps: HashMap<(usize, Oid), HashMap<Oid, usize>> = HashMap::new();
        let mut keyed: Vec<(Vec<usize>, Row)> = std::mem::take(rows)
            .into_iter()
            .map(|row| {
                let key = (0..n)
                    .map(|i| {
                        let bound = row
                            .get(&query.from[i].var)
                            .expect("emitted rows bind every variable");
                        let start = match self.heads[i] {
                            HeadKind::Root(root) => root,
                            HeadKind::Var(j) => row
                                .get(&query.from[j].var)
                                .expect("head variables bind before dependants"),
                        };
                        let positions = position_maps.entry((i, start)).or_insert_with(|| {
                            let list = match &self.seek {
                                Some(seek) if seek.item == i => &seek.bucket,
                                _ => memo
                                    .get(&(i, start))
                                    .expect("every emitted binding was enumerated"),
                            };
                            list.iter().enumerate().map(|(p, &o)| (o, p)).collect()
                        });
                        positions[&bound]
                    })
                    .collect::<Vec<usize>>();
                (key, row)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        *rows = keyed.into_iter().map(|(_, row)| row).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_rows_workers_with;
    use crate::parse;

    #[test]
    fn auto_resolve_keeps_joins_sequential_below_the_chunk_floor() {
        // Single-binding loops parallelise once past the candidate floor.
        assert_eq!(
            EvalWorkers::Auto.resolve(PARALLEL_MIN_CANDIDATES - 1, false),
            1
        );
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(EvalWorkers::Auto.resolve(10_000, false), hw.min(10_000));
        // Joins duplicate the per-worker memo: sequential until the
        // per-worker chunk clears PARALLEL_MIN_JOIN_CHUNK.
        assert_eq!(EvalWorkers::Auto.resolve(1_000, true), 1);
        assert_eq!(EvalWorkers::Auto.resolve(10_000, true), 1);
        assert_eq!(
            EvalWorkers::Auto.resolve(2 * PARALLEL_MIN_JOIN_CHUNK, true),
            hw.min(2)
        );
        // Fixed is honoured regardless (the worker-sweep bench pins it).
        assert_eq!(EvalWorkers::Fixed(2).resolve(1_000, true), 2);
        assert_eq!(EvalWorkers::Fixed(0).resolve(1_000, true), 1);
    }

    #[test]
    fn auto_join_runs_sequential_and_matches_fixed_output() {
        // A medium store: 200 genes sharing 8 function ids — enough
        // outer candidates to clear PARALLEL_MIN_CANDIDATES, far below
        // the join chunk floor. The B10 regression shape in miniature.
        let mut store = OemStore::new();
        let root = store.new_complex();
        store.set_name("R", root).unwrap();
        for i in 0..200 {
            let g = store.add_complex_child(root, "Gene").unwrap();
            store
                .add_atomic_child(g, "Symbol", format!("G{i}"))
                .unwrap();
            store
                .add_atomic_child(g, "FunctionID", format!("GO:{}", i % 8))
                .unwrap();
            let f = store.add_complex_child(root, "Function").unwrap();
            store
                .add_atomic_child(f, "FunctionID", format!("GO:{}", i % 8))
                .unwrap();
        }
        let q = parse(
            "select G.Symbol from R.Gene G, R.Function F \
             where G.FunctionID = F.FunctionID",
        )
        .unwrap();
        let functions = FunctionRegistry::default();
        let (auto_rows, auto_explain) =
            eval_rows_workers_with(&store, &q, &functions, EvalWorkers::Auto).unwrap();
        assert_eq!(
            auto_explain.workers_used, 1,
            "a medium join under Auto must not pay the scatter/join tax"
        );
        let (fixed_rows, fixed_explain) =
            eval_rows_workers_with(&store, &q, &functions, EvalWorkers::Fixed(2)).unwrap();
        assert_eq!(fixed_explain.workers_used, 2);
        assert_eq!(auto_rows, fixed_rows, "worker policy never changes rows");
    }
}
