//! Tokeniser for Lorel.
//!
//! Keywords are case-insensitive (the paper writes `Select … From … Where`).
//! Identifiers may contain `-` (e.g. `ANNODA-GML`), `_` and digits; path
//! separators, comparison operators, parentheses, commas, and the OEM
//! wildcards `%` / `#` are punctuation tokens.

use crate::error::LorelError;

/// A lexical token with its byte offset in the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token in the input (for error reporting).
    pub offset: usize,
}

/// Token kinds. Keyword variants correspond to the case-insensitive
/// Lorel keywords of the same name; punctuation variants to the symbol
/// in their doc comment.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // keyword variants are self-describing
pub enum TokenKind {
    // keywords
    Select,
    Distinct,
    From,
    Where,
    Order,
    Group,
    By,
    Asc,
    Desc,
    And,
    Or,
    Not,
    Exists,
    Like,
    As,
    In,
    Into,
    Count,
    Sum,
    Min,
    Max,
    Avg,
    True,
    False,
    /// An identifier (path head, label, variable, or function name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A real literal.
    Real(f64),
    /// A quoted string literal (escapes resolved).
    Str(String),
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `|`
    Pipe,
    /// `%` (single-step wildcard)
    Percent,
    /// `#` (general path wildcard)
    Hash,
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(i) => format!("integer {i}"),
            TokenKind::Real(r) => format!("real {r}"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Eof => "end of query".to_string(),
            other => format!("{other:?}").to_lowercase(),
        }
    }
}

fn keyword(word: &str) -> Option<TokenKind> {
    Some(match word.to_ascii_lowercase().as_str() {
        "select" => TokenKind::Select,
        "distinct" => TokenKind::Distinct,
        "from" => TokenKind::From,
        "where" => TokenKind::Where,
        "order" => TokenKind::Order,
        "group" => TokenKind::Group,
        "by" => TokenKind::By,
        "asc" => TokenKind::Asc,
        "desc" => TokenKind::Desc,
        "and" => TokenKind::And,
        "or" => TokenKind::Or,
        "not" => TokenKind::Not,
        "exists" => TokenKind::Exists,
        "like" => TokenKind::Like,
        "as" => TokenKind::As,
        "in" => TokenKind::In,
        "into" => TokenKind::Into,
        "count" => TokenKind::Count,
        "sum" => TokenKind::Sum,
        "min" => TokenKind::Min,
        "max" => TokenKind::Max,
        "avg" => TokenKind::Avg,
        "true" => TokenKind::True,
        "false" => TokenKind::False,
        _ => return None,
    })
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

/// Tokenises `input`, appending a trailing [`TokenKind::Eof`].
pub fn lex(input: &str) -> Result<Vec<Token>, LorelError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    // Track byte offsets alongside char indices for error reporting.
    let mut offsets = Vec::with_capacity(bytes.len() + 1);
    {
        let mut off = 0;
        for c in &bytes {
            offsets.push(off);
            off += c.len_utf8();
        }
        offsets.push(off);
    }

    while i < bytes.len() {
        let c = bytes[i];
        let offset = offsets[i];
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset,
                });
                i += 1;
            }
            '|' => {
                tokens.push(Token {
                    kind: TokenKind::Pipe,
                    offset,
                });
                i += 1;
            }
            '%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    offset,
                });
                i += 1;
            }
            '#' => {
                tokens.push(Token {
                    kind: TokenKind::Hash,
                    offset,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                tokens.push(Token {
                    kind: TokenKind::Ne,
                    offset,
                });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset,
                    });
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < bytes.len() {
                    match bytes[j] {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => {
                            let esc = bytes.get(j + 1).copied();
                            match esc {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                _ => {
                                    return Err(LorelError::Lex {
                                        offset: offsets[j],
                                        message: "bad escape in string literal".into(),
                                    })
                                }
                            }
                            j += 2;
                        }
                        c => {
                            s.push(c);
                            j += 1;
                        }
                    }
                }
                if !closed {
                    return Err(LorelError::Lex {
                        offset,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset,
                });
                i = j + 1;
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1; // consume sign or first digit
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_real = false;
                if i < bytes.len()
                    && bytes[i] == '.'
                    && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    is_real = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                let kind = if is_real {
                    TokenKind::Real(text.parse().map_err(|_| LorelError::Lex {
                        offset,
                        message: format!("bad real literal `{text}`"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LorelError::Lex {
                        offset,
                        message: format!("bad integer literal `{text}`"),
                    })?)
                };
                tokens.push(Token { kind, offset });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                let kind = keyword(&word).unwrap_or(TokenKind::Ident(word));
                tokens.push(Token { kind, offset });
            }
            other => {
                return Err(LorelError::Lex {
                    offset,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("Select FROM wHeRe"),
            vec![
                TokenKind::Select,
                TokenKind::From,
                TokenKind::Where,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn hyphenated_identifiers_lex_whole() {
        assert_eq!(
            kinds("ANNODA-GML"),
            vec![TokenKind::Ident("ANNODA-GML".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn negative_number_vs_hyphen_in_ident() {
        assert_eq!(
            kinds("x -5"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Int(-5),
                TokenKind::Eof
            ]
        );
        // Inside an identifier the hyphen binds to the identifier.
        assert_eq!(
            kinds("x-5"),
            vec![TokenKind::Ident("x-5".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn numbers_and_reals() {
        assert_eq!(
            kinds("42 3.5 -2.25"),
            vec![
                TokenKind::Int(42),
                TokenKind::Real(3.5),
                TokenKind::Real(-2.25),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a \"b\"\n""#),
            vec![TokenKind::Str("a \"b\"\n".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(matches!(lex("\"abc"), Err(LorelError::Lex { .. })));
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= != <> < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn wildcards_and_punctuation() {
        assert_eq!(
            kinds("a.%.#,(b|c)"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Percent,
                TokenKind::Dot,
                TokenKind::Hash,
                TokenKind::Comma,
                TokenKind::LParen,
                TokenKind::Ident("b".into()),
                TokenKind::Pipe,
                TokenKind::Ident("c".into()),
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn bad_character_reports_offset() {
        match lex("select ; x") {
            Err(LorelError::Lex { offset, .. }) => assert_eq!(offset, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_keywords() {
        assert_eq!(
            kinds("count(x)"),
            vec![
                TokenKind::Count,
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
    }
}
