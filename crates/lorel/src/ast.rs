//! Abstract syntax of Lorel queries.

use std::fmt;

use annoda_oem::{AtomicValue, PathExpr};

/// A complete select-from-where query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The projection list.
    pub select: Vec<SelectItem>,
    /// Range-variable bindings, evaluated left to right.
    pub from: Vec<FromItem>,
    /// Optional filter; `None` keeps every binding.
    pub where_: Option<Cond>,
    /// Optional grouping expression: rows with equal (textual) values of
    /// this expression form one group; aggregates in the select list are
    /// computed per group. An OQL-flavoured extension to core Lorel.
    pub group_by: Option<Expr>,
    /// Optional ordering of result rows.
    pub order_by: Vec<OrderKey>,
    /// Optional answer name (`select … into MyView from …`): the answer
    /// object is registered under this root name instead of `answer`,
    /// so later queries can range over it — the paper's "new object,
    /// which can be reused in later queries", made explicit.
    pub into_name: Option<String>,
}

/// One projection.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// The output label, from `AS name` or derived (variable name, last
    /// path label, or aggregate name).
    pub label: String,
}

/// One `from` binding: `path var`. The path's head identifier names either
/// a store root or a previously bound variable.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// The head identifier (root name or earlier variable).
    pub head: String,
    /// The remaining navigation steps.
    pub path: PathExpr,
    /// The bound range variable.
    pub var: String,
}

/// An ordering key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The sort expression (first atomic instance per row).
    pub expr: Expr,
    /// Descending when true.
    pub descending: bool,
}

/// Boolean conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// Both conditions hold.
    And(Box<Cond>, Box<Cond>),
    /// Either condition holds.
    Or(Box<Cond>, Box<Cond>),
    /// The condition does not hold.
    Not(Box<Cond>),
    /// `expr op expr` — existentially quantified over path instances.
    Cmp(Expr, CompOp, Expr),
    /// `exists path` — some instance of the path exists.
    Exists(Expr),
    /// `expr in path` — some instance of the path has the same oid or an
    /// equal atomic value.
    In(Expr, Expr),
}

/// Comparison operators. `Like` uses SQL `%`/`_` wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // standard comparison operators
pub enum CompOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Like,
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompOp::Eq => "=",
            CompOp::Ne => "!=",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
            CompOp::Like => "like",
        })
    }
}

/// Value expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Literal(AtomicValue),
    /// A path rooted at a variable or store root: head + steps.
    Path {
        /// The head identifier (variable or root name).
        head: String,
        /// The navigation steps following the head.
        path: PathExpr,
    },
    /// An aggregate over the instance set of a path.
    Aggregate(AggFn, Box<Expr>),
    /// A call to a registered specialty evaluation function
    /// (`term_depth(G.GOID)`) — Table 1's "integration of new specialty
    /// evaluation functions", available inside the query language.
    Call {
        /// The registered function name.
        name: String,
        /// Argument expressions; each contributes its first atomic
        /// instance (or none).
        args: Vec<Expr>,
    },
}

/// Aggregate functions over path instance sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // standard aggregate functions
pub enum AggFn {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFn {
    /// The derived output label for an unnamed aggregate projection.
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Count => "count",
            AggFn::Sum => "sum",
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Avg => "avg",
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => match v {
                AtomicValue::Str(s) => {
                    write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
                }
                AtomicValue::Url(u) => write!(f, "\"{u}\""),
                other => write!(f, "{other}"),
            },
            Expr::Path { head, path } => {
                if path.is_empty() {
                    write!(f, "{head}")
                } else {
                    write!(f, "{head}.{path}")
                }
            }
            Expr::Aggregate(fun, inner) => write!(f, "{}({inner})", fun.name()),
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::And(l, r) => write!(f, "({l} and {r})"),
            Cond::Or(l, r) => write!(f, "({l} or {r})"),
            Cond::Not(c) => write!(f, "not {c}"),
            Cond::Cmp(l, op, r) => write!(f, "{l} {op} {r}"),
            Cond::Exists(e) => write!(f, "exists {e}"),
            Cond::In(l, r) => write!(f, "{l} in {r}"),
        }
    }
}

impl fmt::Display for Query {
    /// Unparses the query into valid Lorel that re-parses to an
    /// equivalent AST (parenthesisation may differ; semantics do not).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", item.expr)?;
            if item.label != item.expr.default_label() {
                write!(f, " as {}", item.label)?;
            }
        }
        if let Some(n) = &self.into_name {
            write!(f, " into {n}")?;
        }
        write!(f, " from ")?;
        for (i, item) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if item.path.is_empty() {
                write!(f, "{}", item.head)?;
            } else {
                write!(f, "{}.{}", item.head, item.path)?;
            }
            if item.var != item.head {
                write!(f, " {}", item.var)?;
            }
        }
        if let Some(cond) = &self.where_ {
            write!(f, " where {cond}")?;
        }
        if let Some(g) = &self.group_by {
            write!(f, " group by {g}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " order by ")?;
            for (i, key) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", key.expr)?;
                if key.descending {
                    write!(f, " desc")?;
                }
            }
        }
        Ok(())
    }
}

impl Expr {
    /// Derives the default projection label for this expression.
    pub fn default_label(&self) -> String {
        match self {
            Expr::Literal(v) => v.as_text(),
            Expr::Path { head, path } => {
                // Last concrete label if any, else the head.
                path.steps()
                    .iter()
                    .rev()
                    .find_map(|s| match s {
                        annoda_oem::PathStep::Label(l) => Some(l.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| head.clone())
            }
            Expr::Aggregate(f, _) => f.name().to_string(),
            Expr::Call { name, .. } => name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_labels() {
        let var = Expr::Path {
            head: "G".into(),
            path: PathExpr::default(),
        };
        assert_eq!(var.default_label(), "G");

        let path = Expr::Path {
            head: "G".into(),
            path: PathExpr::parse("Links.Url").unwrap(),
        };
        assert_eq!(path.default_label(), "Url");

        let agg = Expr::Aggregate(AggFn::Count, Box::new(var));
        assert_eq!(agg.default_label(), "count");
    }

    #[test]
    fn comp_op_displays() {
        assert_eq!(CompOp::Le.to_string(), "<=");
        assert_eq!(CompOp::Like.to_string(), "like");
    }
}
