//! Query evaluation.
//!
//! Semantics follow Lorel:
//!
//! * the `from` clause binds each range variable to one object per row,
//!   nested-loop style, navigating path expressions from a store root or a
//!   previously bound variable;
//! * predicates over paths are **existentially quantified** — `S.Name =
//!   "LocusLink"` holds when *some* instance of `S.Name` equals the
//!   literal, with Lorel's cross-type coercion;
//! * every binding that passes `where` contributes the `select`
//!   expressions' values to the result;
//! * the result is a collection of OEM objects under a freshly created
//!   complex `answer` object, with **duplicate elimination by oid**;
//! * coercion of selected complex objects creates *new* objects whose
//!   references point at the original database objects — exactly how the
//!   paper's example produces the new object `&442` with references
//!   `SourceID &103, Name &104, …`. The new `answer` root re-binds the
//!   store's `answer` name, so "renaming is necessary so that answer is
//!   not overwritten" is honoured by [`annoda_oem::OemStore::set_name_overwrite`].

use std::cmp::Ordering;
use std::collections::HashMap;

use annoda_oem::{AnswerOverlay, AtomicValue, OemRead, OemStore, Oid};

use crate::ast::{AggFn, CompOp, Cond, Expr, Query};
use crate::error::LorelError;
use crate::parser::parse;
use crate::plan::{EvalWorkers, PlanExplain};

/// A registered specialty evaluation function: takes the first atomic
/// instance of each argument (when present) and returns a value, or
/// `None` to signal "no value" (which makes enclosing predicates
/// false).
pub type LorelFn =
    std::sync::Arc<dyn Fn(&[Option<AtomicValue>]) -> Option<AtomicValue> + Send + Sync>;

/// Named specialty evaluation functions usable in queries.
#[derive(Default, Clone)]
pub struct FunctionRegistry {
    functions: HashMap<String, LorelFn>,
}

impl FunctionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a function.
    pub fn register(&mut self, name: &str, f: LorelFn) {
        self.functions.insert(name.to_string(), f);
    }

    /// Looks up a function by name.
    pub fn get(&self, name: &str) -> Option<&LorelFn> {
        self.functions.get(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.functions.keys().cloned().collect();
        v.sort();
        v
    }

    /// The standard library: `strlen(s)`, `upper(s)`, `lower(s)`,
    /// `abs(n)` — small string/number helpers available to every ANNODA
    /// query surface.
    pub fn standard() -> Self {
        let mut reg = Self::new();
        let first = |args: &[Option<AtomicValue>]| args.first().and_then(|a| a.clone());
        reg.register(
            "strlen",
            std::sync::Arc::new(move |args| {
                first(args).map(|v| AtomicValue::Int(v.as_text().chars().count() as i64))
            }),
        );
        reg.register(
            "upper",
            std::sync::Arc::new(move |args| {
                first(args).map(|v| AtomicValue::Str(v.as_text().to_uppercase()))
            }),
        );
        reg.register(
            "lower",
            std::sync::Arc::new(move |args| {
                first(args).map(|v| AtomicValue::Str(v.as_text().to_lowercase()))
            }),
        );
        reg.register(
            "abs",
            std::sync::Arc::new(move |args| {
                first(args)
                    .and_then(|v| v.as_real())
                    .map(|n| AtomicValue::Real(n.abs()))
            }),
        );
        reg
    }
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// Shared evaluation context: the fallback variable for relative paths
/// plus the registered functions.
pub(crate) struct Ctx<'a> {
    pub(crate) default_var: &'a str,
    pub(crate) functions: &'a FunctionRegistry,
}

/// One passing variable assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// `(variable, bound object)` in `from`-clause order.
    pub bindings: Vec<(String, Oid)>,
}

impl Row {
    /// The binding of `var`, if present.
    pub fn get(&self, var: &str) -> Option<Oid> {
        self.bindings
            .iter()
            .find(|(v, _)| v == var)
            .map(|&(_, o)| o)
    }
}

/// The result of running a query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The freshly created `answer` object (named `answer` in the store).
    pub answer: Oid,
    /// The passing rows, before projection.
    pub rows: Vec<Row>,
    /// Per select item: the item's label and the *original* result oids,
    /// duplicate-eliminated by oid in first-produced order.
    pub projected: Vec<(String, Vec<Oid>)>,
    /// The group keys, in group order, when the query had `group by`
    /// (empty otherwise). `answer` then holds one `group` object per key
    /// with the select items evaluated per group.
    pub groups: Vec<String>,
}

impl QueryOutcome {
    /// When the whole query produced exactly one result object, that
    /// object (the coerced copy reachable from `answer`). This is the
    /// paper's `&442` for the §4.1 example. Works over a plain store or
    /// a `base ⊕ overlay` [`annoda_oem::Snapshot`].
    pub fn sole_result<S: OemRead + ?Sized>(&self, store: &S) -> Option<Oid> {
        let edges = store.edges_of(self.answer);
        if edges.len() == 1 {
            Some(edges[0].target)
        } else {
            None
        }
    }

    /// Total number of result edges under `answer`.
    pub fn result_count<S: OemRead + ?Sized>(&self, store: &S) -> usize {
        store.edges_of(self.answer).len()
    }
}

/// Parses and evaluates `text` against `store`.
pub fn run_query(store: &mut OemStore, text: &str) -> Result<QueryOutcome, LorelError> {
    let query = parse(text)?;
    eval(store, &query)
}

/// [`run_query`] with registered specialty evaluation functions.
pub fn run_query_with(
    store: &mut OemStore,
    text: &str,
    functions: &FunctionRegistry,
) -> Result<QueryOutcome, LorelError> {
    let query = parse(text)?;
    eval_with(store, &query, functions)
}

/// One projected value: an existing object or a computed atomic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Projected {
    /// A database object (original oid, not a coerced copy).
    Obj(Oid),
    /// A computed value (literal or aggregate) with no object identity.
    Val(AtomicValue),
}

/// Evaluates the query **without mutating the store**: returns the
/// passing rows only (sorted if the query orders). Wrappers and the
/// mediator use this to run subqueries against shared local models.
///
/// Execution goes through the [planner](crate::plan): eligible queries
/// use index-backed selection pushdown, filter-as-you-bind pruning, and
/// selectivity-driven binding order; anything the planner cannot prove
/// equivalent runs the naive nested loop. Both paths return identical
/// rows in identical order.
pub fn eval_rows(store: &OemStore, query: &Query) -> Result<Vec<Row>, LorelError> {
    eval_rows_with(store, query, &FunctionRegistry::default())
}

/// [`eval_rows`] with registered specialty evaluation functions in
/// scope.
pub fn eval_rows_with(
    store: &OemStore,
    query: &Query,
    functions: &FunctionRegistry,
) -> Result<Vec<Row>, LorelError> {
    eval_rows_explained_with(store, query, functions).map(|(rows, _)| rows)
}

/// [`eval_rows_with`] that also reports what the planner did (access
/// path, binding order, probe counters) via a [`crate::plan::PlanExplain`].
pub fn eval_rows_explained(
    store: &OemStore,
    query: &Query,
) -> Result<(Vec<Row>, crate::plan::PlanExplain), LorelError> {
    eval_rows_explained_with(store, query, &FunctionRegistry::default())
}

/// [`eval_rows_explained`] with registered specialty evaluation
/// functions in scope.
pub fn eval_rows_explained_with(
    store: &OemStore,
    query: &Query,
    functions: &FunctionRegistry,
) -> Result<(Vec<Row>, crate::plan::PlanExplain), LorelError> {
    eval_rows_workers_with(store, query, functions, EvalWorkers::Auto)
}

/// [`eval_rows_explained_with`] with an explicit worker policy for the
/// outermost binding loop. Results are byte-identical for every worker
/// count — parallelism only changes wall-clock time.
pub fn eval_rows_workers_with(
    store: &OemStore,
    query: &Query,
    functions: &FunctionRegistry,
    workers: EvalWorkers,
) -> Result<(Vec<Row>, crate::plan::PlanExplain), LorelError> {
    if let Some(plan) = crate::plan::plan_query(store, query, functions) {
        let (mut rows, explain) = plan.execute(store, query, functions, workers)?;
        if !query.order_by.is_empty() {
            let ctx = Ctx {
                default_var: &query.from[0].var,
                functions,
            };
            sort_rows(store, query, &mut rows, &ctx);
        }
        return Ok((rows, explain));
    }
    let rows = eval_rows_naive_with(store, query, functions)?;
    Ok((rows, crate::plan::PlanExplain::fallback(query)))
}

/// The reference evaluator: left-to-right nested-loop binding with the
/// full `where` clause checked per complete row, no planning. Kept
/// public as the equivalence oracle for planner tests and benchmarks.
pub fn eval_rows_naive(store: &OemStore, query: &Query) -> Result<Vec<Row>, LorelError> {
    eval_rows_naive_with(store, query, &FunctionRegistry::default())
}

/// [`eval_rows_naive`] with registered specialty evaluation functions
/// in scope.
pub fn eval_rows_naive_with(
    store: &OemStore,
    query: &Query,
    functions: &FunctionRegistry,
) -> Result<Vec<Row>, LorelError> {
    let ctx = Ctx {
        default_var: &query.from[0].var,
        functions,
    };
    let mut rows: Vec<Row> = Vec::new();
    bind_from(store, query, 0, &mut Vec::new(), &mut rows, &ctx)?;
    if !query.order_by.is_empty() {
        sort_rows(store, query, &mut rows, &ctx);
    }
    Ok(rows)
}

/// Projects one row through the query's select list without creating
/// objects. Each item yields its label and the instance values.
pub fn project_row(
    store: &OemStore,
    query: &Query,
    row: &Row,
) -> Result<Vec<(String, Vec<Projected>)>, LorelError> {
    let registry = FunctionRegistry::default();
    let ctx = Ctx {
        default_var: &query.from[0].var,
        functions: &registry,
    };
    let mut out = Vec::with_capacity(query.select.len());
    for item in &query.select {
        let values = match evaluate_expr(store, &item.expr, row, &ctx)? {
            Evaled::Oids(oids) => oids.into_iter().map(Projected::Obj).collect(),
            Evaled::Value(v) => vec![Projected::Val(v)],
            Evaled::None => Vec::new(),
        };
        out.push((item.label.clone(), values));
    }
    Ok(out)
}

/// Evaluates the query's `where` clause for one externally-constructed
/// row (used by index-backed access paths to verify candidates).
pub fn row_passes(
    store: &OemStore,
    query: &Query,
    row: &Row,
    functions: &FunctionRegistry,
) -> Result<bool, LorelError> {
    let ctx = Ctx {
        default_var: &query.from[0].var,
        functions,
    };
    match &query.where_ {
        Some(cond) => eval_cond(store, cond, row, &ctx),
        None => Ok(true),
    }
}

/// Evaluates an already-parsed query against `store`.
pub fn eval(store: &mut OemStore, query: &Query) -> Result<QueryOutcome, LorelError> {
    eval_with(store, query, &FunctionRegistry::default())
}

/// [`eval`] with registered specialty evaluation functions in scope.
///
/// Internally this is the snapshot pipeline: a pure read phase over
/// `&*store` produces the rows, [`materialize`] builds the answer in an
/// [`AnswerOverlay`], and the overlay's op log is replayed onto the
/// store — byte-identical (same oids, same label interning order, same
/// names) to the historical in-place evaluation.
pub fn eval_with(
    store: &mut OemStore,
    query: &Query,
    functions: &FunctionRegistry,
) -> Result<QueryOutcome, LorelError> {
    let (overlay, outcome) = eval_snapshot_with(store, query, functions)?;
    overlay
        .apply_to(store)
        .map_err(|e| LorelError::eval(e.to_string()))?;
    Ok(outcome)
}

/// Parses and evaluates `text` against a **shared, immutable** store:
/// the answer lands in the returned [`AnswerOverlay`] instead of the
/// store, so many queries can evaluate concurrently against one
/// `Arc<OemStore>` snapshot. Render or navigate the answer through an
/// [`annoda_oem::Snapshot`] built from the same base.
pub fn run_query_snapshot(
    base: &OemStore,
    text: &str,
    functions: &FunctionRegistry,
) -> Result<(AnswerOverlay, QueryOutcome), LorelError> {
    let query = parse(text)?;
    eval_snapshot_with(base, &query, functions)
}

/// [`run_query_snapshot`] that also reports the planner's decisions and
/// takes an explicit [`EvalWorkers`] policy for the parallel binding
/// loop.
pub fn run_query_snapshot_explained(
    base: &OemStore,
    text: &str,
    functions: &FunctionRegistry,
    workers: EvalWorkers,
) -> Result<(AnswerOverlay, QueryOutcome, PlanExplain), LorelError> {
    let query = parse(text)?;
    let (rows, explain) = eval_rows_workers_with(base, &query, functions, workers)?;
    let (overlay, outcome) = materialize(base, &query, rows, functions)?;
    Ok((overlay, outcome, explain))
}

/// Evaluates an already-parsed query against a shared immutable store,
/// returning the answer overlay and the outcome. See
/// [`run_query_snapshot`].
pub fn eval_snapshot_with(
    base: &OemStore,
    query: &Query,
    functions: &FunctionRegistry,
) -> Result<(AnswerOverlay, QueryOutcome), LorelError> {
    let rows = eval_rows_with(base, query, functions)?;
    materialize(base, query, rows, functions)
}

/// The answer-materialization phase: projects `rows` through the select
/// list into a fresh [`AnswerOverlay`] above `base`'s high-water mark.
/// All reads stay on `base` (rows bind only base objects, and nothing
/// in the base can reference an overlay object), so this needs no
/// mutable store access.
fn materialize(
    base: &OemStore,
    query: &Query,
    rows: Vec<Row>,
    functions: &FunctionRegistry,
) -> Result<(AnswerOverlay, QueryOutcome), LorelError> {
    if query.group_by.is_some() {
        return materialize_grouped(base, query, rows, functions);
    }

    // ----- projection and answer construction ---------------------------
    let ctx = Ctx {
        default_var: &query.from[0].var,
        functions,
    };
    let mut overlay = AnswerOverlay::for_base(base);
    let answer = overlay.new_complex();
    // Per item: original oid → coerced oid, for oid-based dedup.
    let mut memo: Vec<HashMap<Oid, Oid>> = vec![HashMap::new(); query.select.len()];
    let mut projected: Vec<(String, Vec<Oid>)> = query
        .select
        .iter()
        .map(|it| (it.label.clone(), Vec::new()))
        .collect();

    for row in &rows {
        for (idx, item) in query.select.iter().enumerate() {
            match evaluate_expr(base, &item.expr, row, &ctx)? {
                Evaled::Oids(oids) => {
                    for oid in oids {
                        if memo[idx].contains_key(&oid) {
                            continue;
                        }
                        let coerced = coerce(base, &mut overlay, oid);
                        memo[idx].insert(oid, coerced);
                        projected[idx].1.push(oid);
                        overlay
                            .add_edge(base, answer, &item.label, coerced)
                            .map_err(|e| LorelError::eval(e.to_string()))?;
                    }
                }
                Evaled::Value(v) => {
                    // Computed values (aggregates, literals) create a new
                    // atomic object per row.
                    let atom = overlay.new_atomic(v);
                    projected[idx].1.push(atom);
                    overlay
                        .add_edge(base, answer, &item.label, atom)
                        .map_err(|e| LorelError::eval(e.to_string()))?;
                }
                Evaled::None => {}
            }
        }
    }

    register_answer(&mut overlay, query, answer)?;
    Ok((
        overlay,
        QueryOutcome {
            answer,
            rows,
            projected,
            groups: Vec::new(),
        },
    ))
}

/// Registers the answer object: always under `answer` (re-bound per
/// query), and additionally under the query's `into` name when given.
fn register_answer(
    overlay: &mut AnswerOverlay,
    query: &Query,
    answer: Oid,
) -> Result<(), LorelError> {
    overlay
        .set_name_overwrite("answer", answer)
        .map_err(|e| LorelError::eval(e.to_string()))?;
    if let Some(name) = &query.into_name {
        overlay
            .set_name_overwrite(name, answer)
            .map_err(|e| LorelError::eval(e.to_string()))?;
    }
    Ok(())
}

/// Grouped evaluation: rows with equal textual values of the `group by`
/// expression form one group; aggregate select items are computed over
/// the union of their argument's instances across the group's rows;
/// non-aggregate items are taken from the group's first row. The answer
/// holds one `group` object per key, carrying a `key` atom plus the
/// select items.
fn materialize_grouped(
    base: &OemStore,
    query: &Query,
    rows: Vec<Row>,
    functions: &FunctionRegistry,
) -> Result<(AnswerOverlay, QueryOutcome), LorelError> {
    let gexpr = query.group_by.as_ref().expect("caller checked");
    let ctx = Ctx {
        default_var: &query.from[0].var,
        functions,
    };

    // Partition rows by the textual group key, preserving first-seen
    // group order.
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<Row>> = HashMap::new();
    for row in rows.iter() {
        let key = first_atom(base, gexpr, row, &ctx)
            .map(|v| v.as_text())
            .unwrap_or_else(|| "<null>".to_string());
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(row.clone());
    }

    let mut overlay = AnswerOverlay::for_base(base);
    let answer = overlay.new_complex();
    let mut projected: Vec<(String, Vec<Oid>)> = query
        .select
        .iter()
        .map(|it| (it.label.clone(), Vec::new()))
        .collect();
    for key in &order {
        let group_rows = &groups[key];
        let group_obj = overlay.new_complex();
        overlay
            .add_edge(base, answer, "group", group_obj)
            .map_err(|e| LorelError::eval(e.to_string()))?;
        let key_atom = overlay.new_atomic(AtomicValue::Str(key.clone()));
        overlay
            .add_edge(base, group_obj, "key", key_atom)
            .map_err(|e| LorelError::eval(e.to_string()))?;
        for (idx, item) in query.select.iter().enumerate() {
            match &item.expr {
                Expr::Aggregate(f, inner) => {
                    // Union of the argument's instances across the group.
                    let mut oids: Vec<Oid> = Vec::new();
                    let mut seen: std::collections::HashSet<Oid> = Default::default();
                    for row in group_rows {
                        if let Evaled::Oids(os) = evaluate_expr(base, inner, row, &ctx)? {
                            for o in os {
                                if seen.insert(o) {
                                    oids.push(o);
                                }
                            }
                        }
                    }
                    if let Evaled::Value(v) = aggregate(base, *f, &oids) {
                        let atom = overlay.new_atomic(v);
                        projected[idx].1.push(atom);
                        overlay
                            .add_edge(base, group_obj, &item.label, atom)
                            .map_err(|e| LorelError::eval(e.to_string()))?;
                    }
                }
                other => {
                    // Non-aggregate: representative values from the
                    // group's first row.
                    let first = &group_rows[0];
                    match evaluate_expr(base, other, first, &ctx)? {
                        Evaled::Oids(oids) => {
                            for oid in oids {
                                let coerced = coerce(base, &mut overlay, oid);
                                projected[idx].1.push(oid);
                                overlay
                                    .add_edge(base, group_obj, &item.label, coerced)
                                    .map_err(|e| LorelError::eval(e.to_string()))?;
                            }
                        }
                        Evaled::Value(v) => {
                            let atom = overlay.new_atomic(v);
                            projected[idx].1.push(atom);
                            overlay
                                .add_edge(base, group_obj, &item.label, atom)
                                .map_err(|e| LorelError::eval(e.to_string()))?;
                        }
                        Evaled::None => {}
                    }
                }
            }
        }
    }
    register_answer(&mut overlay, query, answer)?;
    Ok((
        overlay,
        QueryOutcome {
            answer,
            rows,
            projected,
            groups: order,
        },
    ))
}

/// Coerces a selected object into the answer: atoms are referenced
/// directly; complex objects are copied into a *new* overlay object
/// whose references point at the original children (the paper's
/// `&442`).
fn coerce(base: &OemStore, overlay: &mut AnswerOverlay, oid: Oid) -> Oid {
    if base.get(oid).is_some_and(|o| o.is_complex()) {
        let copy = overlay.new_complex();
        for e in base.edges_of(oid) {
            overlay
                .add_edge(base, copy, base.label_name(e.label), e.target)
                .expect("copying live edges");
        }
        copy
    } else {
        oid
    }
}

fn bind_from(
    store: &OemStore,
    query: &Query,
    depth: usize,
    env: &mut Vec<(String, Oid)>,
    rows: &mut Vec<Row>,
    ctx: &Ctx<'_>,
) -> Result<(), LorelError> {
    if depth == query.from.len() {
        let row = Row {
            bindings: env.clone(),
        };
        let keep = match &query.where_ {
            Some(cond) => eval_cond(store, cond, &row, ctx)?,
            None => true,
        };
        if keep {
            rows.push(row);
        }
        return Ok(());
    }
    let item = &query.from[depth];
    let starts: Vec<Oid> = resolve_head(store, &item.head, env).ok_or_else(|| {
        LorelError::eval(format!(
            "`{}` is neither a bound variable nor a named root",
            item.head
        ))
    })?;
    let candidates = item.path.eval_many(store, &starts);
    for c in candidates {
        env.push((item.var.clone(), c));
        bind_from(store, query, depth + 1, env, rows, ctx)?;
        env.pop();
    }
    Ok(())
}

/// Resolves a path head: bound variable first, then store root name.
pub(crate) fn resolve_head(
    store: &OemStore,
    head: &str,
    env: &[(String, Oid)],
) -> Option<Vec<Oid>> {
    if let Some(&(_, oid)) = env.iter().rev().find(|(v, _)| v == head) {
        return Some(vec![oid]);
    }
    store.named(head).map(|o| vec![o])
}

/// An evaluated expression: a set of objects, a computed value, or nothing.
enum Evaled {
    Oids(Vec<Oid>),
    Value(AtomicValue),
    None,
}

fn evaluate_expr(
    store: &OemStore,
    expr: &Expr,
    row: &Row,
    ctx: &Ctx<'_>,
) -> Result<Evaled, LorelError> {
    match expr {
        Expr::Literal(v) => Ok(Evaled::Value(v.clone())),
        Expr::Path { head, path } => {
            let starts = resolve_path_head(store, head, path, row, ctx.default_var)?;
            match starts {
                ResolvedPath::Standard(starts) => Ok(Evaled::Oids(path.eval_many(store, &starts))),
                ResolvedPath::Relative(starts, full_path) => {
                    Ok(Evaled::Oids(full_path.eval_many(store, &starts)))
                }
            }
        }
        Expr::Aggregate(f, inner) => {
            let oids = match evaluate_expr(store, inner, row, ctx)? {
                Evaled::Oids(o) => o,
                Evaled::Value(_) | Evaled::None => Vec::new(),
            };
            Ok(aggregate(store, *f, &oids))
        }
        Expr::Call { name, args } => {
            let f = ctx
                .functions
                .get(name)
                .ok_or_else(|| LorelError::eval(format!("unknown function `{name}`")))?;
            let mut arg_values: Vec<Option<AtomicValue>> = Vec::with_capacity(args.len());
            for a in args {
                let v = match evaluate_expr(store, a, row, ctx)? {
                    Evaled::Oids(oids) => oids.into_iter().find_map(|o| store.value_of(o).cloned()),
                    Evaled::Value(v) => Some(v),
                    Evaled::None => None,
                };
                arg_values.push(v);
            }
            Ok(match f(&arg_values) {
                Some(v) => Evaled::Value(v),
                None => Evaled::None,
            })
        }
    }
}

enum ResolvedPath {
    /// Head resolved to concrete start objects; evaluate the stored path.
    Standard(Vec<Oid>),
    /// Head was itself a label (the paper's loose style): evaluate the
    /// extended path (head-as-label + original steps) from the fallback
    /// binding.
    Relative(Vec<Oid>, annoda_oem::PathExpr),
}

fn resolve_path_head(
    store: &OemStore,
    head: &str,
    path: &annoda_oem::PathExpr,
    row: &Row,
    default_root_var: &str,
) -> Result<ResolvedPath, LorelError> {
    if let Some(oid) = row.get(head) {
        return Ok(ResolvedPath::Standard(vec![oid]));
    }
    if let Some(oid) = store.named(head) {
        return Ok(ResolvedPath::Standard(vec![oid]));
    }
    // The paper writes `where Source.Name = …` with only `from ANNODA-GML`
    // in scope: an unknown head is treated as a label relative to the
    // first range variable.
    if let Some(oid) = row.get(default_root_var) {
        let mut steps = vec![annoda_oem::PathStep::Label(head.to_string())];
        steps.extend(path.steps().iter().cloned());
        return Ok(ResolvedPath::Relative(
            vec![oid],
            annoda_oem::PathExpr::new(steps),
        ));
    }
    Err(LorelError::eval(format!(
        "cannot resolve path head `{head}`"
    )))
}

fn aggregate(store: &OemStore, f: AggFn, oids: &[Oid]) -> Evaled {
    match f {
        AggFn::Count => Evaled::Value(AtomicValue::Int(oids.len() as i64)),
        AggFn::Sum | AggFn::Avg => {
            let nums: Vec<f64> = oids
                .iter()
                .filter_map(|&o| store.value_of(o).and_then(|v| v.as_real()))
                .collect();
            if nums.is_empty() {
                return Evaled::None;
            }
            let sum: f64 = nums.iter().sum();
            let out = if f == AggFn::Sum {
                sum
            } else {
                sum / nums.len() as f64
            };
            if out.fract() == 0.0
                && f == AggFn::Sum
                && oids
                    .iter()
                    .all(|&o| matches!(store.value_of(o), Some(AtomicValue::Int(_))))
            {
                Evaled::Value(AtomicValue::Int(out as i64))
            } else {
                Evaled::Value(AtomicValue::Real(out))
            }
        }
        AggFn::Min | AggFn::Max => {
            let mut best: Option<&AtomicValue> = None;
            for &o in oids {
                let Some(v) = store.value_of(o) else { continue };
                best = Some(match best {
                    None => v,
                    Some(b) => match v.lorel_cmp(b) {
                        Some(Ordering::Less) if f == AggFn::Min => v,
                        Some(Ordering::Greater) if f == AggFn::Max => v,
                        _ => b,
                    },
                });
            }
            match best {
                Some(v) => Evaled::Value(v.clone()),
                None => Evaled::None,
            }
        }
    }
}

pub(crate) fn eval_cond(
    store: &OemStore,
    cond: &Cond,
    row: &Row,
    ctx: &Ctx<'_>,
) -> Result<bool, LorelError> {
    Ok(match cond {
        Cond::And(l, r) => eval_cond(store, l, row, ctx)? && eval_cond(store, r, row, ctx)?,
        Cond::Or(l, r) => eval_cond(store, l, row, ctx)? || eval_cond(store, r, row, ctx)?,
        Cond::Not(c) => !eval_cond(store, c, row, ctx)?,
        Cond::Exists(e) => match evaluate_expr(store, e, row, ctx)? {
            Evaled::Oids(o) => !o.is_empty(),
            Evaled::Value(_) => true,
            Evaled::None => false,
        },
        Cond::Cmp(l, op, r) => {
            let lv = operand_values(store, l, row, ctx)?;
            let rv = operand_values(store, r, row, ctx)?;
            exists_pair(store, &lv, &rv, *op)
        }
        Cond::In(l, r) => {
            let lv = operand_values(store, l, row, ctx)?;
            let rv = operand_values(store, r, row, ctx)?;
            lv.iter().any(|a| {
                rv.iter().any(|b| match (a, b) {
                    (Operand::Obj(x), Operand::Obj(y)) if x == y => true,
                    _ => match (operand_atom(store, a), operand_atom(store, b)) {
                        (Some(x), Some(y)) => x.lorel_eq(y),
                        _ => false,
                    },
                })
            })
        }
    })
}

/// A comparison operand instance: an object (possibly atomic) or a
/// computed value.
enum Operand {
    Obj(Oid),
    Val(AtomicValue),
}

fn operand_values(
    store: &OemStore,
    expr: &Expr,
    row: &Row,
    ctx: &Ctx<'_>,
) -> Result<Vec<Operand>, LorelError> {
    Ok(match evaluate_expr(store, expr, row, ctx)? {
        Evaled::Oids(oids) => oids.into_iter().map(Operand::Obj).collect(),
        Evaled::Value(v) => vec![Operand::Val(v)],
        Evaled::None => Vec::new(),
    })
}

fn operand_atom<'a>(store: &'a OemStore, op: &'a Operand) -> Option<&'a AtomicValue> {
    match op {
        Operand::Obj(o) => store.value_of(*o),
        Operand::Val(v) => Some(v),
    }
}

fn exists_pair(store: &OemStore, left: &[Operand], right: &[Operand], op: CompOp) -> bool {
    left.iter().any(|a| {
        right.iter().any(|b| {
            // Complex objects compare by oid for (in)equality only.
            if let (Operand::Obj(x), Operand::Obj(y)) = (a, b) {
                let xc = store.get(*x).is_some_and(|o| o.is_complex());
                let yc = store.get(*y).is_some_and(|o| o.is_complex());
                if xc || yc {
                    return match op {
                        CompOp::Eq => x == y,
                        CompOp::Ne => x != y,
                        _ => false,
                    };
                }
            }
            let (Some(va), Some(vb)) = (operand_atom(store, a), operand_atom(store, b)) else {
                return false;
            };
            match op {
                CompOp::Like => va.lorel_like(&vb.as_text()),
                _ => match va.lorel_cmp(vb) {
                    Some(ord) => match op {
                        CompOp::Eq => ord == Ordering::Equal,
                        CompOp::Ne => ord != Ordering::Equal,
                        CompOp::Lt => ord == Ordering::Less,
                        CompOp::Le => ord != Ordering::Greater,
                        CompOp::Gt => ord == Ordering::Greater,
                        CompOp::Ge => ord != Ordering::Less,
                        CompOp::Like => unreachable!("handled above"),
                    },
                    None => false,
                },
            }
        })
    })
}

fn sort_rows(store: &OemStore, query: &Query, rows: &mut [Row], ctx: &Ctx<'_>) {
    rows.sort_by(|ra, rb| {
        for key in &query.order_by {
            let va = first_atom(store, &key.expr, ra, ctx);
            let vb = first_atom(store, &key.expr, rb, ctx);
            let ord = match (va, vb) {
                (Some(a), Some(b)) => a.lorel_cmp(&b).unwrap_or(Ordering::Equal),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => Ordering::Equal,
            };
            let ord = if key.descending { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
}

fn first_atom(store: &OemStore, expr: &Expr, row: &Row, ctx: &Ctx<'_>) -> Option<AtomicValue> {
    match evaluate_expr(store, expr, row, ctx).ok()? {
        Evaled::Oids(oids) => oids.into_iter().find_map(|o| store.value_of(o).cloned()),
        Evaled::Value(v) => Some(v),
        Evaled::None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's ANNODA-GML fragment: sources with
    /// SourceID/Name/Content/Structure.
    fn gml_store() -> OemStore {
        let mut db = OemStore::new();
        let root = db.new_complex();
        for (id, name) in [(1, "LocusLink"), (2, "GO"), (3, "OMIM")] {
            let s = db.add_complex_child(root, "Source").unwrap();
            db.add_atomic_child(s, "SourceID", AtomicValue::Int(id))
                .unwrap();
            db.add_atomic_child(s, "Name", name).unwrap();
            db.add_atomic_child(s, "Content", format!("{name} annotation data"))
                .unwrap();
            db.add_atomic_child(s, "Structure", "semistructured")
                .unwrap();
        }
        db.set_name("ANNODA-GML", root).unwrap();
        db
    }

    fn gene_store() -> OemStore {
        let mut db = OemStore::new();
        let root = db.new_complex();
        for (sym, locus, omim) in [
            ("TP53", 7157, true),
            ("BRCA1", 672, true),
            ("EGFR", 1956, false),
        ] {
            let g = db.add_complex_child(root, "Gene").unwrap();
            db.add_atomic_child(g, "Symbol", sym).unwrap();
            db.add_atomic_child(g, "LocusID", AtomicValue::Int(locus))
                .unwrap();
            if omim {
                let d = db.add_complex_child(g, "Omim").unwrap();
                db.add_atomic_child(d, "Title", format!("{sym} disease"))
                    .unwrap();
            }
        }
        db.set_name("DB", root).unwrap();
        db
    }

    #[test]
    fn paper_query_canonical_form() {
        let mut db = gml_store();
        let out = run_query(
            &mut db,
            r#"select S from ANNODA-GML.Source S where S.Name = "LocusLink""#,
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1);
        // The sole result is a NEW object (paper's &442)…
        let new_obj = out.sole_result(&db).unwrap();
        let original = out.projected[0].1[0];
        assert_ne!(new_obj, original, "coercion must create a new object");
        // …whose references point at the ORIGINAL children.
        assert_eq!(
            db.child(new_obj, "SourceID"),
            db.child(original, "SourceID")
        );
        assert_eq!(
            db.child_value(new_obj, "Name"),
            Some(&AtomicValue::Str("LocusLink".into()))
        );
        let labels: Vec<&str> = db
            .edges_of(new_obj)
            .iter()
            .map(|e| db.label_name(e.label))
            .collect();
        assert_eq!(labels, vec!["SourceID", "Name", "Content", "Structure"]);
    }

    #[test]
    fn paper_query_loose_form_with_relative_paths() {
        let mut db = gml_store();
        // `from ANNODA-GML` binds ANNODA-GML itself; `Source.Name` resolves
        // relative to it; X is not resolvable → we select the source via
        // the relative path too.
        let out = run_query(
            &mut db,
            r#"select Source from ANNODA-GML where Source.Name = "LocusLink""#,
        )
        .unwrap();
        // All three sources hang off the single binding, but the where
        // clause is existential over the row, so the row passes and select
        // projects all Source children. Lorel's loose form is weaker than
        // the canonical form — it returns every source of a GML that has a
        // LocusLink source.
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.projected[0].1.len(), 3);
    }

    #[test]
    fn answer_name_is_rebound_each_query() {
        let mut db = gml_store();
        let o1 = run_query(&mut db, "select S from ANNODA-GML.Source S").unwrap();
        assert_eq!(db.named("answer"), Some(o1.answer));
        let o2 = run_query(&mut db, "select S from ANNODA-GML.Source S").unwrap();
        assert_eq!(db.named("answer"), Some(o2.answer));
        assert_ne!(o1.answer, o2.answer);
        // The earlier answer object is still alive and reusable.
        assert_eq!(db.edges_of(o1.answer).len(), 3);
    }

    #[test]
    fn where_filters_with_coercion() {
        let mut db = gene_store();
        let out = run_query(
            &mut db,
            r#"select G.Symbol from DB.Gene G where G.LocusID = "7157""#,
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1);
        let sym = out.projected[0].1[0];
        assert_eq!(db.value_of(sym), Some(&AtomicValue::Str("TP53".into())));
    }

    #[test]
    fn negation_expresses_the_figure5_question() {
        let mut db = gene_store();
        let out = run_query(
            &mut db,
            "select G.Symbol from DB.Gene G where not exists G.Omim",
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(
            db.value_of(out.projected[0].1[0]),
            Some(&AtomicValue::Str("EGFR".into()))
        );
    }

    #[test]
    fn duplicate_elimination_is_by_oid() {
        let mut db = OemStore::new();
        let root = db.new_complex();
        let shared = db.new_atomic("x");
        let a = db.add_complex_child(root, "Item").unwrap();
        db.add_edge(a, "v", shared).unwrap();
        let b = db.add_complex_child(root, "Item").unwrap();
        db.add_edge(b, "v", shared).unwrap();
        // Two atoms with EQUAL VALUES but different oids stay distinct.
        let c = db.add_complex_child(root, "Item").unwrap();
        db.add_atomic_child(c, "v", "x").unwrap();
        db.set_name("R", root).unwrap();

        let mut db2 = db.clone();
        let out = run_query(&mut db2, "select I.v from R.Item I").unwrap();
        assert_eq!(
            out.projected[0].1.len(),
            2,
            "same oid collapses, equal value does not"
        );
    }

    #[test]
    fn joins_over_two_variables() {
        let mut db = gene_store();
        let out = run_query(
            &mut db,
            r#"select G.Symbol, D.Title from DB.Gene G, G.Omim D where G.Symbol like "%BRCA%""#,
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.projected.len(), 2);
        assert_eq!(
            db.value_of(out.projected[1].1[0]),
            Some(&AtomicValue::Str("BRCA1 disease".into()))
        );
    }

    #[test]
    fn aggregates_count_sum_avg_min_max() {
        let mut db = gene_store();
        let out = run_query(&mut db, "select count(R.Gene) from DB R").unwrap();
        assert_eq!(
            db.value_of(out.projected[0].1[0]),
            Some(&AtomicValue::Int(3))
        );

        let out = run_query(&mut db, "select sum(R.Gene.LocusID) from DB R").unwrap();
        assert_eq!(
            db.value_of(out.projected[0].1[0]),
            Some(&AtomicValue::Int(7157 + 672 + 1956))
        );

        let out = run_query(&mut db, "select avg(R.Gene.LocusID) from DB R").unwrap();
        let v = db
            .value_of(out.projected[0].1[0])
            .unwrap()
            .as_real()
            .unwrap();
        assert!((v - (7157.0 + 672.0 + 1956.0) / 3.0).abs() < 1e-9);

        let out = run_query(
            &mut db,
            "select min(R.Gene.LocusID), max(R.Gene.LocusID) from DB R",
        )
        .unwrap();
        assert_eq!(
            db.value_of(out.projected[0].1[0]),
            Some(&AtomicValue::Int(672))
        );
        assert_eq!(
            db.value_of(out.projected[1].1[0]),
            Some(&AtomicValue::Int(7157))
        );
    }

    #[test]
    fn aggregate_in_where() {
        let mut db = gene_store();
        let out = run_query(
            &mut db,
            "select G.Symbol from DB.Gene G where count(G.Omim) = 0",
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn order_by_sorts_rows() {
        let mut db = gene_store();
        let out = run_query(&mut db, "select G.Symbol from DB.Gene G order by G.Symbol").unwrap();
        let syms: Vec<String> = out.projected[0]
            .1
            .iter()
            .map(|&o| db.value_of(o).unwrap().as_text())
            .collect();
        assert_eq!(syms, vec!["BRCA1", "EGFR", "TP53"]);

        let out = run_query(
            &mut db,
            "select G.Symbol from DB.Gene G order by G.LocusID desc",
        )
        .unwrap();
        let syms: Vec<String> = out.projected[0]
            .1
            .iter()
            .map(|&o| db.value_of(o).unwrap().as_text())
            .collect();
        assert_eq!(syms, vec!["TP53", "EGFR", "BRCA1"]);
    }

    #[test]
    fn wildcard_paths_in_from() {
        let mut db = gene_store();
        let out = run_query(&mut db, "select X from DB.#.Title X").unwrap();
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn in_predicate_by_value() {
        let mut db = gene_store();
        let out = run_query(
            &mut db,
            r#"select G from DB.Gene G where "TP53" in G.Symbol"#,
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn complex_objects_compare_by_oid() {
        let mut db = gene_store();
        let out = run_query(&mut db, "select G from DB.Gene G, DB.Gene H where G = H").unwrap();
        assert_eq!(out.rows.len(), 3, "each gene equals only itself");
    }

    #[test]
    fn unknown_root_is_an_eval_error() {
        let mut db = gene_store();
        assert!(matches!(
            run_query(&mut db, "select X from Nowhere.Gene X"),
            Err(LorelError::Eval(_))
        ));
    }

    #[test]
    fn empty_result_still_creates_answer() {
        let mut db = gene_store();
        let out = run_query(
            &mut db,
            r#"select G from DB.Gene G where G.Symbol = "NOPE""#,
        )
        .unwrap();
        assert_eq!(out.rows.len(), 0);
        assert_eq!(out.result_count(&db), 0);
        assert_eq!(db.named("answer"), Some(out.answer));
        assert!(out.sole_result(&db).is_none());
    }

    #[test]
    fn registered_functions_evaluate_in_queries() {
        use annoda_oem::AtomicType;
        let mut db = gene_store();
        let mut functions = FunctionRegistry::new();
        // A specialty function: length of the symbol string.
        functions.register(
            "strlen",
            std::sync::Arc::new(|args| {
                args.first()
                    .and_then(|a| a.as_ref())
                    .map(|v| AtomicValue::Int(v.as_text().chars().count() as i64))
            }),
        );
        // Another: concatenation of two arguments.
        functions.register(
            "concat",
            std::sync::Arc::new(|args| {
                let mut out = String::new();
                for a in args {
                    out.push_str(&a.as_ref()?.as_text());
                }
                Some(AtomicValue::Str(out))
            }),
        );
        let out = run_query_with(
            &mut db,
            "select G.Symbol, strlen(G.Symbol) as len from DB.Gene G \
             where strlen(G.Symbol) > 4 order by G.Symbol",
            &functions,
        )
        .unwrap();
        // TP53 has length 4 (excluded); BRCA1 and EGFR have 5 and 4…
        // BRCA1 = 5 chars, EGFR = 4, TP53 = 4 → only BRCA1 passes.
        assert_eq!(out.rows.len(), 1);
        assert_eq!(
            db.value_of(out.projected[0].1[0]),
            Some(&AtomicValue::Str("BRCA1".into()))
        );
        assert_eq!(
            db.value_of(out.projected[1].1[0]),
            Some(&AtomicValue::Int(5))
        );
        assert_eq!(
            db.type_of(out.projected[1].1[0]).unwrap(),
            annoda_oem::OemType::Atomic(AtomicType::Int)
        );

        let out = run_query_with(
            &mut db,
            r#"select concat(G.Symbol, "-human") as tag from DB.Gene G where G.Symbol = "TP53""#,
            &functions,
        )
        .unwrap();
        assert_eq!(
            db.value_of(out.projected[0].1[0]),
            Some(&AtomicValue::Str("TP53-human".into()))
        );
    }

    #[test]
    fn standard_library_functions() {
        let mut db = gene_store();
        let reg = FunctionRegistry::standard();
        assert_eq!(reg.names(), vec!["abs", "lower", "strlen", "upper"]);
        let out = run_query_with(
            &mut db,
            r#"select upper(G.Symbol) as u, lower(G.Symbol) as l, abs(G.LocusID) as a
               from DB.Gene G where G.Symbol = "TP53""#,
            &reg,
        )
        .unwrap();
        assert_eq!(
            db.value_of(out.projected[0].1[0]),
            Some(&AtomicValue::Str("TP53".into()))
        );
        assert_eq!(
            db.value_of(out.projected[1].1[0]),
            Some(&AtomicValue::Str("tp53".into()))
        );
        assert_eq!(
            db.value_of(out.projected[2].1[0]),
            Some(&AtomicValue::Real(7157.0))
        );
    }

    #[test]
    fn unknown_function_is_an_eval_error() {
        let mut db = gene_store();
        assert!(matches!(
            run_query(&mut db, "select nope(G.Symbol) from DB.Gene G"),
            Err(LorelError::Eval(_))
        ));
    }

    #[test]
    fn function_returning_none_makes_predicates_false() {
        let mut db = gene_store();
        let mut functions = FunctionRegistry::new();
        functions.register("nothing", std::sync::Arc::new(|_| None));
        let out = run_query_with(
            &mut db,
            "select G from DB.Gene G where nothing() = 1",
            &functions,
        )
        .unwrap();
        assert_eq!(out.rows.len(), 0);
    }

    #[test]
    fn into_names_persist_answers_for_later_queries() {
        let mut db = gene_store();
        run_query(
            &mut db,
            r#"select G into Flagged from DB.Gene G where G.Symbol like "%BRCA%""#,
        )
        .unwrap();
        assert!(db.named("Flagged").is_some());
        // A later query ranges over the saved answer.
        let out = run_query(&mut db, "select X.Symbol from Flagged.Symbol X").unwrap();
        // The saved answer holds coerced copies labelled by the select
        // item (`G`), so navigate through that label instead:
        let out2 = run_query(&mut db, "select X from Flagged.G.Symbol X").unwrap();
        assert!(out.rows.len() + out2.rows.len() >= 1);
        assert_eq!(
            db.value_of(out2.projected[0].1[0]),
            Some(&AtomicValue::Str("BRCA1".into()))
        );
    }

    #[test]
    fn group_by_partitions_and_aggregates() {
        let mut db = OemStore::new();
        let root = db.new_complex();
        for (sym, org, id) in [
            ("TP53", "Homo sapiens", 1i64),
            ("BRCA1", "Homo sapiens", 2),
            ("Trp53", "Mus musculus", 3),
        ] {
            let g = db.add_complex_child(root, "Gene").unwrap();
            db.add_atomic_child(g, "Symbol", sym).unwrap();
            db.add_atomic_child(g, "Organism", org).unwrap();
            db.add_atomic_child(g, "Id", AtomicValue::Int(id)).unwrap();
        }
        db.set_name("DB", root).unwrap();
        let out = run_query(
            &mut db,
            "select G.Organism, count(G.Symbol), sum(G.Id) \
             from DB.Gene G group by G.Organism",
        )
        .unwrap();
        assert_eq!(out.groups, vec!["Homo sapiens", "Mus musculus"]);
        let groups: Vec<Oid> = db.children(out.answer, "group").collect();
        assert_eq!(groups.len(), 2);
        let human = groups[0];
        assert_eq!(
            db.child_value(human, "key"),
            Some(&AtomicValue::Str("Homo sapiens".into()))
        );
        assert_eq!(db.child_value(human, "count"), Some(&AtomicValue::Int(2)));
        assert_eq!(db.child_value(human, "sum"), Some(&AtomicValue::Int(3)));
        let mouse = groups[1];
        assert_eq!(db.child_value(mouse, "count"), Some(&AtomicValue::Int(1)));
    }

    #[test]
    fn group_by_with_missing_key_uses_null_group() {
        let mut db = OemStore::new();
        let root = db.new_complex();
        let g = db.add_complex_child(root, "Gene").unwrap();
        db.add_atomic_child(g, "Symbol", "X1").unwrap();
        db.set_name("DB", root).unwrap();
        let out = run_query(
            &mut db,
            "select count(G.Symbol) from DB.Gene G group by G.Organism",
        )
        .unwrap();
        assert_eq!(out.groups, vec!["<null>"]);
    }

    #[test]
    fn grouped_aggregates_deduplicate_shared_instances() {
        // Two rows in one group sharing the same atom: count once.
        let mut db = OemStore::new();
        let root = db.new_complex();
        let shared = db.new_atomic(AtomicValue::Int(5));
        for _ in 0..2 {
            let g = db.add_complex_child(root, "Gene").unwrap();
            db.add_atomic_child(g, "Org", "x").unwrap();
            db.add_edge(g, "V", shared).unwrap();
        }
        db.set_name("DB", root).unwrap();
        let out = run_query(&mut db, "select count(G.V) from DB.Gene G group by G.Org").unwrap();
        let group = db.children(out.answer, "group").next().unwrap();
        assert_eq!(db.child_value(group, "count"), Some(&AtomicValue::Int(1)));
    }

    #[test]
    fn query_display_round_trips() {
        for text in [
            r#"select S from ANNODA-GML.Source S where S.Name = "LocusLink""#,
            "select G.Symbol as sym, count(G.Links) from DB.Gene G, G.Links L \
             where (G.Symbol like \"TP%\" and exists L.GO) order by G.Symbol desc",
            "select count(G.Id) from DB.Gene G group by G.Organism",
            "select X from DB.#.Symbol X where X != 5 or X < 2.5",
        ] {
            let q = crate::parser::parse(text).unwrap();
            let printed = q.to_string();
            let q2 = crate::parser::parse(&printed)
                .unwrap_or_else(|e| panic!("unparse of `{text}` gave `{printed}`: {e}"));
            assert_eq!(q, q2, "display round trip for `{text}` -> `{printed}`");
        }
    }

    #[test]
    fn incomparable_types_make_predicates_false_not_errors() {
        let mut db = gene_store();
        let out = run_query(&mut db, r#"select G from DB.Gene G where G > 5"#).unwrap();
        assert_eq!(out.rows.len(), 0);
    }
}
