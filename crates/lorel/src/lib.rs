//! # annoda-lorel — the Lorel query language over OEM
//!
//! Lorel is the query language ANNODA uses against both the global model
//! (ANNODA-GML) and, after decomposition, against per-source local models.
//! It is an SQL/OQL-flavoured select-from-where language designed for
//! semi-structured data: path expressions navigate the OEM graph,
//! comparisons coerce across atomic types, predicates over paths are
//! existentially quantified, and duplicate elimination is by oid.
//!
//! ```
//! use annoda_oem::OemStore;
//! use annoda_lorel::run_query;
//!
//! let mut db = OemStore::new();
//! let root = db.new_complex();
//! let g = db.add_complex_child(root, "Gene").unwrap();
//! db.add_atomic_child(g, "Symbol", "TP53").unwrap();
//! db.set_name("DB", root).unwrap();
//!
//! let out = run_query(&mut db, r#"select G.Symbol from DB.Gene G where G.Symbol = "TP53""#).unwrap();
//! assert_eq!(out.rows.len(), 1);
//! ```
//!
//! The paper's example (§4.1):
//!
//! ```text
//! select X from ANNODA-GML where Source.Name = "LocusLink"
//! ```
//!
//! is accepted in its canonical Lorel form
//! `select S from ANNODA-GML.Source S where S.Name = "LocusLink"` and
//! produces a *new* answer object (the paper's `&442`) whose references
//! point at the original database objects — see [`eval::QueryOutcome`].
//!
//! # Query planning
//!
//! Evaluation is split into a reference path and a planned path:
//!
//! * [`eval_rows_naive`] is the specification — a left-to-right
//!   nested-loop over the `from` clause with the whole `where` clause
//!   checked once per complete binding;
//! * [`eval_rows`] (and everything built on it: [`eval_with`],
//!   [`run_query`], the wrappers' subquery path) first consults the
//!   [`plan`] module, which rewrites eligible queries into an
//!   index-backed plan and otherwise falls back to the naive loop.
//!
//! The planner applies three rewrites, all proven row-order preserving:
//!
//! 1. **Selection pushdown** — a conjunct `V.Attr = "literal"` with a
//!    non-numeric string literal over a root-anchored variable seeds
//!    `V`'s candidates from a store-cached
//!    [`annoda_oem::ValueIndex`] bucket instead of scanning; the
//!    conjunct is still re-verified as a residual predicate.
//! 2. **Filter-as-you-bind** — each top-level conjunct of the `where`
//!    clause runs at the shallowest binding depth where its range
//!    variables are bound, pruning doomed partial bindings before the
//!    remaining variables multiply them.
//! 3. **From-clause reordering** — binding order follows estimated
//!    candidate counts (index bucket sizes and cached path
//!    cardinalities from [`annoda_oem::OemStore::cached_cardinality`]),
//!    respecting head dependencies; the textual left-to-right row order
//!    is restored before returning.
//!
//! [`eval_rows_explained`] additionally returns a [`plan::PlanExplain`]
//! describing the chosen access path ([`plan::AccessPath::IndexSeek`]
//! vs [`plan::AccessPath::Scan`]), the binding order, and execution
//! probe counters — the hooks `bench_report` and the planner tests
//! assert against. Queries the planner cannot prove equivalent
//! (duplicate range-variable names, heads that resolve differently
//! under reordering, calls to unregistered functions whose error timing
//! the naive path defines) set `naive_fallback` and run the reference
//! loop; `proptest` oracles in `tests/` check planned ≡ naive on
//! arbitrary query/store pairs.

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::{CompOp, Cond, Expr, FromItem, OrderKey, Query, SelectItem};
pub use error::LorelError;
pub use eval::{
    eval_rows, eval_rows_explained, eval_rows_explained_with, eval_rows_naive,
    eval_rows_naive_with, eval_rows_with, eval_rows_workers_with, eval_snapshot_with, eval_with,
    project_row, row_passes, run_query, run_query_snapshot, run_query_snapshot_explained,
    run_query_with, FunctionRegistry, LorelFn, Projected, QueryOutcome, Row,
};
pub use parser::parse;
pub use plan::{AccessPath, EvalWorkers, PlanExplain, PlanProbes};
