//! # annoda-lorel — the Lorel query language over OEM
//!
//! Lorel is the query language ANNODA uses against both the global model
//! (ANNODA-GML) and, after decomposition, against per-source local models.
//! It is an SQL/OQL-flavoured select-from-where language designed for
//! semi-structured data: path expressions navigate the OEM graph,
//! comparisons coerce across atomic types, predicates over paths are
//! existentially quantified, and duplicate elimination is by oid.
//!
//! ```
//! use annoda_oem::OemStore;
//! use annoda_lorel::run_query;
//!
//! let mut db = OemStore::new();
//! let root = db.new_complex();
//! let g = db.add_complex_child(root, "Gene").unwrap();
//! db.add_atomic_child(g, "Symbol", "TP53").unwrap();
//! db.set_name("DB", root).unwrap();
//!
//! let out = run_query(&mut db, r#"select G.Symbol from DB.Gene G where G.Symbol = "TP53""#).unwrap();
//! assert_eq!(out.rows.len(), 1);
//! ```
//!
//! The paper's example (§4.1):
//!
//! ```text
//! select X from ANNODA-GML where Source.Name = "LocusLink"
//! ```
//!
//! is accepted in its canonical Lorel form
//! `select S from ANNODA-GML.Source S where S.Name = "LocusLink"` and
//! produces a *new* answer object (the paper's `&442`) whose references
//! point at the original database objects — see [`eval::QueryOutcome`].

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{CompOp, Cond, Expr, FromItem, OrderKey, Query, SelectItem};
pub use error::LorelError;
pub use eval::{
    eval_rows, eval_rows_with, eval_with, project_row, row_passes, run_query, run_query_with,
    FunctionRegistry, LorelFn, Projected, QueryOutcome, Row,
};
pub use parser::parse;
