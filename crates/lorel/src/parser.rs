//! Recursive-descent parser for Lorel.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := SELECT [DISTINCT] selectList [INTO ident] FROM fromList
//!               [WHERE cond] [GROUP BY expr] [ORDER BY orderList]
//! selectList := selectItem (',' selectItem)*
//! selectItem := expr [AS ident]
//! fromList   := fromItem (',' fromItem)*
//! fromItem   := pathRef [ident]          -- variable defaults to the head
//! pathRef    := ident ('.' step)*
//! step       := ident | '%' | '#' | '(' ident ('|' ident)* ')'
//! cond       := andCond (OR andCond)*
//! andCond    := notCond (AND notCond)*
//! notCond    := NOT notCond | primary
//! primary    := '(' cond ')' | EXISTS pathRef
//!             | expr (cmpOp expr | IN pathRef)
//! expr       := literal | pathRef | aggFn '(' pathRef ')'
//!             | ident '(' [expr (',' expr)*] ')'        -- registered fn
//! ```

use annoda_oem::{PathExpr, PathStep};

use crate::ast::{AggFn, CompOp, Cond, Expr, FromItem, OrderKey, Query, SelectItem};
use crate::error::LorelError;
use crate::lexer::{lex, Token, TokenKind};

/// Parses a query string.
pub fn parse(input: &str) -> Result<Query, LorelError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

// `from_list`/`from_item` parse the FROM clause; the names mirror the
// grammar, not a conversion constructor.
#[allow(clippy::wrong_self_convention)]
impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        self.tokens
            .get(self.pos + 1)
            .map(|t| &t.kind)
            .unwrap_or(&TokenKind::Eof)
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), LorelError> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {}", self.peek().describe())))
        }
    }

    fn err(&self, message: String) -> LorelError {
        LorelError::Parse {
            offset: self.offset(),
            message,
        }
    }

    fn expect_eof(&mut self) -> Result<(), LorelError> {
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected trailing input: {}",
                self.peek().describe()
            )))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LorelError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {}", other.describe()))),
        }
    }

    // ----- grammar ------------------------------------------------------

    fn query(&mut self) -> Result<Query, LorelError> {
        self.expect(TokenKind::Select, "SELECT")?;
        self.eat(&TokenKind::Distinct); // duplicates are always oid-eliminated
        let select = self.select_list()?;
        let into_name = if self.eat(&TokenKind::Into) {
            Some(self.ident("answer name after INTO")?)
        } else {
            None
        };
        self.expect(TokenKind::From, "FROM")?;
        let from = self.from_list()?;
        let where_ = if self.eat(&TokenKind::Where) {
            Some(self.cond()?)
        } else {
            None
        };
        let group_by = if self.eat(&TokenKind::Group) {
            self.expect(TokenKind::By, "BY after GROUP")?;
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat(&TokenKind::Order) {
            self.expect(TokenKind::By, "BY after ORDER")?;
            self.order_list()?
        } else {
            Vec::new()
        };
        Ok(Query {
            select,
            from,
            where_,
            group_by,
            order_by,
            into_name,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, LorelError> {
        let mut items = vec![self.select_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, LorelError> {
        let expr = self.expr()?;
        let label = if self.eat(&TokenKind::As) {
            self.ident("label after AS")?
        } else {
            expr.default_label()
        };
        Ok(SelectItem { expr, label })
    }

    fn from_list(&mut self) -> Result<Vec<FromItem>, LorelError> {
        let mut items = vec![self.from_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.from_item()?);
        }
        Ok(items)
    }

    fn from_item(&mut self) -> Result<FromItem, LorelError> {
        let (head, path) = self.path_ref()?;
        let var = match self.peek().clone() {
            TokenKind::Ident(v) => {
                self.bump();
                v
            }
            // `from ANNODA-GML` without a variable binds the head name
            // itself as the variable (the paper's style).
            _ => head.clone(),
        };
        Ok(FromItem { head, path, var })
    }

    fn order_list(&mut self) -> Result<Vec<OrderKey>, LorelError> {
        let mut keys = Vec::new();
        loop {
            let expr = self.expr()?;
            let descending = if self.eat(&TokenKind::Desc) {
                true
            } else {
                self.eat(&TokenKind::Asc);
                false
            };
            keys.push(OrderKey { expr, descending });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(keys)
    }

    fn cond(&mut self) -> Result<Cond, LorelError> {
        let mut left = self.and_cond()?;
        while self.eat(&TokenKind::Or) {
            let right = self.and_cond()?;
            left = Cond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_cond(&mut self) -> Result<Cond, LorelError> {
        let mut left = self.not_cond()?;
        while self.eat(&TokenKind::And) {
            let right = self.not_cond()?;
            left = Cond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_cond(&mut self) -> Result<Cond, LorelError> {
        if self.eat(&TokenKind::Not) {
            Ok(Cond::Not(Box::new(self.not_cond()?)))
        } else {
            self.primary_cond()
        }
    }

    fn primary_cond(&mut self) -> Result<Cond, LorelError> {
        if self.eat(&TokenKind::Exists) {
            let (head, path) = self.path_ref()?;
            return Ok(Cond::Exists(Expr::Path { head, path }));
        }
        if self.peek() == &TokenKind::LParen {
            // Could be a parenthesised condition or an alternation step at
            // the start of a path; conditions always start with `(` followed
            // by something that eventually yields a cmp. Try condition first
            // by lookahead: a path-ref cannot start with '(' in our grammar,
            // so '(' here is always a grouped condition.
            self.bump();
            let c = self.cond()?;
            self.expect(TokenKind::RParen, "closing parenthesis")?;
            return Ok(c);
        }
        let left = self.expr()?;
        if self.eat(&TokenKind::In) {
            let (head, path) = self.path_ref()?;
            return Ok(Cond::In(left, Expr::Path { head, path }));
        }
        let op = match self.bump() {
            TokenKind::Eq => CompOp::Eq,
            TokenKind::Ne => CompOp::Ne,
            TokenKind::Lt => CompOp::Lt,
            TokenKind::Le => CompOp::Le,
            TokenKind::Gt => CompOp::Gt,
            TokenKind::Ge => CompOp::Ge,
            TokenKind::Like => CompOp::Like,
            other => {
                return Err(self.err(format!(
                    "expected comparison operator, found {}",
                    other.describe()
                )))
            }
        };
        let right = self.expr()?;
        Ok(Cond::Cmp(left, op, right))
    }

    fn expr(&mut self) -> Result<Expr, LorelError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Literal(annoda_oem::AtomicValue::Int(i)))
            }
            TokenKind::Real(r) => {
                self.bump();
                Ok(Expr::Literal(annoda_oem::AtomicValue::Real(r)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(annoda_oem::AtomicValue::Str(s)))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Literal(annoda_oem::AtomicValue::Bool(true)))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Literal(annoda_oem::AtomicValue::Bool(false)))
            }
            TokenKind::Count
            | TokenKind::Sum
            | TokenKind::Min
            | TokenKind::Max
            | TokenKind::Avg => {
                let f = match self.bump() {
                    TokenKind::Count => AggFn::Count,
                    TokenKind::Sum => AggFn::Sum,
                    TokenKind::Min => AggFn::Min,
                    TokenKind::Max => AggFn::Max,
                    TokenKind::Avg => AggFn::Avg,
                    _ => unreachable!("matched aggregate token"),
                };
                self.expect(TokenKind::LParen, "( after aggregate")?;
                let (head, path) = self.path_ref()?;
                self.expect(TokenKind::RParen, ") after aggregate argument")?;
                Ok(Expr::Aggregate(f, Box::new(Expr::Path { head, path })))
            }
            TokenKind::Ident(_) if self.peek2() == &TokenKind::LParen => {
                let name = self.ident("function name")?;
                self.expect(TokenKind::LParen, "( after function name")?;
                let mut args = Vec::new();
                if self.peek() != &TokenKind::RParen {
                    args.push(self.expr()?);
                    while self.eat(&TokenKind::Comma) {
                        args.push(self.expr()?);
                    }
                }
                self.expect(TokenKind::RParen, ") after function arguments")?;
                Ok(Expr::Call { name, args })
            }
            TokenKind::Ident(_) => {
                let (head, path) = self.path_ref()?;
                Ok(Expr::Path { head, path })
            }
            other => Err(self.err(format!("expected expression, found {}", other.describe()))),
        }
    }

    /// Parses `ident ('.' step)*`, returning the head and remaining steps.
    fn path_ref(&mut self) -> Result<(String, PathExpr), LorelError> {
        let head = self.ident("path head")?;
        let mut steps = Vec::new();
        while self.eat(&TokenKind::Dot) {
            let step = match self.peek().clone() {
                TokenKind::Percent => {
                    self.bump();
                    PathStep::AnyOne
                }
                TokenKind::Hash => {
                    self.bump();
                    PathStep::AnyPath
                }
                TokenKind::LParen => {
                    self.bump();
                    let mut alts = vec![self.ident("label alternative")?];
                    while self.eat(&TokenKind::Pipe) {
                        alts.push(self.ident("label alternative")?);
                    }
                    self.expect(TokenKind::RParen, ") after alternation")?;
                    PathStep::Alt(alts)
                }
                TokenKind::Ident(l) => {
                    self.bump();
                    PathStep::Label(l)
                }
                other => {
                    return Err(self.err(format!("expected path step, found {}", other.describe())))
                }
            };
            steps.push(step);
        }
        Ok((head, PathExpr::new(steps)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query() {
        let q = parse(r#"select S from ANNODA-GML.Source S where S.Name = "LocusLink""#).unwrap();
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.select[0].label, "S");
        assert_eq!(q.from.len(), 1);
        assert_eq!(q.from[0].head, "ANNODA-GML");
        assert_eq!(q.from[0].var, "S");
        assert!(q.where_.is_some());
    }

    #[test]
    fn from_without_variable_binds_head() {
        let q = parse("select x from ANNODA-GML").unwrap();
        assert_eq!(q.from[0].var, "ANNODA-GML");
        assert!(q.from[0].path.is_empty());
    }

    #[test]
    fn multiple_from_items_and_select_items() {
        let q = parse(
            "select G.Symbol as sym, count(G.Links) \
             from DB.Gene G, G.Links L \
             where G.Symbol like \"TP%\" and exists L.GO",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.select[0].label, "sym");
        assert_eq!(q.select[1].label, "count");
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[1].head, "G");
    }

    #[test]
    fn wildcards_in_paths() {
        let q = parse("select X from DB.#.Symbol X").unwrap();
        assert_eq!(q.from[0].path.len(), 2);
        let q = parse("select X from DB.%.(GO|Go) X").unwrap();
        assert_eq!(q.from[0].path.len(), 2);
    }

    #[test]
    fn condition_precedence_not_and_or() {
        let q = parse("select x from R x where not x.a = 1 and x.b = 2 or x.c = 3").unwrap();
        // ((not a=1) and b=2) or c=3
        match q.where_.unwrap() {
            Cond::Or(l, _) => match *l {
                Cond::And(l2, _) => assert!(matches!(*l2, Cond::Not(_))),
                other => panic!("expected And, got {other:?}"),
            },
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn parenthesised_condition() {
        let q = parse("select x from R x where x.a = 1 and (x.b = 2 or x.c = 3)").unwrap();
        match q.where_.unwrap() {
            Cond::And(_, r) => assert!(matches!(*r, Cond::Or(_, _))),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn order_by_with_direction() {
        let q = parse("select x from R x order by x.Symbol desc, x.LocusID").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].descending);
        assert!(!q.order_by[1].descending);
    }

    #[test]
    fn in_predicate() {
        let q = parse("select x from R x where x.Symbol in R.Known").unwrap();
        assert!(matches!(q.where_.unwrap(), Cond::In(_, _)));
    }

    #[test]
    fn distinct_is_accepted_and_ignored() {
        assert!(parse("select distinct x from R x").is_ok());
    }

    #[test]
    fn literals_in_select() {
        let q = parse(r#"select 1, 2.5, "hi", true from R x"#).unwrap();
        assert_eq!(q.select.len(), 4);
    }

    #[test]
    fn errors_report_offsets() {
        match parse("select from R x") {
            Err(LorelError::Parse { offset, .. }) => assert_eq!(offset, 7),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("select x").is_err()); // missing FROM
        assert!(parse("select x from R x where").is_err());
        assert!(parse("select x from R x extra").is_err());
    }

    #[test]
    fn aggregate_forms() {
        for f in ["count", "sum", "min", "max", "avg"] {
            let q = parse(&format!("select {f}(x.v) from R x")).unwrap();
            assert!(matches!(q.select[0].expr, Expr::Aggregate(_, _)));
        }
    }
}
