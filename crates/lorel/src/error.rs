//! Error type shared by the lexer, parser, and evaluator.

use std::fmt;

/// Errors raised while lexing, parsing, or evaluating a Lorel query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LorelError {
    /// A character or token could not be lexed.
    Lex {
        /// Byte offset of the offending input.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The token stream did not match the grammar.
    Parse {
        /// Byte offset of the offending token.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The query was well-formed but could not be evaluated
    /// (unknown root, unbound variable, …).
    Eval(String),
}

impl LorelError {
    pub(crate) fn eval(message: impl Into<String>) -> Self {
        LorelError::Eval(message.into())
    }
}

impl fmt::Display for LorelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LorelError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            LorelError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            LorelError::Eval(message) => write!(f, "evaluation error: {message}"),
        }
    }
}

impl std::error::Error for LorelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LorelError::Parse {
            offset: 12,
            message: "expected FROM".into(),
        };
        assert!(e.to_string().contains("byte 12"));
        assert!(e.to_string().contains("expected FROM"));
    }
}
