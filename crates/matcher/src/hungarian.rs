//! The Kuhn–Munkres (Hungarian) optimal-assignment algorithm.
//!
//! MDSM selects schema correspondences by solving the assignment problem
//! over the similarity matrix: pick at most one global element per source
//! element (and vice versa) maximising total similarity. The classic
//! greedy alternative — repeatedly take the highest remaining cell — can
//! lock itself out of the optimum; `greedy_assignment` is kept as the
//! ablation baseline for experiment B3.
//!
//! The implementation is the `O(n³)` shortest-augmenting-path formulation
//! with row/column potentials, on the cost matrix `max_score - score`
//! (converting maximisation to minimisation), padded to square for
//! rectangular inputs.

/// The result of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Matched `(row, column)` pairs, sorted by row.
    pub pairs: Vec<(usize, usize)>,
    /// Total score of the matched pairs.
    pub total: f64,
}

impl Assignment {
    /// The column matched to `row`, if any.
    pub fn column_of(&self, row: usize) -> Option<usize> {
        self.pairs.iter().find(|&&(r, _)| r == row).map(|&(_, c)| c)
    }
}

/// Maximum-score assignment over a dense `rows × cols` score matrix.
///
/// Every row of `score` must have the same length. Scores may be any
/// finite `f64`; negative scores are allowed (they simply count against
/// the total — callers typically post-filter pairs below a threshold).
///
/// ```
/// use annoda_match::hungarian_max;
/// // greedy would take 0.9 first and end with 0.9 + 0.1 = 1.0;
/// // the optimum is 0.8 + 0.7 = 1.5.
/// let score = vec![vec![0.9, 0.8], vec![0.7, 0.1]];
/// let a = hungarian_max(&score);
/// assert_eq!(a.pairs, vec![(0, 1), (1, 0)]);
/// assert!((a.total - 1.5).abs() < 1e-9);
/// ```
pub fn hungarian_max(score: &[Vec<f64>]) -> Assignment {
    let rows = score.len();
    let cols = score.first().map_or(0, Vec::len);
    if rows == 0 || cols == 0 {
        return Assignment {
            pairs: Vec::new(),
            total: 0.0,
        };
    }
    debug_assert!(score.iter().all(|r| r.len() == cols), "ragged matrix");

    let n = rows.max(cols);
    let max_score = score
        .iter()
        .flatten()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(0.0);
    // cost[i][j]: padded minimisation matrix.
    let cost = |i: usize, j: usize| -> f64 {
        if i < rows && j < cols {
            max_score - score[i][j]
        } else {
            max_score // dummy cells: equivalent to score 0
        }
    };

    // Shortest augmenting path with potentials (1-indexed internals).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut pairs = Vec::new();
    let mut total = 0.0;
    for j in 1..=n {
        let i = p[j];
        if i >= 1 && i - 1 < rows && j - 1 < cols {
            pairs.push((i - 1, j - 1));
            total += score[i - 1][j - 1];
        }
    }
    pairs.sort_unstable();
    Assignment { pairs, total }
}

/// Greedy best-first assignment (the B3 ablation baseline): repeatedly
/// matches the highest remaining cell.
pub fn greedy_assignment(score: &[Vec<f64>]) -> Assignment {
    let rows = score.len();
    let cols = score.first().map_or(0, Vec::len);
    let mut cells: Vec<(usize, usize)> = (0..rows)
        .flat_map(|i| (0..cols).map(move |j| (i, j)))
        .collect();
    cells.sort_by(|&(ai, aj), &(bi, bj)| {
        score[bi][bj]
            .partial_cmp(&score[ai][aj])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(ai.cmp(&bi))
            .then(aj.cmp(&bj))
    });
    let mut row_used = vec![false; rows];
    let mut col_used = vec![false; cols];
    let mut pairs = Vec::new();
    let mut total = 0.0;
    for (i, j) in cells {
        if !row_used[i] && !col_used[j] {
            row_used[i] = true;
            col_used[j] = true;
            pairs.push((i, j));
            total += score[i][j];
        }
    }
    pairs.sort_unstable();
    Assignment { pairs, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_max(score: &[Vec<f64>]) -> f64 {
        // Try all permutations of the smaller dimension.
        let rows = score.len();
        let cols = score[0].len();
        fn rec(score: &[Vec<f64>], row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if row == score.len() {
                *best = best.max(acc);
                return;
            }
            // Option: leave this row unmatched.
            rec(score, row + 1, used, acc, best);
            for j in 0..used.len() {
                if !used[j] {
                    used[j] = true;
                    rec(score, row + 1, used, acc + score[row][j], best);
                    used[j] = false;
                }
            }
        }
        let mut best = f64::NEG_INFINITY;
        let mut used = vec![false; cols];
        let _ = rows;
        rec(score, 0, &mut used, 0.0, &mut best);
        best
    }

    #[test]
    fn beats_greedy_on_the_classic_trap() {
        let score = vec![vec![0.9, 0.8], vec![0.7, 0.1]];
        let h = hungarian_max(&score);
        let g = greedy_assignment(&score);
        assert!((h.total - 1.5).abs() < 1e-9);
        assert!((g.total - 1.0).abs() < 1e-9);
        assert!(h.total > g.total);
    }

    #[test]
    fn square_matrix_matches_brute_force() {
        let score = vec![
            vec![0.2, 0.7, 0.1, 0.5],
            vec![0.9, 0.4, 0.3, 0.6],
            vec![0.5, 0.8, 0.7, 0.2],
            vec![0.1, 0.3, 0.9, 0.4],
        ];
        let h = hungarian_max(&score);
        assert!((h.total - brute_force_max(&score)).abs() < 1e-9);
        assert_eq!(h.pairs.len(), 4);
    }

    #[test]
    fn rectangular_wide_matrix() {
        let score = vec![vec![0.1, 0.9, 0.5]];
        let h = hungarian_max(&score);
        assert_eq!(h.pairs, vec![(0, 1)]);
        assert!((h.total - 0.9).abs() < 1e-9);
    }

    #[test]
    fn rectangular_tall_matrix() {
        let score = vec![vec![0.3], vec![0.8], vec![0.5]];
        let h = hungarian_max(&score);
        assert_eq!(h.pairs, vec![(1, 0)]);
        assert!((h.total - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_matrices() {
        assert_eq!(hungarian_max(&[]).pairs, vec![]);
        let empty_cols: Vec<Vec<f64>> = vec![vec![]];
        assert_eq!(hungarian_max(&empty_cols).pairs, vec![]);
        assert_eq!(greedy_assignment(&[]).pairs, vec![]);
    }

    #[test]
    fn identity_preference() {
        // Strong diagonal: both algorithms should find it.
        let n = 6;
        let score: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.05 }).collect())
            .collect();
        let h = hungarian_max(&score);
        let g = greedy_assignment(&score);
        let diag: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        assert_eq!(h.pairs, diag);
        assert_eq!(g.pairs, diag);
        assert!((h.total - n as f64).abs() < 1e-9);
    }

    #[test]
    fn column_of_lookup() {
        let score = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let h = hungarian_max(&score);
        assert_eq!(h.column_of(0), Some(0));
        assert_eq!(h.column_of(1), Some(1));
        assert_eq!(h.column_of(2), None);
    }

    #[test]
    fn randomised_against_brute_force() {
        // Deterministic pseudo-random matrices (LCG) up to 5×5.
        let mut state = 0x2545F491_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for n in 2..=5 {
            for _ in 0..20 {
                let score: Vec<Vec<f64>> =
                    (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
                let h = hungarian_max(&score);
                let bf = brute_force_max(&score);
                assert!(
                    (h.total - bf).abs() < 1e-9,
                    "hungarian {} != brute force {bf} on {score:?}",
                    h.total
                );
            }
        }
    }
}
