//! The MDSM pipeline: similarity matrix → optimal assignment → mapping
//! rules.

use annoda_oem::OemStore;

use crate::hungarian::{greedy_assignment, hungarian_max, Assignment};
use crate::schema::{SchemaElement, SchemaExtract};
use crate::similarity::combined_similarity;

/// Matching configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchConfig {
    /// Pairs scoring below this are discarded after assignment.
    pub threshold: f64,
    /// Use the greedy baseline instead of the Hungarian method (the B3
    /// ablation switch).
    pub greedy: bool,
    /// Weight of context similarity (the parent path) blended into each
    /// cell next to the element-name similarity.
    pub context_weight: f64,
    /// Maximum path depth extracted from instance data.
    pub max_depth: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            threshold: 0.35,
            greedy: false,
            context_weight: 0.25,
            // Entities live at depth 1, attributes at depth 2. Deeper
            // paths (recursive DAG edges like Term.IsA.IsA…) are not
            // entity classes and only scatter the assignment.
            max_depth: 2,
        }
    }
}

/// One discovered correspondence between a source schema element and a
/// global schema element.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingRule {
    /// Dotted source path (`Entry.MimNumber`).
    pub source_path: String,
    /// Dotted global path (`Disease.DiseaseID`).
    pub global_path: String,
    /// The combined similarity that justified the rule.
    pub score: f64,
}

/// Quality statistics for a match run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchReport {
    /// Accepted rules (≥ threshold).
    pub matched: usize,
    /// Source elements with no accepted correspondence.
    pub unmatched_source: usize,
    /// Global elements with no accepted correspondence.
    pub unmatched_global: usize,
    /// Mean score of the accepted rules (0 when none).
    pub mean_score: f64,
    /// Total assignment score before thresholding.
    pub assignment_total: f64,
}

/// The MDSM matcher.
#[derive(Debug, Clone, Default)]
pub struct Mdsm {
    config: MatchConfig,
}

impl Mdsm {
    /// A matcher with the given configuration.
    pub fn new(config: MatchConfig) -> Self {
        Mdsm { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// Matches two extracted schemas, producing mapping rules.
    pub fn match_schemas(
        &self,
        source: &SchemaExtract,
        global: &SchemaExtract,
    ) -> (Vec<MappingRule>, MatchReport) {
        let src: Vec<&SchemaElement> = source.elements.iter().collect();
        let glb: Vec<&SchemaElement> = global.elements.iter().collect();
        if src.is_empty() || glb.is_empty() {
            return (
                Vec::new(),
                MatchReport {
                    unmatched_source: src.len(),
                    unmatched_global: glb.len(),
                    ..MatchReport::default()
                },
            );
        }

        let parent_of = |extract: &'_ SchemaExtract, e: &SchemaElement| -> Option<Vec<String>> {
            if e.path.len() < 2 {
                return None;
            }
            let parent_path = e.path[..e.path.len() - 1].join(".");
            extract.get(&parent_path).map(|p| p.children.clone())
        };
        let src_parent_children: Vec<Option<Vec<String>>> =
            src.iter().map(|s| parent_of(source, s)).collect();
        let glb_parent_children: Vec<Option<Vec<String>>> =
            glb.iter().map(|g| parent_of(global, g)).collect();

        let score: Vec<Vec<f64>> = src
            .iter()
            .enumerate()
            .map(|(i, s)| {
                glb.iter()
                    .enumerate()
                    .map(|(j, g)| {
                        self.cell(
                            s,
                            g,
                            src_parent_children[i].as_deref(),
                            glb_parent_children[j].as_deref(),
                        )
                    })
                    .collect()
            })
            .collect();

        let assignment: Assignment = if self.config.greedy {
            greedy_assignment(&score)
        } else {
            hungarian_max(&score)
        };

        let mut rules = Vec::new();
        for &(i, j) in &assignment.pairs {
            if score[i][j] >= self.config.threshold {
                rules.push(MappingRule {
                    source_path: src[i].dotted(),
                    global_path: glb[j].dotted(),
                    score: score[i][j],
                });
            }
        }
        rules.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mean_score = if rules.is_empty() {
            0.0
        } else {
            rules.iter().map(|r| r.score).sum::<f64>() / rules.len() as f64
        };
        let report = MatchReport {
            matched: rules.len(),
            unmatched_source: src.len() - rules.len(),
            unmatched_global: glb.len() - rules.len(),
            mean_score,
            assignment_total: assignment.total,
        };
        (rules, report)
    }

    /// Convenience: extract both schemas from stores and match them.
    pub fn match_stores(
        &self,
        source_store: &OemStore,
        source_root: &str,
        global_store: &OemStore,
        global_root: &str,
    ) -> (Vec<MappingRule>, MatchReport) {
        let src = SchemaExtract::from_store(source_store, source_root, self.config.max_depth);
        let glb = SchemaExtract::from_store(global_store, global_root, self.config.max_depth);
        self.match_schemas(&src, &glb)
    }

    /// One similarity-matrix cell: element-name similarity blended with
    /// context (parent) similarity, both type-gated.
    ///
    /// Complex (entity-level) pairs additionally use structural
    /// similarity over their child vocabularies, which rescues pairs
    /// like `Term` → `Function` whose names share nothing; nested
    /// complexes (DAG edges like `Term.IsA`, link containers like
    /// `Locus.Links`) are discouraged from mapping across nesting
    /// levels. Context compares both the parent labels *and* the parent
    /// elements' child vocabularies, so `Term.TermName` prefers
    /// `Function.Name` over `Disease.Name` even though the parent names
    /// are equally dissimilar.
    fn cell(
        &self,
        s: &SchemaElement,
        g: &SchemaElement,
        s_parent_children: Option<&[String]>,
        g_parent_children: Option<&[String]>,
    ) -> f64 {
        let mut name = combined_similarity(s.name(), g.name(), s.ty, g.ty);
        if matches!(s.ty, annoda_oem::OemType::Complex)
            && matches!(g.ty, annoda_oem::OemType::Complex)
        {
            let structure = crate::similarity::child_token_similarity(&s.children, &g.children);
            name = name.max(0.4 * name + 0.6 * structure);
            if s.path.len() != g.path.len() {
                name *= 0.3;
            }
        }
        let context = {
            let ps = parent(&s.path);
            let pg = parent(&g.path);
            match (ps, pg) {
                (Some(a), Some(b)) => {
                    let label_sim = crate::similarity::token_similarity(a, b)
                        .max(crate::similarity::ngram_similarity(a, b));
                    let struct_sim = match (s_parent_children, g_parent_children) {
                        (Some(ca), Some(cb)) => crate::similarity::child_token_similarity(ca, cb),
                        _ => 0.0,
                    };
                    label_sim.max(struct_sim)
                }
                (None, None) => 1.0,
                _ => 0.0,
            }
        };
        let w = self.config.context_weight;
        name * (1.0 - w) + context * w * if name > 0.0 { 1.0 } else { 0.0 }
    }
}

fn parent(path: &[String]) -> Option<&str> {
    if path.len() >= 2 {
        Some(path[path.len() - 2].as_str())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annoda_oem::{AtomicType, OemType};

    fn elem(path: &[&str], ty: OemType, cardinality: usize) -> SchemaElement {
        SchemaElement {
            path: path.iter().map(|s| s.to_string()).collect(),
            ty,
            cardinality,
            children: Vec::new(),
        }
    }

    fn omim_schema() -> SchemaExtract {
        let s = OemType::Atomic(AtomicType::Str);
        let i = OemType::Atomic(AtomicType::Int);
        SchemaExtract {
            elements: vec![
                elem(&["Entry"], OemType::Complex, 10),
                elem(&["Entry", "MimNumber"], i, 10),
                elem(&["Entry", "Title"], s, 10),
                elem(&["Entry", "GeneSymbol"], s, 14),
                elem(&["Entry", "Inheritance"], s, 7),
            ],
        }
    }

    fn gml_disease_schema() -> SchemaExtract {
        let s = OemType::Atomic(AtomicType::Str);
        let i = OemType::Atomic(AtomicType::Int);
        SchemaExtract {
            elements: vec![
                elem(&["Disease"], OemType::Complex, 10),
                elem(&["Disease", "DiseaseID"], i, 10),
                elem(&["Disease", "Name"], s, 10),
                elem(&["Disease", "Symbol"], s, 14),
                elem(&["Disease", "Inheritance"], s, 7),
            ],
        }
    }

    #[test]
    fn finds_the_expected_correspondences() {
        let mdsm = Mdsm::default();
        let (rules, report) = mdsm.match_schemas(&omim_schema(), &gml_disease_schema());
        let find = |src: &str| {
            rules
                .iter()
                .find(|r| r.source_path == src)
                .map(|r| r.global_path.as_str())
        };
        assert_eq!(find("Entry.MimNumber"), Some("Disease.DiseaseID"));
        assert_eq!(find("Entry.Title"), Some("Disease.Name"));
        assert_eq!(find("Entry.GeneSymbol"), Some("Disease.Symbol"));
        assert_eq!(find("Entry.Inheritance"), Some("Disease.Inheritance"));
        assert_eq!(find("Entry"), Some("Disease"));
        assert_eq!(report.matched, 5);
        assert_eq!(report.unmatched_source, 0);
        assert!(report.mean_score > 0.5);
    }

    #[test]
    fn one_to_one_constraint_holds() {
        let mdsm = Mdsm::default();
        let (rules, _) = mdsm.match_schemas(&omim_schema(), &gml_disease_schema());
        let mut globals: Vec<&str> = rules.iter().map(|r| r.global_path.as_str()).collect();
        globals.sort_unstable();
        globals.dedup();
        assert_eq!(
            globals.len(),
            rules.len(),
            "no global element matched twice"
        );
    }

    #[test]
    fn threshold_prunes_weak_pairs() {
        let strict = Mdsm::new(MatchConfig {
            threshold: 0.99,
            ..MatchConfig::default()
        });
        let (rules, report) = strict.match_schemas(&omim_schema(), &gml_disease_schema());
        // Only near-perfect pairs survive a 0.99 threshold; the fuzzy
        // MimNumber→DiseaseID pair is pruned.
        assert!(rules.len() <= 4, "got {rules:?}");
        assert!(report.unmatched_source >= 1);
        assert!(!rules.iter().any(|r| r.source_path == "Entry.MimNumber"));
    }

    #[test]
    fn greedy_mode_runs_and_reports() {
        let greedy = Mdsm::new(MatchConfig {
            greedy: true,
            ..MatchConfig::default()
        });
        let hungarian = Mdsm::default();
        let (_, rg) = greedy.match_schemas(&omim_schema(), &gml_disease_schema());
        let (_, rh) = hungarian.match_schemas(&omim_schema(), &gml_disease_schema());
        assert!(rh.assignment_total >= rg.assignment_total - 1e-9);
    }

    #[test]
    fn empty_schemas_are_handled() {
        let mdsm = Mdsm::default();
        let (rules, report) = mdsm.match_schemas(&SchemaExtract::default(), &gml_disease_schema());
        assert!(rules.is_empty());
        assert_eq!(report.unmatched_global, 5);
    }

    #[test]
    fn hungarian_resolves_the_symbol_ambiguity() {
        // Two source elements compete for `Symbol`: `GeneSymbol` (good)
        // and `Gene` (weaker, should pair elsewhere or drop).
        let s = OemType::Atomic(AtomicType::Str);
        let src = SchemaExtract {
            elements: vec![elem(&["A", "GeneSymbol"], s, 5), elem(&["A", "Gene"], s, 5)],
        };
        let glb = SchemaExtract {
            elements: vec![elem(&["G", "Symbol"], s, 5), elem(&["G", "Locus"], s, 5)],
        };
        let mdsm = Mdsm::new(MatchConfig {
            threshold: 0.1,
            context_weight: 0.0,
            ..MatchConfig::default()
        });
        let (rules, _) = mdsm.match_schemas(&src, &glb);
        let find = |p: &str| rules.iter().find(|r| r.source_path == p);
        assert_eq!(find("A.GeneSymbol").unwrap().global_path, "G.Symbol");
        // `Gene` must take `Locus` (synonym group), not steal `Symbol`.
        assert_eq!(find("A.Gene").unwrap().global_path, "G.Locus");
    }
}
