//! The similarity measures MDSM combines into one matrix.
//!
//! Schema element names in annotation databases are short, abbreviated,
//! and inconsistently cased (`LocusID`, `Accession`, `MimNumber`,
//! `GeneSymbol`). MDSM therefore blends several string measures — exact
//! edit distance for typos, n-gram overlap for abbreviations, token
//! overlap (with a domain synonym table) for compound names — and gates
//! the result by data-type compatibility.

use annoda_oem::OemType;

/// Levenshtein edit distance (unit costs).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Edit-distance similarity in `[0, 1]` over lowercased names.
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let a = a.to_lowercase();
    let b = b.to_lowercase();
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(&a, &b) as f64 / max_len as f64
}

/// Dice coefficient over character bigrams of the lowercased names.
pub fn ngram_similarity(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> Vec<(char, char)> {
        let chars: Vec<char> = s.to_lowercase().chars().collect();
        chars.windows(2).map(|w| (w[0], w[1])).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return if a.to_lowercase() == b.to_lowercase() {
            1.0
        } else {
            0.0
        };
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let mut gb_pool = gb.clone();
    let mut overlap = 0usize;
    for g in &ga {
        if let Some(pos) = gb_pool.iter().position(|x| x == g) {
            gb_pool.swap_remove(pos);
            overlap += 1;
        }
    }
    2.0 * overlap as f64 / (ga.len() + gb.len()) as f64
}

/// Domain synonym groups for the annotation vocabulary. Tokens in the
/// same group count as equal during token matching.
const SYNONYM_GROUPS: &[&[&str]] = &[
    &[
        "id",
        "identifier",
        "accession",
        "number",
        "no",
        "mim",
        "goid",
        "pmid",
    ],
    &["name", "title", "term"],
    &["gene", "locus", "symbol", "genesymbol"],
    &["disease", "disorder", "phenotype", "entry"],
    &["function", "ontology", "namespace", "go"],
    &["description", "definition", "desc", "def", "text"],
    &["link", "url", "links"],
    &["organism", "species", "taxon"],
    &["position", "map", "location"],
    &["evidence", "evidencecode"],
    &["publication", "citation", "article", "paper", "reference"],
    &["journal", "periodical"],
];

fn canonical_token(tok: &str) -> &str {
    for group in SYNONYM_GROUPS {
        if group.contains(&tok) {
            return group[0];
        }
    }
    tok
}

/// Splits a schema name into lowercase tokens on case boundaries, digits,
/// `_`, `-` and `.`.
pub fn tokenize(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    for c in name.chars() {
        if c == '_' || c == '-' || c == '.' || c.is_whitespace() {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            prev_lower = false;
        } else if c.is_uppercase() && prev_lower {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            cur.push(c.to_ascii_lowercase());
            prev_lower = false;
        } else {
            prev_lower = c.is_lowercase();
            cur.push(c.to_ascii_lowercase());
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Jaccard overlap of canonicalised token *sets* (synonyms collapse,
/// repeated tokens count once).
pub fn token_similarity(a: &str, b: &str) -> f64 {
    let canon_set = |s: &str| -> std::collections::BTreeSet<String> {
        tokenize(s)
            .iter()
            .map(|t| canonical_token(t).to_string())
            .collect()
    };
    let ta = canon_set(a);
    let tb = canon_set(b);
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let overlap = ta.intersection(&tb).count();
    let union = ta.len() + tb.len() - overlap;
    overlap as f64 / union as f64
}

/// Compatibility factor between two OEM value types in `[0, 1]`:
/// identical types are fully compatible, numeric pairs and textual pairs
/// are partially compatible, complex never matches atomic.
pub fn type_compatibility(a: OemType, b: OemType) -> f64 {
    use annoda_oem::AtomicType::*;
    match (a, b) {
        (x, y) if x == y => 1.0,
        (OemType::Complex, _) | (_, OemType::Complex) => 0.0,
        (OemType::Atomic(x), OemType::Atomic(y)) => match (x, y) {
            (Int, Real) | (Real, Int) => 0.8,
            (Str, Url) | (Url, Str) => 0.8,
            (Int, Str) | (Str, Int) | (Real, Str) | (Str, Real) => 0.5,
            _ => 0.1,
        },
    }
}

/// The combined MDSM cell score: the best of the three string measures,
/// scaled by type compatibility.
pub fn combined_similarity(name_a: &str, name_b: &str, ty_a: OemType, ty_b: OemType) -> f64 {
    let s = name_similarity(name_a, name_b)
        .max(ngram_similarity(name_a, name_b))
        .max(token_similarity(name_a, name_b));
    s * type_compatibility(ty_a, ty_b)
}

/// Structural similarity between two complex schema elements: Jaccard
/// overlap of the canonicalised token sets of their child labels. `Term`
/// and `Function` share no name material, but their child vocabularies
/// (`Accession`/`FunctionID`, `TermName`/`Name`, `Ontology`/`Namespace`,
/// `Definition`/`Definition`, `Url`/`Link`) collapse to the same tokens.
pub fn child_token_similarity(a: &[String], b: &[String]) -> f64 {
    let canon_set = |labels: &[String]| -> std::collections::BTreeSet<String> {
        labels
            .iter()
            .flat_map(|l| tokenize(l))
            .map(|t| canonical_token(&t).to_string())
            .collect()
    };
    let ta = canon_set(a);
    let tb = canon_set(b);
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let overlap = ta.intersection(&tb).count();
    overlap as f64 / (ta.len() + tb.len() - overlap) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use annoda_oem::AtomicType;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("symbol", "symbol"), 0);
    }

    #[test]
    fn name_similarity_range() {
        assert!((name_similarity("Symbol", "symbol") - 1.0).abs() < 1e-9);
        assert_eq!(name_similarity("", ""), 1.0);
        let s = name_similarity("LocusID", "Accession");
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn ngram_prefers_shared_substrings() {
        assert!(ngram_similarity("GeneSymbol", "Symbol") > ngram_similarity("GeneSymbol", "Title"));
        assert!((ngram_similarity("ab", "ab") - 1.0).abs() < 1e-9);
        assert_eq!(ngram_similarity("a", "b"), 0.0);
        assert_eq!(ngram_similarity("a", "a"), 1.0);
    }

    #[test]
    fn tokenize_splits_camel_and_separators() {
        assert_eq!(tokenize("GeneSymbol"), vec!["gene", "symbol"]);
        assert_eq!(tokenize("locus_id"), vec!["locus", "id"]);
        assert_eq!(tokenize("Mim-Number"), vec!["mim", "number"]);
        assert_eq!(tokenize("TermName"), vec!["term", "name"]);
        assert_eq!(tokenize("ID"), vec!["id"]);
    }

    #[test]
    fn token_similarity_uses_synonyms() {
        // MimNumber ~ ID through number≡id, TermName ~ Name through term≡name.
        assert!(token_similarity("MimNumber", "DiseaseID") > 0.0);
        assert!(token_similarity("TermName", "Name") > 0.9);
        assert!(token_similarity("GeneSymbol", "Symbol") > 0.4);
        assert_eq!(token_similarity("Organism", "Evidence"), 0.0);
    }

    #[test]
    fn type_compatibility_matrix() {
        use OemType::*;
        assert_eq!(type_compatibility(Complex, Complex), 1.0);
        assert_eq!(type_compatibility(Complex, Atomic(AtomicType::Int)), 0.0);
        assert!(
            type_compatibility(Atomic(AtomicType::Int), Atomic(AtomicType::Real))
                > type_compatibility(Atomic(AtomicType::Int), Atomic(AtomicType::Str))
        );
        assert!(
            type_compatibility(Atomic(AtomicType::Str), Atomic(AtomicType::Url))
                > type_compatibility(Atomic(AtomicType::Gif), Atomic(AtomicType::Str))
        );
    }

    #[test]
    fn combined_gates_by_type() {
        use OemType::*;
        let same_type = combined_similarity(
            "Symbol",
            "GeneSymbol",
            Atomic(AtomicType::Str),
            Atomic(AtomicType::Str),
        );
        let cross_type =
            combined_similarity("Symbol", "GeneSymbol", Atomic(AtomicType::Str), Complex);
        assert!(same_type > 0.4);
        assert_eq!(cross_type, 0.0);
    }

    #[test]
    fn the_actual_oml_gml_pairs_score_high() {
        use OemType::*;
        let str_t = Atomic(AtomicType::Str);
        let int_t = Atomic(AtomicType::Int);
        // The correspondences the mediator needs MDSM to find:
        assert!(combined_similarity("Symbol", "Symbol", str_t, str_t) > 0.9);
        // `Gene`, `Locus` and `Symbol` are domain synonyms: GO's
        // `Annotation.Gene` column carries gene symbols.
        assert!(combined_similarity("Gene", "Symbol", str_t, str_t) > 0.9);
        assert!(combined_similarity("GeneSymbol", "Symbol", str_t, str_t) > 0.9);
        assert!(combined_similarity("Accession", "FunctionID", str_t, str_t) > 0.3);
        assert!(combined_similarity("MimNumber", "DiseaseID", int_t, int_t) > 0.3);
        assert!(combined_similarity("TermName", "FunctionName", str_t, str_t) > 0.4);
    }
}
