//! # annoda-match — MDSM schema matching with the Hungarian method
//!
//! ANNODA resolves semantic conflicts between a new annotation source and
//! the global model by *schema matching*: compute a similarity matrix
//! between the elements of the source's OML schema and the elements of the
//! global GML schema, then select the correspondence set that maximises
//! total similarity. The paper adopts the authors' MDSM method
//! ("Microarray Database Schema Matching using Hungarian Method"), i.e.
//! the optimal assignment is found with the **Kuhn–Munkres (Hungarian)
//! algorithm** rather than greedy best-first picking.
//!
//! The crate provides:
//!
//! * [`schema`] — schema elements extracted from OML instance data
//!   (label paths + value types, via DataGuides);
//! * [`similarity`] — the matchers MDSM combines: name similarity
//!   (Levenshtein, n-gram, token), data-type compatibility, and
//!   structural similarity;
//! * [`hungarian`] — an `O(n³)` Kuhn–Munkres implementation over a dense
//!   score matrix (maximisation form), plus the greedy baseline used by
//!   the B3 ablation;
//! * [`mdsm`] — the combined pipeline producing [`mdsm::MappingRule`]s
//!   with scores and a match-quality report.

pub mod hungarian;
pub mod mdsm;
pub mod schema;
pub mod similarity;

pub use hungarian::{greedy_assignment, hungarian_max, Assignment};
pub use mdsm::{MappingRule, MatchConfig, MatchReport, Mdsm};
pub use schema::{SchemaElement, SchemaExtract};
pub use similarity::{
    child_token_similarity, combined_similarity, levenshtein, name_similarity, ngram_similarity,
    token_similarity,
};
