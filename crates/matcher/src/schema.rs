//! Schema extraction from OML instance data.
//!
//! Semi-structured sources carry no separate schema; MDSM therefore
//! matches *extracted* schemas: the label paths present in the data (via
//! a DataGuide) together with the observed value type and cardinality at
//! each path.

use annoda_oem::dataguide::DataGuide;
use annoda_oem::{OemStore, OemType, PathExpr, PathStep};

/// One element of an extracted schema: a label path with its observed
/// type and how many objects it reaches.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaElement {
    /// The label path from the source root, e.g. `["Locus", "Symbol"]`.
    pub path: Vec<String>,
    /// The type of the objects the path reaches (first observed object;
    /// annotation data is homogeneous enough for this to be stable).
    pub ty: OemType,
    /// Number of distinct objects the path reaches.
    pub cardinality: usize,
    /// For complex elements: the child labels observed below the path
    /// (sorted). Entity-level matching compares these structurally —
    /// `Term` and `Function` share no name material but near-identical
    /// child vocabularies.
    pub children: Vec<String>,
}

impl SchemaElement {
    /// The last label — the element's *name* for string matching.
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }

    /// The dotted rendering of the path.
    pub fn dotted(&self) -> String {
        self.path.join(".")
    }
}

/// An extracted schema for one rooted OEM region.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchemaExtract {
    /// Elements in lexicographic path order.
    pub elements: Vec<SchemaElement>,
}

impl SchemaExtract {
    /// Extracts the schema of the region under the named root, with
    /// paths up to `max_depth` labels.
    pub fn from_store(store: &OemStore, root_name: &str, max_depth: usize) -> Self {
        let Some(root) = store.named(root_name) else {
            return SchemaExtract::default();
        };
        let guide = DataGuide::build(store, &[root]);
        let mut elements = Vec::new();
        for path in guide.paths(max_depth) {
            let refs: Vec<&str> = path.iter().map(String::as_str).collect();
            let cardinality = guide.cardinality(&refs);
            // Observe the type by evaluating the path and looking at the
            // first object.
            let expr = PathExpr::new(path.iter().cloned().map(PathStep::Label).collect());
            let ty = expr
                .eval(store, root)
                .first()
                .and_then(|&o| store.type_of(o))
                .unwrap_or(OemType::Complex);
            let children = match guide.lookup(&refs) {
                Some(node) if ty == OemType::Complex => guide
                    .out_labels(node)
                    .into_iter()
                    .map(str::to_string)
                    .collect(),
                _ => Vec::new(),
            };
            elements.push(SchemaElement {
                path,
                ty,
                cardinality,
                children,
            });
        }
        SchemaExtract { elements }
    }

    /// Elements whose paths reach atomic objects — the attribute-level
    /// elements MDSM matches (complex "entity" paths are matched too,
    /// but most mapping rules live at the attribute level).
    pub fn atomic_elements(&self) -> impl Iterator<Item = &SchemaElement> {
        self.elements
            .iter()
            .filter(|e| !matches!(e.ty, OemType::Complex))
    }

    /// Number of extracted elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when nothing was extracted.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Looks up an element by its dotted path.
    pub fn get(&self, dotted: &str) -> Option<&SchemaElement> {
        self.elements.iter().find(|e| e.dotted() == dotted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annoda_oem::{AtomicType, AtomicValue};

    fn locus_store() -> OemStore {
        let mut db = OemStore::new();
        let root = db.new_complex();
        for (sym, id) in [("TP53", 7157i64), ("BRCA1", 672)] {
            let l = db.add_complex_child(root, "Locus").unwrap();
            db.add_atomic_child(l, "Symbol", sym).unwrap();
            db.add_atomic_child(l, "LocusID", AtomicValue::Int(id))
                .unwrap();
            let links = db.add_complex_child(l, "Links").unwrap();
            db.add_atomic_child(links, "GO", AtomicValue::Url("http://go".into()))
                .unwrap();
        }
        db.set_name("LocusLink", root).unwrap();
        db
    }

    #[test]
    fn extracts_paths_types_and_cardinalities() {
        let store = locus_store();
        let schema = SchemaExtract::from_store(&store, "LocusLink", 3);
        let sym = schema.get("Locus.Symbol").unwrap();
        assert_eq!(sym.ty, OemType::Atomic(AtomicType::Str));
        assert_eq!(sym.cardinality, 2);
        assert_eq!(sym.name(), "Symbol");
        let locus = schema.get("Locus").unwrap();
        assert_eq!(locus.ty, OemType::Complex);
        let go = schema.get("Locus.Links.GO").unwrap();
        assert_eq!(go.ty, OemType::Atomic(AtomicType::Url));
    }

    #[test]
    fn depth_limit_is_respected() {
        let store = locus_store();
        let schema = SchemaExtract::from_store(&store, "LocusLink", 2);
        assert!(schema.get("Locus.Links").is_some());
        assert!(schema.get("Locus.Links.GO").is_none());
    }

    #[test]
    fn atomic_elements_excludes_entities() {
        let store = locus_store();
        let schema = SchemaExtract::from_store(&store, "LocusLink", 3);
        let atoms: Vec<&str> = schema.atomic_elements().map(|e| e.name()).collect();
        assert!(atoms.contains(&"Symbol"));
        assert!(!atoms.contains(&"Locus"));
        assert!(!atoms.contains(&"Links"));
    }

    #[test]
    fn missing_root_gives_empty_schema() {
        let store = locus_store();
        let schema = SchemaExtract::from_store(&store, "Nope", 3);
        assert!(schema.is_empty());
        assert_eq!(schema.len(), 0);
    }
}
