//! Property-based tests for the matcher: the Hungarian algorithm must
//! produce valid matchings that dominate greedy on every matrix, and
//! the similarity measures must respect their metric-like contracts.

use proptest::prelude::*;

use annoda_match::{
    greedy_assignment, hungarian_max, levenshtein, ngram_similarity, token_similarity,
};

fn score_matrix() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        proptest::collection::vec(proptest::collection::vec(0.0..1.0f64, c..=c), r..=r)
    })
}

fn word() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z_]{0,12}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hungarian_matching_is_valid(score in score_matrix()) {
        let a = hungarian_max(&score);
        let rows: Vec<usize> = a.pairs.iter().map(|&(i, _)| i).collect();
        let cols: Vec<usize> = a.pairs.iter().map(|&(_, j)| j).collect();
        let mut rs = rows.clone();
        rs.sort_unstable();
        rs.dedup();
        prop_assert_eq!(rs.len(), rows.len(), "row matched twice");
        let mut cs = cols.clone();
        cs.sort_unstable();
        cs.dedup();
        prop_assert_eq!(cs.len(), cols.len(), "column matched twice");
        // The reported total is the sum of the matched cells.
        let sum: f64 = a.pairs.iter().map(|&(i, j)| score[i][j]).sum();
        prop_assert!((a.total - sum).abs() < 1e-9);
        // A square-or-smaller dimension is fully matched (non-negative
        // scores never make leaving a pair unmatched better).
        prop_assert_eq!(a.pairs.len(), score.len().min(score[0].len()));
    }

    #[test]
    fn hungarian_dominates_greedy(score in score_matrix()) {
        let h = hungarian_max(&score);
        let g = greedy_assignment(&score);
        prop_assert!(h.total >= g.total - 1e-9, "hungarian {} < greedy {}", h.total, g.total);
    }

    #[test]
    fn levenshtein_is_a_metric(a in word(), b in word(), c in word()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // Triangle inequality.
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Bounded by the longer string.
        prop_assert!(levenshtein(&a, &b) <= a.chars().count().max(b.chars().count()));
    }

    #[test]
    fn similarities_are_symmetric_and_bounded(a in word(), b in word()) {
        for f in [ngram_similarity, token_similarity] {
            let ab = f(&a, &b);
            let ba = f(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12, "asymmetry: {} vs {}", ab, ba);
            prop_assert!((0.0..=1.0).contains(&ab), "out of range: {}", ab);
        }
    }

    #[test]
    fn identical_names_score_one(a in proptest::string::string_regex("[A-Za-z]{1,12}").unwrap()) {
        prop_assert!((ngram_similarity(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((token_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }
}
