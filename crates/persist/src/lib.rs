//! # annoda-persist — WAL-backed durable OEM storage
//!
//! The ANNODA paper's mediator keeps its integrated ANNODA-GML view in
//! memory and re-wraps every source on startup. This crate gives the
//! store a disk life so a restarted server can *warm-start*: it
//! recovers the exact integrated view a crashed process held and serves
//! it immediately, refreshing from the sources in the background
//! instead of on the critical path.
//!
//! Three layers, bottom up:
//!
//! * [`codec`] — a compact canonical binary encoding of [`OemStore`]s
//!   and rooted fragments (no serde; every read bounds-checked).
//! * [`wal`](FsyncPolicy) + snapshots — an append-only log of
//!   checksummed, length-prefixed records plus atomic point-in-time
//!   snapshots; a crash can only ever tear the log's *tail*, which
//!   recovery truncates silently.
//! * [`DurableStore`] — ties them together: mutations are journaled as
//!   [`JournalRecord`]s through one shared `apply` path, so a recovered
//!   store re-encodes byte-for-byte identical to the one that was lost.
//!
//! Refresh deltas come from [`annoda_oem::graph::diff_structured`]:
//! [`sync_root`] journals the minimal path-addressed edits when they
//! provably reconverge, and falls back to journaling the whole fragment
//! when they do not.
//!
//! [`OemStore`]: annoda_oem::OemStore

pub mod codec;
pub mod delta;
pub mod durable;
pub mod error;
pub mod record;
pub mod sharded;
pub mod snapshot;
pub mod wal;

pub use codec::{
    decode_fragment_into, decode_store, encode_fragment, encode_store, write_string, write_varint,
    Reader,
};
pub use delta::{delta_records, sync_root};
pub use durable::{DurableStore, PersistStats, RecoveryReport};
pub use error::PersistError;
pub use record::{apply, JournalRecord, SourceEventKind};
pub use sharded::{ShardedDurableStore, SHARDS_META};
pub use snapshot::SnapshotMeta;
pub use wal::{crc32, read_tail, FsyncPolicy, TailRead, WAL_HEADER_LEN};
