//! Segment-addressed sharded durability: one [`DurableStore`] per shard.
//!
//! The sharded OEM store ([`annoda_oem::shard::ShardedStore`]) swaps
//! shards independently, so its durability must be segment-addressed
//! too: each shard journals into its own `shard-NNN/` subdirectory
//! (its own crc32-framed WAL + snapshot generations, reusing the
//! existing codec and recovery machinery verbatim), and a commit that
//! touches two shards writes exactly two WAL segments. A `shards.meta`
//! manifest pins the shard count so a restart cannot silently re-route
//! keys across a different partition layout.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use annoda_oem::{IoFailure, OemStore, Oid};

use crate::delta::sync_root;
use crate::durable::{DurableStore, PersistStats};
use crate::error::PersistError;
use crate::wal::FsyncPolicy;

/// Name of the shard-layout manifest inside the store directory.
pub const SHARDS_META: &str = "shards.meta";

fn io_err(op: &'static str, path: &Path, err: std::io::Error) -> PersistError {
    PersistError::Io(IoFailure::new(op, path, &err))
}

fn shard_dir(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("shard-{idx:03}"))
}

fn write_manifest(dir: &Path, shards: usize) -> Result<(), PersistError> {
    let tmp = dir.join("shards.meta.tmp");
    let body = format!("annoda-shards v1\nshards={shards}\n");
    let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
    f.write_all(body.as_bytes())
        .map_err(|e| io_err("write", &tmp, e))?;
    f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
    let dst = dir.join(SHARDS_META);
    fs::rename(&tmp, &dst).map_err(|e| io_err("rename", &dst, e))?;
    Ok(())
}

fn read_manifest(dir: &Path) -> Result<Option<usize>, PersistError> {
    let path = dir.join(SHARDS_META);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read", &path, e)),
    };
    let mut lines = text.lines();
    if lines.next() != Some("annoda-shards v1") {
        return Err(PersistError::Corrupt {
            what: "shards.meta",
            offset: 0,
            reason: "bad manifest header".to_string(),
        });
    }
    let shards = lines
        .next()
        .and_then(|l| l.strip_prefix("shards="))
        .and_then(|n| n.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .ok_or(PersistError::Corrupt {
            what: "shards.meta",
            offset: 0,
            reason: "bad shard count".to_string(),
        })?;
    Ok(Some(shards))
}

/// A fixed-width vector of independently journaled [`DurableStore`]s.
///
/// Shard `i` of the in-memory [`ShardedStore`] persists under
/// `dir/shard-00i/`; its WAL segment and snapshot generation advance
/// only when that shard commits. Recovery opens every segment with the
/// standard torn-tail-tolerant path and hands back the per-shard GML
/// roots for direct reassembly (no re-partitioning on warm start).
///
/// [`ShardedStore`]: annoda_oem::shard::ShardedStore
pub struct ShardedDurableStore {
    dir: PathBuf,
    shards: Vec<DurableStore>,
}

impl ShardedDurableStore {
    /// Opens (or creates) a sharded store of exactly `shards` segments
    /// under `dir`. An existing manifest with a different shard count is
    /// an error: the on-disk partition layout is keyed by the count and
    /// cannot be reinterpreted. Pass `shards = 0` to adopt whatever
    /// count the manifest records (error if the store does not exist).
    pub fn open(dir: &Path, policy: FsyncPolicy, shards: usize) -> Result<Self, PersistError> {
        fs::create_dir_all(dir).map_err(|e| io_err("create_dir_all", dir, e))?;
        let existing = read_manifest(dir)?;
        let count = match (existing, shards) {
            (Some(on_disk), 0) => on_disk,
            (Some(on_disk), want) if on_disk == want => on_disk,
            (Some(on_disk), want) => {
                return Err(PersistError::Corrupt {
                    what: "shards.meta",
                    offset: 0,
                    reason: format!("store has {on_disk} shards, caller wants {want}"),
                });
            }
            (None, 0) => {
                return Err(PersistError::Corrupt {
                    what: "shards.meta",
                    offset: 0,
                    reason: "no manifest and no shard count given".to_string(),
                });
            }
            (None, want) => {
                write_manifest(dir, want)?;
                want
            }
        };
        let mut stores = Vec::with_capacity(count);
        for i in 0..count {
            stores.push(DurableStore::open(&shard_dir(dir, i), policy)?);
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            shards: stores,
        })
    }

    /// Whether a sharded store already exists under `dir`.
    pub fn exists(dir: &Path) -> bool {
        dir.join(SHARDS_META).is_file()
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shard segments.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's durable segment.
    pub fn shard(&self, idx: usize) -> &DurableStore {
        &self.shards[idx]
    }

    /// Mutable access to one shard's durable segment.
    pub fn shard_mut(&mut self, idx: usize) -> &mut DurableStore {
        &mut self.shards[idx]
    }

    /// Journals whatever deltas make shard `idx`'s root `name` match
    /// `target_root` in `target` — the per-shard commit write. Only
    /// this shard's WAL segment grows.
    pub fn sync_shard_root(
        &mut self,
        idx: usize,
        name: &str,
        target: &OemStore,
        target_root: Oid,
    ) -> Result<usize, PersistError> {
        sync_root(&mut self.shards[idx], name, target, target_root)
    }

    /// Per-shard durable stats (generation, WAL bytes, object counts).
    pub fn stats(&self) -> Vec<PersistStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Per-shard snapshot generations — the durable face of the
    /// in-memory epoch vector.
    pub fn generations(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.generation()).collect()
    }

    /// Fsyncs every shard segment.
    pub fn sync_all(&mut self) -> Result<(), PersistError> {
        for s in &mut self.shards {
            s.sync()?;
        }
        Ok(())
    }

    /// Compacts one shard: snapshot + WAL reset for that segment only.
    pub fn snapshot_shard(&mut self, idx: usize) -> Result<(), PersistError> {
        self.shards[idx].snapshot()?;
        Ok(())
    }

    /// Closes every segment, returning final per-shard stats.
    pub fn close(self) -> Result<Vec<PersistStats>, PersistError> {
        let mut out = Vec::with_capacity(self.shards.len());
        for s in self.shards {
            out.push(s.close()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annoda_oem::shard::ShardedStore;

    fn gml(symbols: &[&str]) -> OemStore {
        let mut s = OemStore::new();
        let root = s.new_complex();
        s.set_name("ANNODA-GML", root).unwrap();
        for sym in symbols {
            let g = s.add_complex_child(root, "Gene").unwrap();
            s.add_atomic_child(g, "Symbol", *sym).unwrap();
        }
        s
    }

    #[test]
    fn open_sync_recover_roundtrip() {
        let dir = std::env::temp_dir().join(format!("annoda-sharded-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let flat = gml(&["TP53", "BRCA1", "MDM2", "EGFR"]);
        let sharded = ShardedStore::partition(&flat, "ANNODA-GML", 3).unwrap();
        {
            let mut durable = ShardedDurableStore::open(&dir, FsyncPolicy::OnSnapshot, 3).unwrap();
            for i in 0..3 {
                let store = sharded.shard(i);
                let root = store.named("ANNODA-GML").unwrap();
                durable
                    .sync_shard_root(i, "ANNODA-GML", store, root)
                    .unwrap();
            }
            durable.sync_all().unwrap();
        }
        // Warm reopen adopting the manifest count.
        let recovered = ShardedDurableStore::open(&dir, FsyncPolicy::OnSnapshot, 0).unwrap();
        assert_eq!(recovered.shard_count(), 3);
        for i in 0..3 {
            let want = sharded.shard(i);
            let got = recovered.shard(i).store();
            let (rw, rg) = (
                want.named("ANNODA-GML").unwrap(),
                got.named("ANNODA-GML").unwrap(),
            );
            assert!(annoda_oem::graph::structural_eq(want, rw, got, rg));
        }
        // Mismatched count is refused.
        assert!(ShardedDurableStore::open(&dir, FsyncPolicy::OnSnapshot, 5).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_store_needs_explicit_count() {
        let dir = std::env::temp_dir().join(format!("annoda-sharded-miss-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert!(ShardedDurableStore::open(&dir, FsyncPolicy::OnSnapshot, 0).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
