//! [`DurableStore`] — an [`OemStore`] that survives crashes.
//!
//! The contract: every mutation goes through [`DurableStore::journal`],
//! which applies the record to the in-memory store and *then* appends
//! it to the WAL (an unappliable record never reaches disk). Recovery
//! loads the newest snapshot, replays the WAL suffix through the exact
//! same [`crate::record::apply`], and truncates whatever torn tail the
//! crash left — so the recovered store re-encodes to the same bytes as
//! the store that was lost.
//!
//! Generation numbers guard the snapshot/WAL pair: [`snapshot`] writes
//! the new snapshot (atomic rename) *before* resetting the log, and a
//! crash in between leaves a log whose generation no longer matches —
//! recovery discards it, which is safe because the snapshot already
//! contains everything the old log carried.
//!
//! [`snapshot`]: DurableStore::snapshot

use std::path::{Path, PathBuf};

use annoda_oem::graph::compact;
use annoda_oem::OemStore;

use crate::error::PersistError;
use crate::record::{apply, JournalRecord};
use crate::snapshot::{read_snapshot, write_snapshot, SnapshotMeta};
use crate::wal::{read_tail, scan, FsyncPolicy, TailRead, WalWriter, WAL_HEADER_LEN};

const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";
const WAL_FILE: &str = "wal.log";

/// What recovery found when the store was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded (false on a cold data directory).
    pub snapshot_loaded: bool,
    /// Objects restored from the snapshot.
    pub snapshot_objects: usize,
    /// Journal records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Bytes dropped: the torn WAL tail, or a whole stale log whose
    /// generation no longer matched the snapshot.
    pub truncated_bytes: u64,
    /// Generation the store resumed at.
    pub generation: u64,
}

/// Counters the serving layer exports from `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistStats {
    /// Current snapshot/WAL generation.
    pub generation: u64,
    /// Whether startup restored from a snapshot.
    pub snapshot_loaded: bool,
    /// Records replayed at startup.
    pub replayed_records: u64,
    /// Bytes truncated at startup (torn tail or stale log).
    pub truncated_bytes: u64,
    /// Current WAL file size in bytes.
    pub wal_bytes: u64,
    /// Records journaled since open.
    pub appended_records: u64,
    /// Payload + framing bytes journaled since open.
    pub appended_bytes: u64,
    /// fsyncs issued since open.
    pub fsyncs: u64,
    /// Snapshots written since open.
    pub snapshots: u64,
}

/// A WAL-backed durable OEM store. See the module docs for the
/// recovery contract.
pub struct DurableStore {
    dir: PathBuf,
    store: OemStore,
    wal: WalWriter,
    policy: FsyncPolicy,
    generation: u64,
    recovery: RecoveryReport,
    appended_records: u64,
    appended_bytes: u64,
    snapshots: u64,
}

impl DurableStore {
    /// Opens (creating if necessary) the data directory `dir`,
    /// recovering whatever a previous process — cleanly shut down or
    /// not — left behind.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> Result<DurableStore, PersistError> {
        std::fs::create_dir_all(dir).map_err(|e| PersistError::io("mkdir", dir, &e))?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);
        // A crash during a snapshot write can leave the tmp file; it
        // was never renamed, so it is dead weight.
        let _ = std::fs::remove_file(dir.join(SNAPSHOT_TMP));

        let mut recovery = RecoveryReport::default();
        let mut store = OemStore::new();
        let mut generation = 0u64;
        if let Some((snap_store, meta)) = read_snapshot(&snap_path)? {
            recovery.snapshot_loaded = true;
            recovery.snapshot_objects = meta.objects;
            store = snap_store;
            generation = meta.generation;
        }

        let scanned = scan(&wal_path)?;
        let wal = match scanned.generation {
            Some(g) if g == generation => {
                let mut offset = crate::wal::WAL_HEADER_LEN;
                for payload in &scanned.records {
                    let record =
                        JournalRecord::decode(payload).map_err(|e| PersistError::Corrupt {
                            what: "wal",
                            offset,
                            reason: format!("checksummed record does not decode: {e}"),
                        })?;
                    apply(&mut store, &record).map_err(|e| PersistError::Corrupt {
                        what: "wal",
                        offset,
                        reason: format!("checksummed record does not apply: {e}"),
                    })?;
                    offset += 8 + payload.len() as u64;
                    recovery.replayed_records += 1;
                }
                recovery.truncated_bytes = scanned.file_len - scanned.valid_len;
                WalWriter::open(&wal_path, scanned.valid_len, policy)?
            }
            Some(_) => {
                // Stale log from before the last snapshot's rename: its
                // records are already inside the snapshot. Discard.
                recovery.truncated_bytes = scanned.file_len;
                WalWriter::create(&wal_path, generation, policy)?
            }
            None => {
                // No log, or one torn inside its own header.
                recovery.truncated_bytes = scanned.file_len;
                WalWriter::create(&wal_path, generation, policy)?
            }
        };
        recovery.generation = generation;
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            store,
            wal,
            policy,
            generation,
            recovery,
            appended_records: 0,
            appended_bytes: 0,
            snapshots: 0,
        })
    }

    /// The recovered/live store. All mutation goes through
    /// [`DurableStore::journal`]; readers may borrow freely.
    pub fn store(&self) -> &OemStore {
        &self.store
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The data directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fsync policy appends run under.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Applies `record` to the in-memory store, then appends it to the
    /// WAL. If the record cannot be applied nothing reaches disk.
    pub fn journal(&mut self, record: &JournalRecord) -> Result<(), PersistError> {
        apply(&mut self.store, record)?;
        let bytes = self.wal.append(&record.encode())?;
        self.appended_records += 1;
        self.appended_bytes += bytes;
        Ok(())
    }

    /// Applies an already-encoded record and appends the *original*
    /// bytes — not a re-encoding — so a replica's log stays
    /// byte-identical to the leader log it is shipped from (its own
    /// file length then doubles as its replication position). Returns
    /// the decoded record so the caller can mirror side effects.
    pub fn journal_raw(&mut self, payload: &[u8]) -> Result<JournalRecord, PersistError> {
        let record = JournalRecord::decode(payload)?;
        apply(&mut self.store, &record)?;
        let bytes = self.wal.append(payload)?;
        self.appended_records += 1;
        self.appended_bytes += bytes;
        Ok(record)
    }

    /// The current snapshot/WAL generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The end of the WAL in bytes — the position a subscriber caught
    /// up to this instant would hold.
    pub fn wal_offset(&self) -> u64 {
        self.wal.len()
    }

    /// The byte offset of the first WAL frame — where a subscriber
    /// starts replaying after a state transfer.
    pub fn wal_base_offset() -> u64 {
        WAL_HEADER_LEN
    }

    /// Reads complete WAL records starting at `from_offset` (bounded by
    /// `max_bytes` of frames, always at least one record when
    /// available). `Ok(None)` when `generation` is not the current one
    /// or `from_offset` is not a frame boundary — the reader needs a
    /// full state transfer, not a tail.
    pub fn read_tail(
        &self,
        generation: u64,
        from_offset: u64,
        max_bytes: u64,
    ) -> Result<Option<TailRead>, PersistError> {
        if generation != self.generation {
            return Ok(None);
        }
        let tail = read_tail(&self.dir.join(WAL_FILE), from_offset, max_bytes)?;
        // `scan` sees whatever reached the file; records appended but
        // not yet flushed by the OS are still visible to same-host
        // reads, so the tail never trails self.wal.len() here — but a
        // reader must never be handed frames past what this writer
        // wrote (a torn in-flight append could otherwise leak).
        Ok(tail.filter(|t| t.next_offset <= self.wal.len()))
    }

    /// The base state a new subscriber must install before replaying
    /// this store's WAL: the on-disk snapshot of the current
    /// generation, or an empty store when no snapshot has ever been
    /// written (generation 0 — the WAL then carries everything).
    pub fn base_snapshot(&self) -> Result<(OemStore, u64), PersistError> {
        match read_snapshot(&self.dir.join(SNAPSHOT_FILE))? {
            Some((store, meta)) if meta.generation == self.generation => {
                Ok((store, self.generation))
            }
            Some((_, meta)) => Err(PersistError::Corrupt {
                what: "snapshot",
                offset: 0,
                reason: format!(
                    "snapshot generation {} does not match live generation {}",
                    meta.generation, self.generation
                ),
            }),
            None if self.generation == 0 => Ok((OemStore::new(), 0)),
            None => Err(PersistError::Corrupt {
                what: "snapshot",
                offset: 0,
                reason: format!("generation {} has no snapshot file", self.generation),
            }),
        }
    }

    /// Replaces this store's entire state with a transferred base
    /// snapshot: writes it durably (atomic rename), adopts it in
    /// memory, and resets the WAL at `generation`. Everything the
    /// store previously held is discarded — this is the receiving end
    /// of a replication bootstrap.
    pub fn install_snapshot(
        &mut self,
        store: OemStore,
        generation: u64,
    ) -> Result<(), PersistError> {
        write_snapshot(
            &self.dir.join(SNAPSHOT_FILE),
            &self.dir.join(SNAPSHOT_TMP),
            &store,
            generation,
        )?;
        self.store = store;
        self.generation = generation;
        let fsyncs_so_far = self.wal.fsyncs;
        self.wal = WalWriter::create(&self.dir.join(WAL_FILE), generation, self.policy)?;
        self.wal.fsyncs += fsyncs_so_far;
        self.snapshots += 1;
        Ok(())
    }

    /// Clean shutdown: forces any records still waiting on a batched
    /// fsync to disk and returns the final counters. Dropping the
    /// store performs the same flush best-effort; `close` exists so
    /// callers can observe the error (and tests the counter).
    pub fn close(mut self) -> Result<PersistStats, PersistError> {
        if self.wal.pending_sync() {
            self.wal.sync()?;
        }
        Ok(self.stats())
    }

    /// Forces all appended records to disk regardless of policy.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.wal.sync()
    }

    /// Writes a point-in-time snapshot and truncates the log.
    ///
    /// The store is first compacted around its named roots (journal
    /// garbage — replaced roots, removed children — is dropped), then
    /// written under the next generation; only after the snapshot is
    /// durably renamed into place is the WAL reset. Returns the new
    /// snapshot's metadata.
    pub fn snapshot(&mut self) -> Result<SnapshotMeta, PersistError> {
        let names: Vec<String> = self.store.names().map(|(n, _)| n.to_string()).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let (compacted, _remap) = compact(&self.store, &name_refs);
        self.store = compacted;
        self.generation += 1;
        let bytes = write_snapshot(
            &self.dir.join(SNAPSHOT_FILE),
            &self.dir.join(SNAPSHOT_TMP),
            &self.store,
            self.generation,
        )?;
        let fsyncs_so_far = self.wal.fsyncs;
        self.wal = WalWriter::create(&self.dir.join(WAL_FILE), self.generation, self.policy)?;
        self.wal.fsyncs += fsyncs_so_far;
        self.snapshots += 1;
        Ok(SnapshotMeta {
            generation: self.generation,
            objects: self.store.len(),
            bytes,
        })
    }

    /// Counters for `/metrics`.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            generation: self.generation,
            snapshot_loaded: self.recovery.snapshot_loaded,
            replayed_records: self.recovery.replayed_records,
            truncated_bytes: self.recovery.truncated_bytes,
            wal_bytes: self.wal.len(),
            appended_records: self.appended_records,
            appended_bytes: self.appended_bytes,
            fsyncs: self.wal.fsyncs,
            snapshots: self.snapshots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_fragment, encode_store};
    use crate::record::SourceEventKind;
    use annoda_oem::AtomicValue;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("annoda-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn put_gml(symbols: &[&str]) -> JournalRecord {
        let mut src = OemStore::new();
        let root = src.new_complex();
        for s in symbols {
            let g = src.add_complex_child(root, "Gene").unwrap();
            src.add_atomic_child(g, "Symbol", *s).unwrap();
        }
        JournalRecord::PutRoot {
            name: "GML".into(),
            fragment: encode_fragment(&src, root),
        }
    }

    #[test]
    fn cold_open_journal_reopen_is_byte_identical() {
        let dir = tmp_dir("cold");
        let mut d = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert!(!d.recovery().snapshot_loaded);
        assert_eq!(d.recovery().replayed_records, 0);
        d.journal(&put_gml(&["TP53", "BRCA1"])).unwrap();
        d.journal(&JournalRecord::SourceEvent {
            kind: SourceEventKind::Refresh,
            name: "genbank".into(),
        })
        .unwrap();
        let live = encode_store(d.store());
        drop(d); // no snapshot, no clean shutdown step

        let d2 = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(d2.recovery().replayed_records, 2);
        assert_eq!(encode_store(d2.store()), live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_log_and_reopens_without_replay() {
        let dir = tmp_dir("snap");
        let mut d = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        d.journal(&put_gml(&["TP53"])).unwrap();
        d.journal(&put_gml(&["TP53", "KRAS"])).unwrap(); // first root becomes garbage
        let wal_before = d.stats().wal_bytes;
        let meta = d.snapshot().unwrap();
        assert_eq!(meta.generation, 1);
        assert!(d.stats().wal_bytes < wal_before, "log truncated");
        let live = encode_store(d.store());
        drop(d);

        let d2 = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert!(d2.recovery().snapshot_loaded);
        assert_eq!(d2.recovery().replayed_records, 0);
        assert_eq!(d2.recovery().generation, 1);
        assert_eq!(encode_store(d2.store()), live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_plus_suffix_replays_only_the_suffix() {
        let dir = tmp_dir("suffix");
        let mut d = DurableStore::open(&dir, FsyncPolicy::Batched(2)).unwrap();
        d.journal(&put_gml(&["TP53"])).unwrap();
        d.snapshot().unwrap();
        d.journal(&put_gml(&["TP53", "KRAS"])).unwrap();
        d.sync().unwrap();
        let live = encode_store(d.store());
        drop(d);

        let d2 = DurableStore::open(&dir, FsyncPolicy::Batched(2)).unwrap();
        assert!(d2.recovery().snapshot_loaded);
        assert_eq!(d2.recovery().replayed_records, 1);
        assert_eq!(encode_store(d2.store()), live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_log_after_snapshot_rename_is_discarded() {
        let dir = tmp_dir("stale");
        let mut d = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        d.journal(&put_gml(&["TP53"])).unwrap();
        let wal_copy = std::fs::read(dir.join("wal.log")).unwrap();
        d.snapshot().unwrap();
        let live = encode_store(d.store());
        drop(d);
        // Simulate the crash window: snapshot renamed, log not yet
        // reset — the pre-snapshot log (old generation) reappears.
        std::fs::write(dir.join("wal.log"), &wal_copy).unwrap();

        let d2 = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(d2.recovery().replayed_records, 0, "stale log not replayed");
        assert_eq!(d2.recovery().truncated_bytes, wal_copy.len() as u64);
        assert_eq!(
            encode_store(d2.store()),
            live,
            "snapshot already had the records"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unappliable_record_never_reaches_disk() {
        let dir = tmp_dir("noop");
        let mut d = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        let before = d.stats();
        let err = d.journal(&JournalRecord::DropRoot {
            name: "ghost".into(),
        });
        assert!(matches!(err, Err(PersistError::Apply { .. })));
        assert_eq!(d.stats().wal_bytes, before.wal_bytes);
        assert_eq!(d.stats().appended_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_fsync_flushes_on_clean_shutdown_below_threshold() {
        // Regression: under Batched(n), a clean shutdown after fewer
        // than n appends used to leave the tail in page cache only —
        // no fsync between the last batch boundary and process exit.
        let dir = tmp_dir("drainfsync");
        let d = DurableStore::open(&dir, FsyncPolicy::Batched(1000)).unwrap();
        let open_fsyncs = d.stats().fsyncs; // header fsync from create
        drop(d);

        let mut d = DurableStore::open(&dir, FsyncPolicy::Batched(1000)).unwrap();
        d.journal(&put_gml(&["TP53"])).unwrap();
        d.journal(&put_gml(&["TP53", "KRAS"])).unwrap();
        let before_close = d.stats().fsyncs;
        let final_stats = d.close().unwrap();
        assert_eq!(
            final_stats.fsyncs,
            before_close + 1,
            "close() must flush the sub-threshold batch"
        );
        assert_eq!(final_stats.appended_records, 2);

        // An already-synced store closes without a redundant fsync.
        let mut d = DurableStore::open(&dir, FsyncPolicy::Batched(1000)).unwrap();
        d.journal(&put_gml(&["BRCA1"])).unwrap();
        d.sync().unwrap();
        let before_close = d.stats().fsyncs;
        assert_eq!(d.close().unwrap().fsyncs, before_close);

        // And the records are genuinely on disk for the next open.
        let d = DurableStore::open(&dir, FsyncPolicy::Batched(1000)).unwrap();
        assert_eq!(d.recovery().replayed_records, 3);
        let _ = open_fsyncs;
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_raw_replays_leader_bytes_identically() {
        let leader_dir = tmp_dir("rawleader");
        let follower_dir = tmp_dir("rawfollower");
        let mut leader = DurableStore::open(&leader_dir, FsyncPolicy::Always).unwrap();
        leader.journal(&put_gml(&["TP53"])).unwrap();
        leader.journal(&put_gml(&["TP53", "KRAS"])).unwrap();
        leader
            .journal(&JournalRecord::SourceEvent {
                kind: SourceEventKind::Unplug,
                name: "OMIM".into(),
            })
            .unwrap();

        let mut follower = DurableStore::open(&follower_dir, FsyncPolicy::Always).unwrap();
        let (base, generation) = leader.base_snapshot().unwrap();
        follower.install_snapshot(base, generation).unwrap();
        assert_eq!(follower.wal_offset(), DurableStore::wal_base_offset());
        let tail = leader
            .read_tail(generation, DurableStore::wal_base_offset(), u64::MAX)
            .unwrap()
            .expect("aligned");
        for payload in &tail.records {
            follower.journal_raw(payload).unwrap();
        }
        assert_eq!(follower.wal_offset(), leader.wal_offset());
        assert_eq!(encode_store(follower.store()), encode_store(leader.store()));
        assert_eq!(
            std::fs::read(leader_dir.join("wal.log")).unwrap(),
            std::fs::read(follower_dir.join("wal.log")).unwrap(),
            "replicated log is byte-identical"
        );
        let _ = std::fs::remove_dir_all(&leader_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }

    #[test]
    fn read_tail_refuses_other_generations_and_base_snapshot_tracks() {
        let dir = tmp_dir("tailgen");
        let mut d = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        d.journal(&put_gml(&["TP53"])).unwrap();
        // Generation 0: no snapshot file yet, base is the empty store.
        let (base, generation) = d.base_snapshot().unwrap();
        assert_eq!(generation, 0);
        assert_eq!(base.len(), 0);
        assert!(d
            .read_tail(1, DurableStore::wal_base_offset(), u64::MAX)
            .unwrap()
            .is_none());

        d.snapshot().unwrap();
        d.journal(&put_gml(&["TP53", "KRAS"])).unwrap();
        let (base, generation) = d.base_snapshot().unwrap();
        assert_eq!(generation, 1);
        assert!(!base.is_empty());
        // The old generation's offsets are meaningless now.
        assert!(d
            .read_tail(0, DurableStore::wal_base_offset(), u64::MAX)
            .unwrap()
            .is_none());
        let tail = d
            .read_tail(1, DurableStore::wal_base_offset(), u64::MAX)
            .unwrap()
            .unwrap();
        assert_eq!(tail.records.len(), 1, "only the post-snapshot suffix");
        assert_eq!(tail.next_offset, d.wal_offset());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn set_value_at_survives_snapshot_compaction() {
        // Snapshots renumber oids; positional paths must keep working.
        let dir = tmp_dir("compacted-paths");
        let mut d = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        d.journal(&put_gml(&["TP53", "BRCA1"])).unwrap();
        d.snapshot().unwrap();
        d.journal(&JournalRecord::SetValueAt {
            root: "GML".into(),
            path: vec![
                annoda_oem::PathSeg {
                    label: "Gene".into(),
                    index: 1,
                },
                annoda_oem::PathSeg {
                    label: "Symbol".into(),
                    index: 0,
                },
            ],
            value: AtomicValue::Str("BRCA2".into()),
        })
        .unwrap();
        let live = encode_store(d.store());
        drop(d);
        let d2 = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(encode_store(d2.store()), live);
        let root = d2.store().named("GML").unwrap();
        let g1 = d2.store().children(root, "Gene").nth(1).unwrap();
        assert_eq!(
            d2.store().child_value(g1, "Symbol"),
            Some(&AtomicValue::Str("BRCA2".into()))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
