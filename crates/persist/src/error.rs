//! The persistence error type.
//!
//! Filesystem failures reuse [`IoFailure`] — the structured payload of
//! [`OemError::Io`] — so the whole stack reports disk trouble in one
//! shape; corruption and codec trouble get their own variants because a
//! caller recovering a data directory wants to branch on them.

use std::fmt;

use annoda_oem::{IoFailure, OemError};

/// Errors raised by the durable store, its codec, and recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// A filesystem operation failed.
    Io(IoFailure),
    /// On-disk bytes that passed framing but cannot be trusted: a bad
    /// magic number, an unsupported version, a checksummed record that
    /// does not decode, or a snapshot whose checksum does not match.
    /// (A torn WAL *tail* is never an error — recovery truncates it.)
    Corrupt {
        /// Which artifact is corrupt (`"wal"`, `"snapshot"`, ...).
        what: &'static str,
        /// Byte offset of the trouble within the artifact.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// A value failed to encode or decode (codec-level, not framing).
    Codec {
        /// What was wrong.
        reason: String,
    },
    /// A journal record could not be applied to the store (e.g. its
    /// path no longer resolves).
    Apply {
        /// What was wrong.
        reason: String,
    },
    /// An underlying store operation failed.
    Store(OemError),
}

impl PersistError {
    pub(crate) fn codec(reason: impl Into<String>) -> Self {
        PersistError::Codec {
            reason: reason.into(),
        }
    }

    pub(crate) fn apply(reason: impl Into<String>) -> Self {
        PersistError::Apply {
            reason: reason.into(),
        }
    }

    pub(crate) fn io(op: &'static str, path: &std::path::Path, e: &std::io::Error) -> Self {
        PersistError::Io(IoFailure::new(op, path, e))
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(failure) => write!(f, "io error: {failure}"),
            PersistError::Corrupt {
                what,
                offset,
                reason,
            } => write!(f, "corrupt {what} at byte {offset}: {reason}"),
            PersistError::Codec { reason } => write!(f, "codec error: {reason}"),
            PersistError::Apply { reason } => write!(f, "cannot apply journal record: {reason}"),
            PersistError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<OemError> for PersistError {
    fn from(e: OemError) -> Self {
        // Disk trouble surfaced through the store keeps its structured
        // payload instead of being double-wrapped.
        match e {
            OemError::Io(failure) => PersistError::Io(failure),
            other => PersistError::Store(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_location() {
        let e = PersistError::Corrupt {
            what: "wal",
            offset: 42,
            reason: "bad checksum".into(),
        };
        let text = e.to_string();
        assert!(text.contains("wal"), "{text}");
        assert!(text.contains("42"), "{text}");
    }

    #[test]
    fn oem_io_errors_keep_their_structure() {
        let os = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied");
        let oem = OemError::Io(IoFailure::new("write", std::path::Path::new("/p"), &os));
        match PersistError::from(oem) {
            PersistError::Io(f) => assert_eq!(f.kind, std::io::ErrorKind::PermissionDenied),
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
