//! The append-only write-ahead log.
//!
//! File layout:
//!
//! ```text
//! "AWAL"  u8 version  u64-LE generation          <- 13-byte header
//! [u32-LE len][u32-LE crc32(payload)][payload]   <- frame, repeated
//! ```
//!
//! The generation number ties the log to the snapshot it extends; a log
//! whose generation does not match the snapshot's is stale (the process
//! died between snapshot rename and log reset) and its records are
//! discarded rather than replayed against the wrong base.
//!
//! [`scan`] is deliberately forgiving about the *tail*: a partial
//! header, a partial frame, or a frame whose checksum fails marks the
//! end of the valid prefix — that is what a crash mid-write looks like,
//! and recovery truncates there. Corruption *before* the tail cannot be
//! distinguished from a torn tail by the scanner, so the same rule
//! applies: replay stops at the first bad frame. Only a damaged header
//! (bad magic or version) is a hard [`PersistError::Corrupt`].

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::PersistError;

const WAL_MAGIC: &[u8; 4] = b"AWAL";
const WAL_VERSION: u8 = 1;
/// magic + version + generation — also the offset of the first frame,
/// which is where a replication subscriber starts after a state
/// transfer.
pub const WAL_HEADER_LEN: u64 = 13;
/// Frames above this are assumed to be garbage lengths from a torn
/// write, not real records.
const MAX_FRAME: u32 = 1 << 30;

/// When the journal forces bytes to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record — maximum durability.
    Always,
    /// `fsync` once every `n` appended records.
    Batched(u32),
    /// Never `fsync` on append; only snapshots force data down. The
    /// fastest option: a crash may lose records since the last
    /// snapshot, but never corrupts what recovery can read.
    OnSnapshot,
}

impl FsyncPolicy {
    /// Parses `"always"`, `"batched:N"`, or `"onsnapshot"`.
    pub fn parse(text: &str) -> Option<FsyncPolicy> {
        match text {
            "always" => Some(FsyncPolicy::Always),
            "onsnapshot" => Some(FsyncPolicy::OnSnapshot),
            _ => {
                let n = text.strip_prefix("batched:")?.parse::<u32>().ok()?;
                if n == 0 {
                    None
                } else {
                    Some(FsyncPolicy::Batched(n))
                }
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Batched(n) => write!(f, "batched:{n}"),
            FsyncPolicy::OnSnapshot => write!(f, "onsnapshot"),
        }
    }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib polynomial), table built at compile time.

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// IEEE CRC-32 over `bytes` — the WAL's and the federation wire
/// protocol's shared frame checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// scanning

/// Everything a recovery pass learns from one read of the log file.
#[derive(Debug)]
pub(crate) struct WalScan {
    /// Generation from the header; `None` when the header itself is
    /// torn (file shorter than 13 bytes — treated as an empty log).
    pub generation: Option<u64>,
    /// Decoded record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Length of the valid prefix; bytes past this are torn.
    pub valid_len: u64,
    /// File length on disk (so `truncated = file_len - valid_len`).
    pub file_len: u64,
}

/// Reads and frames the whole log. Never errors on a torn tail; errors
/// only on unreadable files or a well-formed header with wrong
/// magic/version.
pub(crate) fn scan(path: &Path) -> Result<WalScan, PersistError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                generation: None,
                records: Vec::new(),
                valid_len: 0,
                file_len: 0,
            })
        }
        Err(e) => return Err(PersistError::io("read", path, &e)),
    };
    let file_len = bytes.len() as u64;
    if file_len < WAL_HEADER_LEN {
        // Crash while writing the very first header: nothing usable.
        return Ok(WalScan {
            generation: None,
            records: Vec::new(),
            valid_len: 0,
            file_len,
        });
    }
    if &bytes[..4] != WAL_MAGIC {
        return Err(PersistError::Corrupt {
            what: "wal",
            offset: 0,
            reason: "bad magic".into(),
        });
    }
    if bytes[4] != WAL_VERSION {
        return Err(PersistError::Corrupt {
            what: "wal",
            offset: 4,
            reason: format!("unsupported version {}", bytes[4]),
        });
    }
    let generation = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes"));
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            break; // torn frame header (or clean EOF)
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_FRAME || rest.len() < 8 + len as usize {
            break; // torn payload
        }
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != crc {
            break; // torn or flipped bytes — stop replaying here
        }
        records.push(payload.to_vec());
        pos += 8 + len as usize;
    }
    Ok(WalScan {
        generation: Some(generation),
        records,
        valid_len: pos as u64,
        file_len,
    })
}

// ---------------------------------------------------------------------
// tailing

/// One bounded read of the log's tail, for replication. Offsets are
/// byte positions in the log file; every value handed out
/// (`next_offset`, `end_offset`) is a frame boundary, so feeding a
/// returned offset back in always succeeds.
#[derive(Debug, Clone)]
pub struct TailRead {
    /// Generation from the log header.
    pub generation: u64,
    /// Record payloads in `[from_offset, next_offset)`, append order.
    pub records: Vec<Vec<u8>>,
    /// Where the next tail read should start.
    pub next_offset: u64,
    /// End of the valid prefix at scan time (`next_offset ==
    /// end_offset` means the reader is caught up).
    pub end_offset: u64,
    /// Complete records between `next_offset` and `end_offset` that
    /// did not fit under the byte budget — the reader's lag in records.
    pub remaining_records: u64,
}

/// Reads complete frames starting at `from_offset`, stopping after
/// `max_bytes` of payload+framing (always returning at least one
/// record when one is available). Returns `Ok(None)` when
/// `from_offset` is not a frame boundary of the current log — the
/// caller's position is from another log (or another generation's
/// layout) and only a full state transfer can resynchronise it.
///
/// A torn tail past the valid prefix is invisible here, exactly as in
/// [`scan`]: the valid prefix ends at the last frame whose checksum
/// holds.
pub fn read_tail(
    path: &Path,
    from_offset: u64,
    max_bytes: u64,
) -> Result<Option<TailRead>, PersistError> {
    let scanned = scan(path)?;
    let generation = match scanned.generation {
        Some(g) => g,
        None => return Ok(None), // no log yet: no boundary to resume at
    };
    if from_offset < WAL_HEADER_LEN || from_offset > scanned.valid_len {
        return Ok(None);
    }
    // Walk the frame boundaries to check alignment; `scan` already
    // verified every frame in the valid prefix.
    let mut pos = WAL_HEADER_LEN;
    let mut first = 0usize;
    while pos < from_offset {
        match scanned.records.get(first) {
            Some(r) => pos += 8 + r.len() as u64,
            None => break,
        }
        first += 1;
    }
    if pos != from_offset {
        return Ok(None); // inside a frame: misaligned resume position
    }
    let mut records = Vec::new();
    let mut next_offset = from_offset;
    let mut budget = 0u64;
    let mut idx = first;
    while idx < scanned.records.len() {
        let frame = 8 + scanned.records[idx].len() as u64;
        if !records.is_empty() && budget + frame > max_bytes {
            break;
        }
        records.push(scanned.records[idx].clone());
        next_offset += frame;
        budget += frame;
        idx += 1;
    }
    Ok(Some(TailRead {
        generation,
        records,
        next_offset,
        end_offset: scanned.valid_len,
        remaining_records: (scanned.records.len() - idx) as u64,
    }))
}

// ---------------------------------------------------------------------
// writing

/// Appends checksummed frames to the log, applying the fsync policy.
pub(crate) struct WalWriter {
    file: File,
    path: PathBuf,
    len: u64,
    policy: FsyncPolicy,
    since_sync: u32,
    /// fsyncs issued (for stats).
    pub fsyncs: u64,
}

impl WalWriter {
    /// Creates (or truncates) the log with a fresh header.
    pub(crate) fn create(
        path: &Path,
        generation: u64,
        policy: FsyncPolicy,
    ) -> Result<Self, PersistError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| PersistError::io("create", path, &e))?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        header.push(WAL_VERSION);
        header.extend_from_slice(&generation.to_le_bytes());
        file.write_all(&header)
            .map_err(|e| PersistError::io("write", path, &e))?;
        file.sync_all()
            .map_err(|e| PersistError::io("fsync", path, &e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            len: WAL_HEADER_LEN,
            policy,
            since_sync: 0,
            fsyncs: 1,
        })
    }

    /// Opens an existing log for appending, first truncating it to
    /// `valid_len` (discarding any torn tail found by [`scan`]).
    pub(crate) fn open(
        path: &Path,
        valid_len: u64,
        policy: FsyncPolicy,
    ) -> Result<Self, PersistError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| PersistError::io("open", path, &e))?;
        file.set_len(valid_len)
            .map_err(|e| PersistError::io("truncate", path, &e))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| PersistError::io("seek", path, &e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            len: valid_len,
            policy,
            since_sync: 0,
            fsyncs: 0,
        })
    }

    /// Appends one framed record; returns the frame's size in bytes.
    pub(crate) fn append(&mut self, payload: &[u8]) -> Result<u64, PersistError> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| PersistError::io("append", &self.path, &e))?;
        self.len += frame.len() as u64;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Batched(n) => {
                self.since_sync += 1;
                if self.since_sync >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::OnSnapshot => {}
        }
        Ok(frame.len() as u64)
    }

    /// Forces everything appended so far to disk.
    pub(crate) fn sync(&mut self) -> Result<(), PersistError> {
        self.file
            .sync_all()
            .map_err(|e| PersistError::io("fsync", &self.path, &e))?;
        self.since_sync = 0;
        self.fsyncs += 1;
        Ok(())
    }

    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    /// Whether appended records are still waiting for a batched fsync.
    pub(crate) fn pending_sync(&self) -> bool {
        self.since_sync > 0
    }
}

impl Drop for WalWriter {
    /// Clean-shutdown flush: under `Batched(n)` a drop below the batch
    /// threshold used to leave the last records in page cache only.
    /// Errors cannot propagate from a destructor — callers who need
    /// them use [`crate::DurableStore::close`].
    fn drop(&mut self) {
        if self.since_sync > 0 {
            let _ = self.file.sync_all();
        }
    }
}

/// Best-effort directory fsync so renames and creates are durable on
/// filesystems that need it. Failure is ignored: some platforms refuse
/// to open directories for writing, and the data fsyncs still stand.
pub(crate) fn fsync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(path: &Path) -> Vec<u8> {
        std::fs::read(path).unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("annoda-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(
            FsyncPolicy::parse("onsnapshot"),
            Some(FsyncPolicy::OnSnapshot)
        );
        assert_eq!(
            FsyncPolicy::parse("batched:8"),
            Some(FsyncPolicy::Batched(8))
        );
        assert_eq!(FsyncPolicy::parse("batched:0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::Batched(8).to_string(), "batched:8");
    }

    #[test]
    fn append_then_scan_round_trips() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 7, FsyncPolicy::Always).unwrap();
        w.append(b"first").unwrap();
        w.append(b"").unwrap();
        w.append(b"third record").unwrap();
        let scan = scan(&path).unwrap();
        assert_eq!(scan.generation, Some(7));
        assert_eq!(
            scan.records,
            vec![b"first".to_vec(), Vec::new(), b"third record".to_vec()]
        );
        assert_eq!(scan.valid_len, scan.file_len);
        assert_eq!(scan.valid_len, w.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_recovers_a_prefix() {
        let dir = tmp_dir("trunc");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 1, FsyncPolicy::OnSnapshot).unwrap();
        let mut boundaries = vec![w.len()];
        for payload in [&b"aa"[..], b"bbbb", b"cccccc"] {
            w.append(payload).unwrap();
            boundaries.push(w.len());
        }
        w.sync().unwrap();
        let full = read_all(&path);
        for cut in 0..=full.len() {
            let torn = dir.join("torn.log");
            std::fs::write(&torn, &full[..cut]).unwrap();
            let scan = scan(&torn).unwrap();
            // Number of complete frames before the cut.
            // Cuts inside the header leave zero frames; otherwise the
            // frames whose end boundary fits before the cut survive.
            let expect = boundaries
                .iter()
                .filter(|&&b| b <= cut as u64)
                .count()
                .saturating_sub(1);
            assert_eq!(scan.records.len(), expect, "cut at {cut}");
            assert!(scan.valid_len <= cut as u64);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_stops_replay_without_error() {
        let dir = tmp_dir("flip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 1, FsyncPolicy::Always).unwrap();
        w.append(b"good one").unwrap();
        let boundary = w.len();
        w.append(b"about to be damaged").unwrap();
        let mut bytes = read_all(&path);
        let n = bytes.len();
        bytes[n - 3] ^= 0x40; // inside the second payload
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan(&path).unwrap();
        assert_eq!(scan.records, vec![b"good one".to_vec()]);
        assert_eq!(scan.valid_len, boundary);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_is_a_hard_error() {
        let dir = tmp_dir("magic");
        let path = dir.join("wal.log");
        std::fs::write(&path, b"NOPE\x01\0\0\0\0\0\0\0\0extra").unwrap();
        assert!(matches!(
            scan(&path),
            Err(PersistError::Corrupt { what: "wal", .. })
        ));
        // But a file too short to even hold a header is a torn header,
        // not corruption.
        std::fs::write(&path, b"AW").unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.generation, None);
        assert_eq!(s.valid_len, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_reads_resume_at_every_boundary() {
        let dir = tmp_dir("tail");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 5, FsyncPolicy::Always).unwrap();
        let payloads: Vec<&[u8]> = vec![b"aa", b"bbbb", b"", b"cccccc"];
        let mut boundaries = vec![w.len()];
        for p in &payloads {
            w.append(p).unwrap();
            boundaries.push(w.len());
        }
        let end = w.len();
        for (i, &b) in boundaries.iter().enumerate() {
            let tail = read_tail(&path, b, u64::MAX).unwrap().expect("aligned");
            assert_eq!(tail.generation, 5);
            assert_eq!(tail.next_offset, end);
            assert_eq!(tail.end_offset, end);
            assert_eq!(tail.remaining_records, 0);
            let want: Vec<Vec<u8>> = payloads[i..].iter().map(|p| p.to_vec()).collect();
            assert_eq!(tail.records, want, "resume at boundary {b}");
        }
        // Misaligned offsets are refused, not misread.
        for off in [0u64, WAL_HEADER_LEN + 1, boundaries[1] - 1, end + 1] {
            assert!(read_tail(&path, off, u64::MAX).unwrap().is_none(), "{off}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_read_honours_byte_budget_and_counts_remainder() {
        let dir = tmp_dir("tailbudget");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 1, FsyncPolicy::Always).unwrap();
        for p in [&b"0123456789"[..], b"0123456789", b"0123456789"] {
            w.append(p).unwrap();
        }
        // Budget of one frame (8 + 10 bytes): returns exactly one record.
        let tail = read_tail(&path, WAL_HEADER_LEN, 18).unwrap().unwrap();
        assert_eq!(tail.records.len(), 1);
        assert_eq!(tail.remaining_records, 2);
        assert!(tail.next_offset < tail.end_offset);
        // A budget too small for even one frame still makes progress.
        let tail = read_tail(&path, WAL_HEADER_LEN, 1).unwrap().unwrap();
        assert_eq!(tail.records.len(), 1);
        // Chained reads walk to the end.
        let mut pos = WAL_HEADER_LEN;
        let mut got = 0;
        loop {
            let t = read_tail(&path, pos, 18).unwrap().unwrap();
            got += t.records.len();
            pos = t.next_offset;
            if t.next_offset == t.end_offset {
                break;
            }
        }
        assert_eq!(got, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_read_ignores_the_torn_suffix() {
        let dir = tmp_dir("tailtorn");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 2, FsyncPolicy::Always).unwrap();
        w.append(b"whole").unwrap();
        let good = w.len();
        drop(w);
        let mut bytes = read_all(&path);
        bytes.extend_from_slice(&[7, 0, 0, 0, 1]); // torn frame header
        std::fs::write(&path, &bytes).unwrap();
        let tail = read_tail(&path, WAL_HEADER_LEN, u64::MAX).unwrap().unwrap();
        assert_eq!(tail.records, vec![b"whole".to_vec()]);
        assert_eq!(tail.end_offset, good);
        // Resuming exactly at the end of the valid prefix is caught up.
        let tail = read_tail(&path, good, u64::MAX).unwrap().unwrap();
        assert!(tail.records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_truncates_the_torn_tail() {
        let dir = tmp_dir("open");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 3, FsyncPolicy::Always).unwrap();
        w.append(b"keep me").unwrap();
        drop(w);
        // Simulate a torn append.
        let mut bytes = read_all(&path);
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2]); // half a frame header
        std::fs::write(&path, &bytes).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 1);
        assert!(s.file_len > s.valid_len);
        let mut w = WalWriter::open(&path, s.valid_len, FsyncPolicy::Always).unwrap();
        w.append(b"and me").unwrap();
        let s2 = scan(&path).unwrap();
        assert_eq!(s2.records, vec![b"keep me".to_vec(), b"and me".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
