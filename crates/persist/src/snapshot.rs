//! Point-in-time snapshots of the whole store.
//!
//! Layout: `"ASNP" u8 version u64-LE generation u64-LE body_len
//! u32-LE crc32(body) body`, where body is the canonical store encoding
//! from [`crate::codec::encode_store`].
//!
//! Snapshots are written tmp-file → fsync → atomic rename → directory
//! fsync, so a crash at any point leaves either the old snapshot or the
//! new one — never a half-written file under the real name. Unlike the
//! WAL tail, a snapshot that fails its checksum is a hard error: it was
//! renamed into place only after a successful fsync, so damage means
//! the disk lied and silently restarting from empty would lose data.

use std::io::Write;
use std::path::Path;

use annoda_oem::OemStore;

use crate::codec::{decode_store, encode_store};
use crate::error::PersistError;
use crate::wal::{crc32, fsync_dir};

const SNAP_MAGIC: &[u8; 4] = b"ASNP";
const SNAP_VERSION: u8 = 1;
const SNAP_HEADER_LEN: usize = 4 + 1 + 8 + 8 + 4;

/// What a loaded snapshot told us about itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Generation stamped when the snapshot was written; the WAL must
    /// carry the same number to be replayed on top.
    pub generation: u64,
    /// Objects in the snapshotted store.
    pub objects: usize,
    /// Size of the snapshot file in bytes.
    pub bytes: u64,
}

/// Writes `store` as generation `generation`, atomically replacing any
/// snapshot already at `path`. Returns the snapshot file size.
pub(crate) fn write_snapshot(
    path: &Path,
    tmp_path: &Path,
    store: &OemStore,
    generation: u64,
) -> Result<u64, PersistError> {
    let body = encode_store(store);
    let mut bytes = Vec::with_capacity(SNAP_HEADER_LEN + body.len());
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.push(SNAP_VERSION);
    bytes.extend_from_slice(&generation.to_le_bytes());
    bytes.extend_from_slice(&(body.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    bytes.extend_from_slice(&body);

    let mut tmp =
        std::fs::File::create(tmp_path).map_err(|e| PersistError::io("create", tmp_path, &e))?;
    tmp.write_all(&bytes)
        .map_err(|e| PersistError::io("write", tmp_path, &e))?;
    tmp.sync_all()
        .map_err(|e| PersistError::io("fsync", tmp_path, &e))?;
    drop(tmp);
    std::fs::rename(tmp_path, path).map_err(|e| PersistError::io("rename", tmp_path, &e))?;
    if let Some(dir) = path.parent() {
        fsync_dir(dir);
    }
    Ok(bytes.len() as u64)
}

/// Loads the snapshot at `path`; `Ok(None)` when none exists yet.
pub(crate) fn read_snapshot(path: &Path) -> Result<Option<(OemStore, SnapshotMeta)>, PersistError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::io("read", path, &e)),
    };
    if bytes.len() < SNAP_HEADER_LEN {
        return Err(PersistError::Corrupt {
            what: "snapshot",
            offset: 0,
            reason: format!("file too short ({} bytes)", bytes.len()),
        });
    }
    if &bytes[..4] != SNAP_MAGIC {
        return Err(PersistError::Corrupt {
            what: "snapshot",
            offset: 0,
            reason: "bad magic".into(),
        });
    }
    if bytes[4] != SNAP_VERSION {
        return Err(PersistError::Corrupt {
            what: "snapshot",
            offset: 4,
            reason: format!("unsupported version {}", bytes[4]),
        });
    }
    let generation = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes"));
    let body_len = u64::from_le_bytes(bytes[13..21].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[21..25].try_into().expect("4 bytes"));
    let body = &bytes[SNAP_HEADER_LEN..];
    if body.len() != body_len {
        return Err(PersistError::Corrupt {
            what: "snapshot",
            offset: 13,
            reason: format!("body is {} bytes, header promised {body_len}", body.len()),
        });
    }
    if crc32(body) != crc {
        return Err(PersistError::Corrupt {
            what: "snapshot",
            offset: SNAP_HEADER_LEN as u64,
            reason: "checksum mismatch".into(),
        });
    }
    let store = decode_store(body)?;
    let objects = store.len();
    Ok(Some((
        store,
        SnapshotMeta {
            generation,
            objects,
            bytes: bytes.len() as u64,
        },
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("annoda-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> OemStore {
        let mut db = OemStore::new();
        let root = db.new_complex();
        db.add_atomic_child(root, "Symbol", "BRCA2").unwrap();
        db.set_name("R", root).unwrap();
        db
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tmp_dir("rt");
        let path = dir.join("snapshot.bin");
        let db = sample();
        let size = write_snapshot(&path, &dir.join("snapshot.tmp"), &db, 9).unwrap();
        let (back, meta) = read_snapshot(&path).unwrap().unwrap();
        assert_eq!(meta.generation, 9);
        assert_eq!(meta.objects, db.len());
        assert_eq!(meta.bytes, size);
        assert_eq!(encode_store(&back), encode_store(&db));
        assert!(
            !dir.join("snapshot.tmp").exists(),
            "tmp file cleaned by rename"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_snapshot_is_none() {
        let dir = tmp_dir("none");
        assert!(read_snapshot(&dir.join("snapshot.bin")).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_snapshot_is_a_hard_error() {
        let dir = tmp_dir("bad");
        let path = dir.join("snapshot.bin");
        write_snapshot(&path, &dir.join("snapshot.tmp"), &sample(), 1).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(PersistError::Corrupt {
                what: "snapshot",
                ..
            })
        ));
        // Truncation is also a hard error (unlike the WAL tail).
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(read_snapshot(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
