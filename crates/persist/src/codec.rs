//! The compact binary OEM codec — no serde, no external crates.
//!
//! Two encodings share one vocabulary of primitives (LEB128 varints,
//! zigzag integers, length-prefixed strings):
//!
//! * **store** — the whole arena in *canonical* form: a label table in
//!   first-use order, every object in oid order (edges as
//!   `(label-index, target-oid)` pairs), and the named roots in name
//!   order. Canonical means `encode(decode(encode(s))) == encode(s)`,
//!   which is what lets tests assert byte-identical recovery.
//! * **fragment** — one rooted subgraph with local node ids in
//!   deterministic preorder (root is node 0), used inside journal
//!   records. Cycles and sharing survive because nodes are allocated
//!   before edges are wired.
//!
//! Every read is bounds-checked; corrupt input yields
//! [`PersistError::Codec`], never a panic or an oversized allocation.

use std::collections::HashMap;

use annoda_oem::{AtomicValue, ObjectKind, OemStore, Oid};

use crate::error::PersistError;

const STORE_MAGIC: &[u8; 4] = b"AOEM";
const STORE_VERSION: u8 = 1;

/// Hard cap on any single length field, so garbage cannot ask for a
/// multi-gigabyte allocation.
const MAX_LEN: u64 = 1 << 30;

// ---------------------------------------------------------------------
// primitives

/// Appends `v` as an LEB128 varint.
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `s` as a length-prefixed UTF-8 string.
pub fn write_string(buf: &mut Vec<u8>, s: &str) {
    write_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends an [`AtomicValue`] as a tag byte plus payload.
pub fn write_value(buf: &mut Vec<u8>, value: &AtomicValue) {
    match value {
        AtomicValue::Int(v) => {
            buf.push(0);
            write_varint(buf, zigzag(*v));
        }
        AtomicValue::Real(v) => {
            buf.push(1);
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        AtomicValue::Str(s) => {
            buf.push(2);
            write_string(buf, s);
        }
        AtomicValue::Bool(b) => {
            buf.push(3);
            buf.push(u8::from(*b));
        }
        AtomicValue::Url(s) => {
            buf.push(4);
            write_string(buf, s);
        }
        AtomicValue::Gif(bytes) => {
            buf.push(5);
            write_varint(buf, bytes.len() as u64);
            buf.extend_from_slice(bytes);
        }
    }
}

/// A bounds-checked cursor over encoded bytes.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading `bytes` from the beginning.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Reads one byte.
    pub fn byte(&mut self) -> Result<u8, PersistError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| PersistError::codec("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads the next `n` bytes as a slice.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| PersistError::codec("length field exceeds input"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads an LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, PersistError> {
        let mut v: u64 = 0;
        for shift in (0..).step_by(7) {
            if shift >= 64 {
                return Err(PersistError::codec("varint longer than 64 bits"));
            }
            let byte = self.byte()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        unreachable!()
    }

    /// Reads a varint capped at the codec's sanity limit.
    pub fn len_field(&mut self) -> Result<usize, PersistError> {
        let v = self.varint()?;
        if v > MAX_LEN {
            return Err(PersistError::codec(format!("implausible length {v}")));
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, PersistError> {
        let len = self.len_field()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::codec("invalid UTF-8"))
    }

    /// Reads an [`AtomicValue`].
    pub fn value(&mut self) -> Result<AtomicValue, PersistError> {
        Ok(match self.byte()? {
            0 => AtomicValue::Int(unzigzag(self.varint()?)),
            1 => {
                let bytes: [u8; 8] = self.take(8)?.try_into().expect("take(8) is 8 bytes");
                AtomicValue::Real(f64::from_bits(u64::from_le_bytes(bytes)))
            }
            2 => AtomicValue::Str(self.string()?),
            3 => AtomicValue::Bool(self.byte()? != 0),
            4 => AtomicValue::Url(self.string()?),
            5 => {
                let len = self.len_field()?;
                AtomicValue::Gif(self.take(len)?.to_vec())
            }
            tag => return Err(PersistError::codec(format!("unknown value tag {tag}"))),
        })
    }
}

// ---------------------------------------------------------------------
// whole-store encoding

/// The canonical label order: first use by any edge, objects scanned in
/// oid order. Labels never referenced by an edge do not participate in
/// the encoding (they carry no information about the graph).
fn canonical_labels(store: &OemStore) -> (Vec<String>, HashMap<String, usize>) {
    let mut order = Vec::new();
    let mut index = HashMap::new();
    for oid in store.oids() {
        for edge in store.edges_of(oid) {
            let name = store.label_name(edge.label);
            if !index.contains_key(name) {
                index.insert(name.to_string(), order.len());
                order.push(name.to_string());
            }
        }
    }
    (order, index)
}

/// Encodes the whole store in canonical binary form.
pub fn encode_store(store: &OemStore) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(STORE_MAGIC);
    buf.push(STORE_VERSION);
    let (labels, label_index) = canonical_labels(store);
    write_varint(&mut buf, labels.len() as u64);
    for label in &labels {
        write_string(&mut buf, label);
    }
    write_varint(&mut buf, store.len() as u64);
    for oid in store.oids() {
        match store.get(oid).expect("oids() yields live oids").kind() {
            ObjectKind::Atomic(value) => {
                buf.push(0);
                write_value(&mut buf, value);
            }
            ObjectKind::Complex(edges) => {
                buf.push(1);
                write_varint(&mut buf, edges.len() as u64);
                for edge in edges {
                    let idx = label_index[store.label_name(edge.label)];
                    write_varint(&mut buf, idx as u64);
                    write_varint(&mut buf, edge.target.index() as u64);
                }
            }
        }
    }
    let names: Vec<(&str, Oid)> = store.names().collect();
    write_varint(&mut buf, names.len() as u64);
    for (name, oid) in names {
        write_string(&mut buf, name);
        write_varint(&mut buf, oid.index() as u64);
    }
    buf
}

/// Decodes a store previously written by [`encode_store`]. The result
/// re-encodes to the same bytes (labels are re-interned in canonical
/// order).
pub fn decode_store(bytes: &[u8]) -> Result<OemStore, PersistError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != STORE_MAGIC {
        return Err(PersistError::codec("bad store magic"));
    }
    let version = r.byte()?;
    if version != STORE_VERSION {
        return Err(PersistError::codec(format!(
            "unsupported store version {version}"
        )));
    }
    let n_labels = r.len_field()?;
    let mut labels = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        labels.push(r.string()?);
    }
    let n_objects = r.len_field()?;
    // Parse first, allocate second, wire third: `add_edge` demands a
    // live target, and forward references are routine.
    enum Parsed {
        Atomic(AtomicValue),
        Complex(Vec<(usize, usize)>),
    }
    let mut parsed = Vec::with_capacity(n_objects);
    for _ in 0..n_objects {
        parsed.push(match r.byte()? {
            0 => Parsed::Atomic(r.value()?),
            1 => {
                let n_edges = r.len_field()?;
                let mut edges = Vec::with_capacity(n_edges.min(1024));
                for _ in 0..n_edges {
                    let label = r.varint()? as usize;
                    let target = r.varint()? as usize;
                    if label >= n_labels {
                        return Err(PersistError::codec(format!(
                            "label index {label} out of range"
                        )));
                    }
                    edges.push((label, target));
                }
                Parsed::Complex(edges)
            }
            tag => return Err(PersistError::codec(format!("unknown object tag {tag}"))),
        });
    }
    let mut store = OemStore::new();
    // Intern labels up front so the interner order matches canonical
    // order (making re-encoding byte-identical).
    for label in &labels {
        store.intern_label(label);
    }
    for p in &parsed {
        match p {
            Parsed::Atomic(v) => {
                store.new_atomic(v.clone());
            }
            Parsed::Complex(_) => {
                store.new_complex();
            }
        }
    }
    for (i, p) in parsed.iter().enumerate() {
        if let Parsed::Complex(edges) = p {
            for &(label, target) in edges {
                if target >= n_objects {
                    return Err(PersistError::codec(format!(
                        "edge target {target} out of range"
                    )));
                }
                store.add_edge(Oid::from_index(i), &labels[label], Oid::from_index(target))?;
            }
        }
    }
    let n_names = r.len_field()?;
    for _ in 0..n_names {
        let name = r.string()?;
        let oid = r.varint()? as usize;
        if oid >= n_objects {
            return Err(PersistError::codec(format!(
                "named root {oid} out of range"
            )));
        }
        store.set_name_overwrite(&name, Oid::from_index(oid))?;
    }
    Ok(store)
}

// ---------------------------------------------------------------------
// fragment encoding

/// Deterministic preorder over the subgraph under `root`: discovery
/// order with edges walked in list order; every node gets a local id,
/// the root is local 0.
fn fragment_order(store: &OemStore, root: Oid) -> (Vec<Oid>, HashMap<Oid, usize>) {
    let mut order = Vec::new();
    let mut local = HashMap::new();
    let mut stack = vec![root];
    while let Some(oid) = stack.pop() {
        if local.contains_key(&oid) {
            continue;
        }
        local.insert(oid, order.len());
        order.push(oid);
        // Reverse push so pop order follows edge order.
        for edge in store.edges_of(oid).iter().rev() {
            stack.push(edge.target);
        }
    }
    (order, local)
}

/// Encodes the subgraph under `root` with local node ids (root = 0).
pub fn encode_fragment(store: &OemStore, root: Oid) -> Vec<u8> {
    let (order, local) = fragment_order(store, root);
    let mut labels: Vec<String> = Vec::new();
    let mut label_index: HashMap<String, usize> = HashMap::new();
    for &oid in &order {
        for edge in store.edges_of(oid) {
            let name = store.label_name(edge.label);
            if !label_index.contains_key(name) {
                label_index.insert(name.to_string(), labels.len());
                labels.push(name.to_string());
            }
        }
    }
    let mut buf = Vec::new();
    write_varint(&mut buf, labels.len() as u64);
    for label in &labels {
        write_string(&mut buf, label);
    }
    write_varint(&mut buf, order.len() as u64);
    for &oid in &order {
        match store.get(oid).expect("fragment nodes are live").kind() {
            ObjectKind::Atomic(value) => {
                buf.push(0);
                write_value(&mut buf, value);
            }
            ObjectKind::Complex(edges) => {
                buf.push(1);
                write_varint(&mut buf, edges.len() as u64);
                for edge in edges {
                    let idx = label_index[store.label_name(edge.label)];
                    write_varint(&mut buf, idx as u64);
                    write_varint(&mut buf, local[&edge.target] as u64);
                }
            }
        }
    }
    buf
}

/// Decodes a fragment into `store`, allocating fresh objects; returns
/// the oid of the fragment root. Consumes the whole reader.
pub(crate) fn decode_fragment_reader(
    store: &mut OemStore,
    r: &mut Reader<'_>,
) -> Result<Oid, PersistError> {
    let n_labels = r.len_field()?;
    let mut labels = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        labels.push(r.string()?);
    }
    let n_nodes = r.len_field()?;
    if n_nodes == 0 {
        return Err(PersistError::codec("fragment with no nodes"));
    }
    enum Parsed {
        Atomic(AtomicValue),
        Complex(Vec<(usize, usize)>),
    }
    let mut parsed = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        parsed.push(match r.byte()? {
            0 => Parsed::Atomic(r.value()?),
            1 => {
                let n_edges = r.len_field()?;
                let mut edges = Vec::with_capacity(n_edges.min(1024));
                for _ in 0..n_edges {
                    let label = r.varint()? as usize;
                    let target = r.varint()? as usize;
                    if label >= n_labels {
                        return Err(PersistError::codec(format!(
                            "label index {label} out of range"
                        )));
                    }
                    if target >= n_nodes {
                        return Err(PersistError::codec(format!(
                            "node id {target} out of range"
                        )));
                    }
                    edges.push((label, target));
                }
                Parsed::Complex(edges)
            }
            tag => return Err(PersistError::codec(format!("unknown node tag {tag}"))),
        });
    }
    let base = store.len();
    for p in &parsed {
        match p {
            Parsed::Atomic(v) => {
                store.new_atomic(v.clone());
            }
            Parsed::Complex(_) => {
                store.new_complex();
            }
        }
    }
    for (i, p) in parsed.iter().enumerate() {
        if let Parsed::Complex(edges) = p {
            for &(label, target) in edges {
                store.add_edge(
                    Oid::from_index(base + i),
                    &labels[label],
                    Oid::from_index(base + target),
                )?;
            }
        }
    }
    Ok(Oid::from_index(base))
}

/// Decodes a standalone fragment (as produced by [`encode_fragment`])
/// into `store`, returning the oid of the fragment root.
pub fn decode_fragment_into(store: &mut OemStore, bytes: &[u8]) -> Result<Oid, PersistError> {
    let mut r = Reader::new(bytes);
    let root = decode_fragment_reader(store, &mut r)?;
    if !r.is_empty() {
        return Err(PersistError::codec("trailing bytes after fragment"));
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use annoda_oem::graph::structural_eq;

    fn sample() -> OemStore {
        let mut db = OemStore::new();
        let root = db.new_complex();
        let g = db.add_complex_child(root, "Gene").unwrap();
        db.add_atomic_child(g, "Symbol", "TP53").unwrap();
        db.add_atomic_child(g, "Id", AtomicValue::Int(-7157))
            .unwrap();
        db.add_atomic_child(g, "Score", AtomicValue::Real(0.25))
            .unwrap();
        db.add_atomic_child(g, "Active", AtomicValue::Bool(true))
            .unwrap();
        db.add_atomic_child(g, "Link", AtomicValue::Url("http://x/".into()))
            .unwrap();
        db.add_atomic_child(g, "Img", AtomicValue::Gif(vec![1, 2, 3]))
            .unwrap();
        // Sharing and a cycle.
        db.add_edge(root, "Also", g).unwrap();
        db.add_edge(g, "Back", root).unwrap();
        db.set_name("R", root).unwrap();
        db.set_name("Alias", g).unwrap();
        db
    }

    #[test]
    fn varints_round_trip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            write_varint(&mut buf, v);
            assert_eq!(Reader::new(&buf).varint().unwrap(), v);
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn store_codec_is_canonical() {
        let db = sample();
        let bytes = encode_store(&db);
        let back = decode_store(&bytes).unwrap();
        assert_eq!(back.len(), db.len());
        let names: Vec<_> = db.names().map(|(n, _)| n.to_string()).collect();
        for name in &names {
            assert!(structural_eq(
                &db,
                db.named(name).unwrap(),
                &back,
                back.named(name).unwrap()
            ));
        }
        // Canonical: decoding and re-encoding is a byte-level fixpoint.
        assert_eq!(encode_store(&back), bytes);
    }

    #[test]
    fn empty_store_round_trips() {
        let db = OemStore::new();
        let bytes = encode_store(&db);
        let back = decode_store(&bytes).unwrap();
        assert!(back.is_empty());
        assert_eq!(encode_store(&back), bytes);
    }

    #[test]
    fn fragment_codec_preserves_cycles_and_sharing() {
        let db = sample();
        let root = db.named("R").unwrap();
        let bytes = encode_fragment(&db, root);
        let mut dst = OemStore::new();
        dst.new_atomic("padding"); // offset so local/global ids differ
        let copied = decode_fragment_into(&mut dst, &bytes).unwrap();
        assert!(structural_eq(&db, root, &dst, copied));
        // Sharing preserved: Gene child and Also target are one object.
        let gene = dst.child(copied, "Gene").unwrap();
        assert_eq!(dst.child(copied, "Also"), Some(gene));
        assert_eq!(dst.child(gene, "Back"), Some(copied));
    }

    #[test]
    fn corrupt_input_errors_instead_of_panicking() {
        let db = sample();
        let bytes = encode_store(&db);
        // Truncations and bit flips must never panic or over-allocate.
        for cut in 0..bytes.len() {
            let _ = decode_store(&bytes[..cut]);
        }
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xff;
            let _ = decode_store(&flipped);
        }
        assert!(decode_store(b"NOPE").is_err());
        assert!(decode_fragment_into(&mut OemStore::new(), &[]).is_err());
    }
}
