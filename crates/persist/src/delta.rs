//! Source-refresh deltas: turn a [`diff_structured`] between the
//! currently persisted root and a freshly materialized one into the
//! smallest honest sequence of journal records.
//!
//! Honesty beats minimality here: after building the incremental
//! records the module *applies them to a scratch copy* and re-diffs. If
//! anything still differs (positional index shifts after a
//! kind-change, sharing the fragment codec cannot re-create through a
//! path edit, ...) it discards the increments and journals one
//! [`JournalRecord::PutRoot`] carrying the whole fragment. Either way
//! the journaled state equals the target exactly.

use annoda_oem::graph::diff_structured;
use annoda_oem::{DiffOp, OemStore, Oid, StructuredDiff};

use crate::codec::encode_fragment;
use crate::durable::DurableStore;
use crate::error::PersistError;
use crate::record::{apply, JournalRecord};

fn put_root(name: &str, target: &OemStore, target_root: Oid) -> Vec<JournalRecord> {
    vec![JournalRecord::PutRoot {
        name: name.to_string(),
        fragment: encode_fragment(target, target_root),
    }]
}

/// Builds the journal records that carry `current`'s root `root_name`
/// to the state of `target_root` in `target`. Always returns a
/// sequence whose application yields exactly the target subgraph.
pub fn delta_records(
    current: &OemStore,
    root_name: &str,
    target: &OemStore,
    target_root: Oid,
) -> Vec<JournalRecord> {
    let Some(cur_root) = current.named(root_name) else {
        return put_root(root_name, target, target_root);
    };
    let diffs = diff_structured(current, cur_root, target, target_root);
    if diffs.is_empty() {
        return Vec::new();
    }
    // A divergence at the roots themselves cannot be expressed as a
    // child edit.
    if diffs.iter().any(|d| d.path.is_empty()) {
        return put_root(root_name, target, target_root);
    }

    let mut sets = Vec::new();
    let mut removals = Vec::new();
    let mut additions = Vec::new();
    for d in &diffs {
        let (parent, last) = (
            d.path[..d.path.len() - 1].to_vec(),
            d.path.last().expect("non-empty path").clone(),
        );
        match &d.op {
            DiffOp::ValueChanged { .. } => {
                let Some(at) = StructuredDiff::resolve(target, target_root, &d.path) else {
                    return put_root(root_name, target, target_root);
                };
                let Some(value) = target.value_of(at) else {
                    return put_root(root_name, target, target_root);
                };
                sets.push(JournalRecord::SetValueAt {
                    root: root_name.to_string(),
                    path: d.path.clone(),
                    value: value.clone(),
                });
            }
            DiffOp::OnlyLeft => removals.push((parent, last)),
            DiffOp::OnlyRight => additions.push((parent, last, d.path.clone())),
            DiffOp::KindChanged => {
                removals.push((parent.clone(), last.clone()));
                additions.push((parent, last, d.path.clone()));
            }
        }
    }
    // Remove deepest-first and highest-index-first so earlier removals
    // never shift the positions later ones refer to.
    removals.sort_by(|a, b| {
        b.0.len()
            .cmp(&a.0.len())
            .then_with(|| b.1.index.cmp(&a.1.index))
    });
    // Add shallow-first, lowest-index-first: surplus right-hand edges
    // sit at the tail of their label group, so appends land in order.
    additions.sort_by(|a, b| {
        a.0.len()
            .cmp(&b.0.len())
            .then_with(|| a.1.index.cmp(&b.1.index))
    });

    let mut records = sets;
    for (parent, last) in removals {
        records.push(JournalRecord::RemoveChildAt {
            root: root_name.to_string(),
            parent,
            label: last.label,
            index: last.index,
        });
    }
    for (parent, last, full_path) in additions {
        let Some(at) = StructuredDiff::resolve(target, target_root, &full_path) else {
            return put_root(root_name, target, target_root);
        };
        records.push(JournalRecord::AddChildAt {
            root: root_name.to_string(),
            parent,
            label: last.label,
            fragment: encode_fragment(target, at),
        });
    }

    // Verification pass: the increments must reproduce the target
    // exactly, or we fall back to the full fragment.
    let mut scratch = current.clone();
    for rec in &records {
        if apply(&mut scratch, rec).is_err() {
            return put_root(root_name, target, target_root);
        }
    }
    let scratch_root = scratch.named(root_name).expect("root survives edits");
    if diff_structured(&scratch, scratch_root, target, target_root).is_empty() {
        records
    } else {
        put_root(root_name, target, target_root)
    }
}

/// Journals whatever it takes to make `durable`'s root `name` match
/// `target_root` in `target`. Returns how many records were journaled
/// (zero when the root was already identical).
pub fn sync_root(
    durable: &mut DurableStore,
    name: &str,
    target: &OemStore,
    target_root: Oid,
) -> Result<usize, PersistError> {
    let records = delta_records(durable.store(), name, target, target_root);
    let n = records.len();
    for rec in records {
        durable.journal(&rec)?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use annoda_oem::AtomicValue;

    fn gml(symbols: &[&str]) -> (OemStore, Oid) {
        let mut db = OemStore::new();
        let root = db.new_complex();
        for s in symbols {
            let g = db.add_complex_child(root, "Gene").unwrap();
            db.add_atomic_child(g, "Symbol", *s).unwrap();
            db.add_atomic_child(g, "Organism", "H. sapiens").unwrap();
        }
        db.set_name("GML", root).unwrap();
        (db, root)
    }

    fn apply_all(current: &OemStore, records: &[JournalRecord]) -> OemStore {
        let mut out = current.clone();
        for r in records {
            apply(&mut out, r).unwrap();
        }
        out
    }

    #[test]
    fn missing_root_becomes_a_put() {
        let current = OemStore::new();
        let (target, troot) = gml(&["TP53"]);
        let records = delta_records(&current, "GML", &target, troot);
        assert_eq!(records.len(), 1);
        assert!(matches!(records[0], JournalRecord::PutRoot { .. }));
        let after = apply_all(&current, &records);
        assert!(diff_structured(&after, after.named("GML").unwrap(), &target, troot).is_empty());
    }

    #[test]
    fn identical_roots_journal_nothing() {
        let (current, _) = gml(&["TP53", "BRCA1"]);
        let (target, troot) = gml(&["TP53", "BRCA1"]);
        assert!(delta_records(&current, "GML", &target, troot).is_empty());
    }

    #[test]
    fn value_edit_is_a_single_set() {
        let (current, _) = gml(&["TP53", "BRCA1"]);
        let (mut target, troot) = gml(&["TP53", "BRCA1"]);
        let g1 = target.children(troot, "Gene").nth(1).unwrap();
        let sym = target.child(g1, "Symbol").unwrap();
        target.set_value(sym, "BRCA2").unwrap();
        let records = delta_records(&current, "GML", &target, troot);
        assert_eq!(records.len(), 1, "{records:?}");
        assert!(matches!(records[0], JournalRecord::SetValueAt { .. }));
        let after = apply_all(&current, &records);
        assert!(diff_structured(&after, after.named("GML").unwrap(), &target, troot).is_empty());
    }

    #[test]
    fn tail_growth_and_shrink_are_incremental() {
        // Grown on the right: two new genes arrive as AddChildAt.
        let (current, _) = gml(&["TP53"]);
        let (target, troot) = gml(&["TP53", "BRCA1", "KRAS"]);
        let records = delta_records(&current, "GML", &target, troot);
        assert_eq!(records.len(), 2, "{records:?}");
        assert!(records
            .iter()
            .all(|r| matches!(r, JournalRecord::AddChildAt { .. })));
        let after = apply_all(&current, &records);
        assert!(diff_structured(&after, after.named("GML").unwrap(), &target, troot).is_empty());

        // Shrunk on the right: removals, highest index first.
        let (current, _) = gml(&["TP53", "BRCA1", "KRAS"]);
        let (target, troot) = gml(&["TP53"]);
        let records = delta_records(&current, "GML", &target, troot);
        assert_eq!(records.len(), 2, "{records:?}");
        match (&records[0], &records[1]) {
            (
                JournalRecord::RemoveChildAt { index: i0, .. },
                JournalRecord::RemoveChildAt { index: i1, .. },
            ) => assert!(i0 > i1, "descending removal order"),
            other => panic!("expected two removals, got {other:?}"),
        }
        let after = apply_all(&current, &records);
        assert!(diff_structured(&after, after.named("GML").unwrap(), &target, troot).is_empty());
    }

    #[test]
    fn kind_change_still_converges() {
        // Gene[0] flips from complex to atomic: whatever strategy the
        // delta picks (edit or full put), applying it must converge.
        let (current, _) = gml(&["TP53", "BRCA1"]);
        let mut target = OemStore::new();
        let troot = target.new_complex();
        target.add_atomic_child(troot, "Gene", "collapsed").unwrap();
        let g = target.add_complex_child(troot, "Gene").unwrap();
        target.add_atomic_child(g, "Symbol", "BRCA1").unwrap();
        target
            .add_atomic_child(g, "Organism", "H. sapiens")
            .unwrap();
        target.set_name("GML", troot).unwrap();
        let records = delta_records(&current, "GML", &target, troot);
        assert!(!records.is_empty());
        let after = apply_all(&current, &records);
        assert!(diff_structured(&after, after.named("GML").unwrap(), &target, troot).is_empty());
    }

    #[test]
    fn mixed_edit_converges() {
        let (current, _) = gml(&["TP53", "BRCA1", "EGFR"]);
        let (mut target, troot) = gml(&["TP53", "BRCA1"]);
        let g0 = target.children(troot, "Gene").next().unwrap();
        target
            .add_atomic_child(g0, "Score", AtomicValue::Real(0.5))
            .unwrap();
        let sym = target.child(g0, "Symbol").unwrap();
        target.set_value(sym, "TP63").unwrap();
        let records = delta_records(&current, "GML", &target, troot);
        let after = apply_all(&current, &records);
        assert!(diff_structured(&after, after.named("GML").unwrap(), &target, troot).is_empty());
    }
}
