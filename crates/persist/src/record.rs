//! Journal records: the mutations the WAL can carry, and the single
//! [`apply`] function shared between the live write path and recovery.
//!
//! Byte-identical recovery hinges on that sharing: `DurableStore`
//! mutates its in-memory store *only* through `apply`, so replaying the
//! same records against the same base can't drift.
//!
//! Paths address objects positionally — `(label, index)` hops under a
//! named root, the same scheme [`annoda_oem::StructuredDiff`] reports —
//! so records stay valid across the oid renumbering a snapshot's
//! compaction performs.

use annoda_oem::{AtomicValue, OemStore, Oid, PathSeg, StructuredDiff};

use crate::codec::{decode_fragment_into, write_string, write_value, Reader};
use crate::error::PersistError;

/// Which lifecycle event a [`JournalRecord::SourceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceEventKind {
    /// A wrapper was plugged into the registry.
    Plug,
    /// A wrapper was unplugged.
    Unplug,
    /// A source refresh ran (the data delta follows as separate records).
    Refresh,
}

/// One journaled mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Registry lifecycle marker. Carries no store mutation; recovery
    /// counts these so `/metrics` can report what the journal saw.
    SourceEvent {
        /// What happened.
        kind: SourceEventKind,
        /// Wrapper / source name.
        name: String,
    },
    /// Bind `name` to a freshly imported fragment (encoded with
    /// [`crate::codec::encode_fragment`]), replacing any prior binding.
    PutRoot {
        /// Root name to bind.
        name: String,
        /// Encoded fragment; its root becomes the named object.
        fragment: Vec<u8>,
    },
    /// Remove the binding for `name` (the objects become garbage and
    /// are reclaimed by the next snapshot's compaction).
    DropRoot {
        /// Root name to unbind.
        name: String,
    },
    /// Overwrite the atomic value at `path` under the root named `root`.
    SetValueAt {
        /// Named root the path starts from.
        root: String,
        /// Positional path to the atomic object.
        path: Vec<PathSeg>,
        /// New value.
        value: AtomicValue,
    },
    /// Graft a fragment as a new `label` child of the object at
    /// `parent` under `root`.
    AddChildAt {
        /// Named root the path starts from.
        root: String,
        /// Positional path to the parent object.
        parent: Vec<PathSeg>,
        /// Edge label for the new child.
        label: String,
        /// Encoded fragment to graft.
        fragment: Vec<u8>,
    },
    /// Remove the `index`-th `label` child of the object at `parent`
    /// under `root`.
    RemoveChildAt {
        /// Named root the path starts from.
        root: String,
        /// Positional path to the parent object.
        parent: Vec<PathSeg>,
        /// Edge label to remove.
        label: String,
        /// Position among the parent's `label` children.
        index: usize,
    },
}

// ---------------------------------------------------------------------
// codec

fn write_path(buf: &mut Vec<u8>, path: &[PathSeg]) {
    crate::codec::write_varint(buf, path.len() as u64);
    for seg in path {
        write_string(buf, &seg.label);
        crate::codec::write_varint(buf, seg.index as u64);
    }
}

fn read_path(r: &mut Reader<'_>) -> Result<Vec<PathSeg>, PersistError> {
    let n = r.len_field()?;
    let mut path = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let label = r.string()?;
        let index = r.varint()? as usize;
        path.push(PathSeg { label, index });
    }
    Ok(path)
}

fn write_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    crate::codec::write_varint(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

fn read_bytes(r: &mut Reader<'_>) -> Result<Vec<u8>, PersistError> {
    let len = r.len_field()?;
    Ok(r.take(len)?.to_vec())
}

impl JournalRecord {
    /// Encodes the record as a WAL frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            JournalRecord::SourceEvent { kind, name } => {
                buf.push(0);
                buf.push(match kind {
                    SourceEventKind::Plug => 0,
                    SourceEventKind::Unplug => 1,
                    SourceEventKind::Refresh => 2,
                });
                write_string(&mut buf, name);
            }
            JournalRecord::PutRoot { name, fragment } => {
                buf.push(1);
                write_string(&mut buf, name);
                write_bytes(&mut buf, fragment);
            }
            JournalRecord::DropRoot { name } => {
                buf.push(2);
                write_string(&mut buf, name);
            }
            JournalRecord::SetValueAt { root, path, value } => {
                buf.push(3);
                write_string(&mut buf, root);
                write_path(&mut buf, path);
                write_value(&mut buf, value);
            }
            JournalRecord::AddChildAt {
                root,
                parent,
                label,
                fragment,
            } => {
                buf.push(4);
                write_string(&mut buf, root);
                write_path(&mut buf, parent);
                write_string(&mut buf, label);
                write_bytes(&mut buf, fragment);
            }
            JournalRecord::RemoveChildAt {
                root,
                parent,
                label,
                index,
            } => {
                buf.push(5);
                write_string(&mut buf, root);
                write_path(&mut buf, parent);
                write_string(&mut buf, label);
                crate::codec::write_varint(&mut buf, *index as u64);
            }
        }
        buf
    }

    /// Decodes a WAL frame payload.
    pub fn decode(payload: &[u8]) -> Result<JournalRecord, PersistError> {
        let mut r = Reader::new(payload);
        let rec = match r.byte()? {
            0 => {
                let kind = match r.byte()? {
                    0 => SourceEventKind::Plug,
                    1 => SourceEventKind::Unplug,
                    2 => SourceEventKind::Refresh,
                    k => return Err(PersistError::codec(format!("unknown source event {k}"))),
                };
                JournalRecord::SourceEvent {
                    kind,
                    name: r.string()?,
                }
            }
            1 => JournalRecord::PutRoot {
                name: r.string()?,
                fragment: read_bytes(&mut r)?,
            },
            2 => JournalRecord::DropRoot { name: r.string()? },
            3 => JournalRecord::SetValueAt {
                root: r.string()?,
                path: read_path(&mut r)?,
                value: r.value()?,
            },
            4 => JournalRecord::AddChildAt {
                root: r.string()?,
                parent: read_path(&mut r)?,
                label: r.string()?,
                fragment: read_bytes(&mut r)?,
            },
            5 => JournalRecord::RemoveChildAt {
                root: r.string()?,
                parent: read_path(&mut r)?,
                label: r.string()?,
                index: r.varint()? as usize,
            },
            tag => return Err(PersistError::codec(format!("unknown record tag {tag}"))),
        };
        if !r.is_empty() {
            return Err(PersistError::codec("trailing bytes after record"));
        }
        Ok(rec)
    }
}

// ---------------------------------------------------------------------
// application

fn resolve(store: &OemStore, root: &str, path: &[PathSeg]) -> Result<Oid, PersistError> {
    let root_oid = store
        .named(root)
        .ok_or_else(|| PersistError::apply(format!("no root named {root:?}")))?;
    StructuredDiff::resolve(store, root_oid, path)
        .ok_or_else(|| PersistError::apply(format!("path does not resolve under {root:?}")))
}

/// Applies one record to the store. This is the only mutation path the
/// durable store uses, both when journaling live and when replaying.
pub fn apply(store: &mut OemStore, record: &JournalRecord) -> Result<(), PersistError> {
    match record {
        JournalRecord::SourceEvent { .. } => Ok(()),
        JournalRecord::PutRoot { name, fragment } => {
            let root = decode_fragment_into(store, fragment)?;
            store.set_name_overwrite(name, root)?;
            Ok(())
        }
        JournalRecord::DropRoot { name } => {
            store
                .remove_name(name)
                .ok_or_else(|| PersistError::apply(format!("no root named {name:?}")))?;
            Ok(())
        }
        JournalRecord::SetValueAt { root, path, value } => {
            let oid = resolve(store, root, path)?;
            store.set_value(oid, value.clone())?;
            Ok(())
        }
        JournalRecord::AddChildAt {
            root,
            parent,
            label,
            fragment,
        } => {
            let parent_oid = resolve(store, root, parent)?;
            let child = decode_fragment_into(store, fragment)?;
            store.add_edge(parent_oid, label, child)?;
            Ok(())
        }
        JournalRecord::RemoveChildAt {
            root,
            parent,
            label,
            index,
        } => {
            let parent_oid = resolve(store, root, parent)?;
            let target = store
                .children(parent_oid, label)
                .nth(*index)
                .ok_or_else(|| {
                    PersistError::apply(format!("no {label:?} child at index {index}"))
                })?;
            store.remove_edge(parent_oid, label, target)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_fragment;

    fn seg(label: &str, index: usize) -> PathSeg {
        PathSeg {
            label: label.into(),
            index,
        }
    }

    fn all_variants() -> Vec<JournalRecord> {
        let mut src = OemStore::new();
        let frag_root = src.new_complex();
        src.add_atomic_child(frag_root, "Symbol", "KRAS").unwrap();
        let fragment = encode_fragment(&src, frag_root);
        vec![
            JournalRecord::SourceEvent {
                kind: SourceEventKind::Refresh,
                name: "genbank".into(),
            },
            JournalRecord::PutRoot {
                name: "ANNODA-GML".into(),
                fragment: fragment.clone(),
            },
            JournalRecord::DropRoot { name: "old".into() },
            JournalRecord::SetValueAt {
                root: "ANNODA-GML".into(),
                path: vec![seg("Gene", 2), seg("Symbol", 0)],
                value: AtomicValue::Str("TP53".into()),
            },
            JournalRecord::AddChildAt {
                root: "ANNODA-GML".into(),
                parent: vec![seg("Gene", 0)],
                label: "Annotation".into(),
                fragment,
            },
            JournalRecord::RemoveChildAt {
                root: "ANNODA-GML".into(),
                parent: vec![],
                label: "Gene".into(),
                index: 1,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for rec in all_variants() {
            let bytes = rec.encode();
            assert_eq!(JournalRecord::decode(&bytes).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn truncated_records_error_cleanly() {
        for rec in all_variants() {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                assert!(JournalRecord::decode(&bytes[..cut]).is_err());
            }
        }
    }

    #[test]
    fn apply_covers_the_whole_vocabulary() {
        let mut store = OemStore::new();
        // PutRoot bootstraps.
        let mut src = OemStore::new();
        let r = src.new_complex();
        let g = src.add_complex_child(r, "Gene").unwrap();
        src.add_atomic_child(g, "Symbol", "BRCA1").unwrap();
        apply(
            &mut store,
            &JournalRecord::PutRoot {
                name: "GML".into(),
                fragment: encode_fragment(&src, r),
            },
        )
        .unwrap();
        let root = store.named("GML").unwrap();
        let gene = store.child(root, "Gene").unwrap();
        assert_eq!(
            store.child_value(gene, "Symbol"),
            Some(&AtomicValue::Str("BRCA1".into()))
        );

        // SetValueAt rewrites in place.
        apply(
            &mut store,
            &JournalRecord::SetValueAt {
                root: "GML".into(),
                path: vec![seg("Gene", 0), seg("Symbol", 0)],
                value: AtomicValue::Str("BRCA2".into()),
            },
        )
        .unwrap();
        assert_eq!(
            store.child_value(gene, "Symbol"),
            Some(&AtomicValue::Str("BRCA2".into()))
        );

        // AddChildAt grafts a fragment.
        let mut frag = OemStore::new();
        let a = frag.new_atomic(AtomicValue::Int(42));
        apply(
            &mut store,
            &JournalRecord::AddChildAt {
                root: "GML".into(),
                parent: vec![seg("Gene", 0)],
                label: "Score".into(),
                fragment: encode_fragment(&frag, a),
            },
        )
        .unwrap();
        assert_eq!(
            store.child_value(gene, "Score"),
            Some(&AtomicValue::Int(42))
        );

        // RemoveChildAt removes it again.
        apply(
            &mut store,
            &JournalRecord::RemoveChildAt {
                root: "GML".into(),
                parent: vec![seg("Gene", 0)],
                label: "Score".into(),
                index: 0,
            },
        )
        .unwrap();
        assert_eq!(store.child_value(gene, "Score"), None);

        // DropRoot unbinds.
        apply(&mut store, &JournalRecord::DropRoot { name: "GML".into() }).unwrap();
        assert!(store.named("GML").is_none());

        // SourceEvent leaves the store alone.
        let before = crate::codec::encode_store(&store);
        apply(
            &mut store,
            &JournalRecord::SourceEvent {
                kind: SourceEventKind::Plug,
                name: "swissprot".into(),
            },
        )
        .unwrap();
        assert_eq!(crate::codec::encode_store(&store), before);
    }

    #[test]
    fn bad_paths_are_apply_errors() {
        let mut store = OemStore::new();
        let e = apply(
            &mut store,
            &JournalRecord::DropRoot {
                name: "ghost".into(),
            },
        );
        assert!(matches!(e, Err(PersistError::Apply { .. })));
        let e = apply(
            &mut store,
            &JournalRecord::SetValueAt {
                root: "ghost".into(),
                path: vec![],
                value: AtomicValue::Bool(true),
            },
        );
        assert!(matches!(e, Err(PersistError::Apply { .. })));
    }
}
