//! Sharded OEM store: key-routed partitions with per-shard epochs.
//!
//! The mediator's integrated ANNODA-GML view is a single root whose
//! direct children are entity fragments (`Source`, `Gene`, `Function`,
//! `Disease`, `Publication`, `Annotation`). [`ShardedStore`] partitions
//! those fragments across `n` immutable [`OemStore`] shards by a stable
//! hash of each fragment's identifying key, so a refresh that rewrites
//! one source's entities swaps only the shards it touched while readers
//! keep serving the untouched shards' `Arc`s.
//!
//! Two invariants make the sharding transparent to readers:
//!
//! * **Canonical fragment order.** Partitioning stable-sorts fragments
//!   by `(label, key, original index)` and assembly k-way merges the
//!   per-shard lists with the same comparator. Fragments with equal
//!   `(label, key)` always co-shard (routing ignores the label), so the
//!   merge is total and `assemble(partition(flat, n))` encodes
//!   byte-identically for *every* shard count `n`.
//! * **Per-fragment copies.** Each fragment is imported with a fresh
//!   memo, so object sharing *across* fragments is broken the same way
//!   regardless of where the shard boundaries fall. Sharing and cycles
//!   *within* a fragment are preserved.

use std::sync::Arc;

use crate::error::OemError;
use crate::graph::{import_fragment, structural_eq};
use crate::harvest::atomic_text;
use crate::oid::Oid;
use crate::store::OemStore;

/// Upper bound on shard count: shard sets travel as `u64` bitmasks in
/// the serve tier's cache dependencies and ETags.
pub const MAX_SHARDS: usize = 64;

/// 64-bit FNV-1a — stable across runs and platforms, unlike
/// `DefaultHasher`, so shard routing survives restarts and the on-disk
/// shard layout stays valid.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Routes fragment keys to shard indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` partitions, clamped to `1..=MAX_SHARDS`.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.clamp(1, MAX_SHARDS),
        }
    }

    /// Number of shards routed over.
    pub fn shards(self) -> usize {
        self.shards
    }

    /// The shard an identifying key lives on. Routing uses only the key
    /// (not the entity label) so equal keys always co-shard, which keeps
    /// the assembly merge total.
    pub fn route(self, key: &str) -> usize {
        (fnv1a64(key.as_bytes()) % self.shards as u64) as usize
    }
}

/// The identifying key of an entity fragment, matching the keys the
/// navigator resolves `/object/{kind}/{id}` against. Unknown labels fall
/// back to the first atomic child's text, then to the label itself, so
/// arbitrary stores (proptests) still partition deterministically.
pub fn fragment_key(store: &OemStore, label: &str, frag: Oid) -> String {
    let attr = match label {
        "Gene" | "Annotation" => Some("Symbol"),
        "Source" => Some("Name"),
        "Function" => Some("FunctionID"),
        "Disease" => Some("DiseaseID"),
        "Publication" => Some("PublicationID"),
        _ => None,
    };
    if let Some(attr) = attr {
        if let Some(text) = store.child_value(frag, attr).and_then(atomic_text) {
            return text;
        }
    }
    if let Some(value) = store.get(frag).and_then(|o| o.value()) {
        if let Some(text) = atomic_text(value) {
            return text;
        }
    }
    for edge in store.edges_of(frag) {
        if let Some(text) = store.value_of(edge.target).and_then(atomic_text) {
            return text;
        }
    }
    label.to_string()
}

/// An immutable, epoch-versioned partitioning of a rooted OEM store.
///
/// Each shard is a complete `OemStore` holding a root named
/// [`root_name`](Self::root_name) whose children are the fragments
/// routed to that shard, in canonical order. Shards are shared as
/// `Arc`s; [`install`](Self::install) swaps one shard and bumps only
/// its epoch, leaving readers of other shards untouched.
#[derive(Clone)]
pub struct ShardedStore {
    root_name: String,
    router: ShardRouter,
    shards: Vec<Arc<OemStore>>,
    epochs: Vec<u64>,
}

impl ShardedStore {
    /// Partitions the fragment children of `flat`'s root named
    /// `root_name` across `shards` partitions.
    pub fn partition(flat: &OemStore, root_name: &str, shards: usize) -> Result<Self, OemError> {
        let root = flat
            .named(root_name)
            .ok_or_else(|| OemError::DanglingOid(format!("no root named {root_name}")))?;
        let router = ShardRouter::new(shards);
        let mut fragments: Vec<(String, String, usize, Oid)> = flat
            .edges_of(root)
            .iter()
            .enumerate()
            .map(|(idx, e)| {
                let label = flat.label_name(e.label).to_string();
                let key = fragment_key(flat, &label, e.target);
                (label, key, idx, e.target)
            })
            .collect();
        fragments.sort_by(|a, b| (&a.0, &a.1, a.2).cmp(&(&b.0, &b.1, b.2)));

        let mut stores: Vec<OemStore> = Vec::with_capacity(router.shards());
        let mut roots: Vec<Oid> = Vec::with_capacity(router.shards());
        for _ in 0..router.shards() {
            let mut s = OemStore::new();
            let r = s.new_complex();
            s.set_name(root_name, r).expect("fresh store has no names");
            stores.push(s);
            roots.push(r);
        }
        for (label, key, _, target) in &fragments {
            let shard = router.route(key);
            let copied = import_fragment(&mut stores[shard], flat, *target);
            stores[shard]
                .add_edge(roots[shard], label, copied)
                .expect("freshly imported fragment is live");
        }
        Ok(Self {
            root_name: root_name.to_string(),
            router,
            shards: stores.into_iter().map(Arc::new).collect(),
            epochs: vec![1; router.shards()],
        })
    }

    /// Rebuilds a sharded store from already-partitioned per-shard
    /// stores (warm recovery): each store must hold a root named
    /// `root_name`. Epochs are supplied by the caller (recovered from
    /// the per-shard durable generations, salted per boot so epoch
    /// values minted by a previous process never collide).
    pub fn from_shards(
        root_name: &str,
        shards: Vec<Arc<OemStore>>,
        epochs: Vec<u64>,
    ) -> Result<Self, OemError> {
        if shards.is_empty() || shards.len() != epochs.len() || shards.len() > MAX_SHARDS {
            return Err(OemError::DanglingOid(format!(
                "bad shard vector: {} stores, {} epochs",
                shards.len(),
                epochs.len()
            )));
        }
        for (i, s) in shards.iter().enumerate() {
            if s.named(root_name).is_none() {
                return Err(OemError::DanglingOid(format!(
                    "shard {i} has no root named {root_name}"
                )));
            }
        }
        Ok(Self {
            root_name: root_name.to_string(),
            router: ShardRouter::new(shards.len()),
            shards,
            epochs,
        })
    }

    /// The root name every shard (and the assembly) is keyed under.
    pub fn root_name(&self) -> &str {
        &self.root_name
    }

    /// The key router for this partitioning.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's immutable store.
    pub fn shard(&self, idx: usize) -> &Arc<OemStore> {
        &self.shards[idx]
    }

    /// All shard stores, indexed by shard id.
    pub fn shards(&self) -> &[Arc<OemStore>] {
        &self.shards
    }

    /// Per-shard epochs; `epochs()[i]` advances exactly when shard `i`
    /// is swapped. The whole slice is the *snapshot vector* readers pin.
    pub fn epochs(&self) -> &[u64] {
        &self.epochs
    }

    /// The shard an identifying key routes to.
    pub fn shard_of_key(&self, key: &str) -> usize {
        self.router.route(key)
    }

    /// Finds the fragment with entity `label` and identifying `key`,
    /// returning its shard and oid within that shard.
    pub fn fragment(&self, label: &str, key: &str) -> Option<(usize, Oid)> {
        let idx = self.shard_of_key(key);
        let store = &self.shards[idx];
        let root = store.named(&self.root_name)?;
        for edge in store.edges_of(root) {
            if store.label_name(edge.label) == label
                && fragment_key(store, label, edge.target) == key
            {
                return Some((idx, edge.target));
            }
        }
        None
    }

    /// Objects held by one shard (root included).
    pub fn shard_objects(&self, idx: usize) -> usize {
        self.shards[idx].len()
    }

    /// Total objects across all shards.
    pub fn total_objects(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Fragments held by one shard.
    pub fn shard_fragments(&self, idx: usize) -> usize {
        let store = &self.shards[idx];
        store
            .named(&self.root_name)
            .map(|r| store.edges_of(r).len())
            .unwrap_or(0)
    }

    /// Swaps shard `idx` to a new immutable store and bumps its epoch.
    pub fn install(&mut self, idx: usize, store: Arc<OemStore>) {
        self.shards[idx] = store;
        self.epochs[idx] += 1;
    }

    /// Shards where `staged` differs structurally from `self` — the
    /// touched set a transaction commit must validate and swap. Shard
    /// contents are canonically ordered on both sides, so order-
    /// sensitive [`structural_eq`] is a sound equality here.
    pub fn changed_shards(&self, staged: &Self) -> Vec<usize> {
        debug_assert_eq!(self.shard_count(), staged.shard_count());
        let mut changed = Vec::new();
        for i in 0..self.shard_count().min(staged.shard_count()) {
            let (a, b) = (&self.shards[i], &staged.shards[i]);
            let (Some(ra), Some(rb)) = (a.named(&self.root_name), b.named(&staged.root_name))
            else {
                changed.push(i);
                continue;
            };
            if !structural_eq(a, ra, b, rb) {
                changed.push(i);
            }
        }
        changed
    }

    /// Counts the fragments that differ between `self` and `staged`
    /// within the given shards (typically the
    /// [`changed_shards`](Self::changed_shards) set): a fragment counts
    /// when its `(label, key)` pair exists on only one side, or exists
    /// on both but is structurally unequal. Both sides hold fragments in
    /// canonical `(label, key)` order, so this is a linear merge-walk.
    pub fn changed_fragments(&self, staged: &Self, shards: &[usize]) -> usize {
        let list = |store: &OemStore| -> Vec<(String, String, Oid)> {
            let Some(root) = store.named(&self.root_name) else {
                return Vec::new();
            };
            store
                .edges_of(root)
                .iter()
                .map(|e| {
                    let label = store.label_name(e.label).to_string();
                    let key = fragment_key(store, &label, e.target);
                    (label, key, e.target)
                })
                .collect()
        };
        let mut changed = 0usize;
        for &i in shards {
            if i >= self.shards.len() || i >= staged.shards.len() {
                continue;
            }
            let (a, b) = (&self.shards[i], &staged.shards[i]);
            let (la, lb) = (list(a), list(b));
            let (mut x, mut y) = (0usize, 0usize);
            loop {
                match (la.get(x), lb.get(y)) {
                    (Some(fa), Some(fb)) => match (&fa.0, &fa.1).cmp(&(&fb.0, &fb.1)) {
                        std::cmp::Ordering::Less => {
                            changed += 1;
                            x += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            changed += 1;
                            y += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            if !structural_eq(a, fa.2, b, fb.2) {
                                changed += 1;
                            }
                            x += 1;
                            y += 1;
                        }
                    },
                    (Some(_), None) => {
                        changed += 1;
                        x += 1;
                    }
                    (None, Some(_)) => {
                        changed += 1;
                        y += 1;
                    }
                    (None, None) => break,
                }
            }
        }
        changed
    }

    /// Reassembles the canonical flat store: a single root named
    /// [`root_name`](Self::root_name) whose children are every shard's
    /// fragments, k-way merged back into canonical `(label, key)`
    /// order. Byte-identical (under `encode_store`) for every shard
    /// count over the same source data.
    pub fn assemble(&self) -> OemStore {
        let mut out = OemStore::new();
        let out_root = out.new_complex();
        out.set_name(&self.root_name, out_root)
            .expect("fresh store has no names");

        // Per-shard cursor over (label, key, target) in stored order.
        let lists: Vec<Vec<(String, String, Oid)>> = self
            .shards
            .iter()
            .map(|store| {
                let Some(root) = store.named(&self.root_name) else {
                    return Vec::new();
                };
                store
                    .edges_of(root)
                    .iter()
                    .map(|e| {
                        let label = store.label_name(e.label).to_string();
                        let key = fragment_key(store, &label, e.target);
                        (label, key, e.target)
                    })
                    .collect()
            })
            .collect();
        let mut heads = vec![0usize; lists.len()];
        loop {
            let mut best: Option<usize> = None;
            for (i, list) in lists.iter().enumerate() {
                if heads[i] >= list.len() {
                    continue;
                }
                let cand = &list[heads[i]];
                best = match best {
                    None => Some(i),
                    Some(j) => {
                        let cur = &lists[j][heads[j]];
                        if (&cand.0, &cand.1) < (&cur.0, &cur.1) {
                            Some(i)
                        } else {
                            Some(j)
                        }
                    }
                };
            }
            let Some(i) = best else { break };
            let (label, _, target) = &lists[i][heads[i]];
            heads[i] += 1;
            let copied = import_fragment(&mut out, &self.shards[i], *target);
            out.add_edge(out_root, label, copied)
                .expect("freshly imported fragment is live");
        }
        out
    }
}

/// Bitmask over shard indices (`MAX_SHARDS` ≤ 64 keeps this a `u64`).
pub fn shard_mask(shards: &[usize]) -> u64 {
    shards.iter().fold(0u64, |m, &i| m | (1u64 << (i % 64)))
}

/// Sum of the epochs selected by `mask` — the dependency stamp the
/// serve-tier cache uses. Each component only ever grows, so an equal
/// sum over the same mask proves none of the masked shards changed.
pub fn mask_stamp(epochs: &[u64], mask: u64) -> u64 {
    epochs
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1u64 << (i % 64)) != 0)
        .map(|(_, e)| *e)
        .fold(0u64, |a, e| a.wrapping_add(e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gml_fixture() -> OemStore {
        let mut s = OemStore::new();
        let root = s.new_complex();
        s.set_name("ANNODA-GML", root).unwrap();
        for sym in ["TP53", "BRCA1", "MDM2", "EGFR", "KRAS"] {
            let g = s.add_complex_child(root, "Gene").unwrap();
            s.add_atomic_child(g, "Symbol", sym).unwrap();
            s.add_atomic_child(g, "Organism", "Homo sapiens").unwrap();
        }
        for fid in ["GO:0001", "GO:0002", "GO:0003"] {
            let f = s.add_complex_child(root, "Function").unwrap();
            s.add_atomic_child(f, "FunctionID", fid).unwrap();
        }
        let src = s.add_complex_child(root, "Source").unwrap();
        s.add_atomic_child(src, "Name", "LocusLink").unwrap();
        s
    }

    #[test]
    fn router_is_stable_and_clamped() {
        let r = ShardRouter::new(0);
        assert_eq!(r.shards(), 1);
        let r = ShardRouter::new(4);
        assert_eq!(r.route("TP53"), r.route("TP53"));
        assert!(r.route("TP53") < 4);
        assert_eq!(ShardRouter::new(1000).shards(), MAX_SHARDS);
    }

    #[test]
    fn partition_preserves_fragments_and_assembly_is_canonical() {
        let flat = gml_fixture();
        let one = ShardedStore::partition(&flat, "ANNODA-GML", 1).unwrap();
        for n in [1usize, 2, 3, 4, 7] {
            let sharded = ShardedStore::partition(&flat, "ANNODA-GML", n).unwrap();
            let total: usize = (0..sharded.shard_count())
                .map(|i| sharded.shard_fragments(i))
                .sum();
            assert_eq!(total, 9, "all fragments survive partitioning at n={n}");
            // Every entity resolves in its routed shard, structurally
            // identical to the flat fragment.
            for sym in ["TP53", "BRCA1", "MDM2", "EGFR", "KRAS"] {
                let (idx, frag) = sharded.fragment("Gene", sym).expect("gene routed");
                let flat_root = flat.named("ANNODA-GML").unwrap();
                let flat_frag = flat
                    .edges_of(flat_root)
                    .iter()
                    .find(|e| {
                        flat.label_name(e.label) == "Gene"
                            && fragment_key(&flat, "Gene", e.target) == sym
                    })
                    .unwrap()
                    .target;
                assert!(structural_eq(sharded.shard(idx), frag, &flat, flat_frag));
            }
            // Canonical assembly is shard-count independent.
            let a = sharded.assemble();
            let b = one.assemble();
            let (ra, rb) = (
                a.named("ANNODA-GML").unwrap(),
                b.named("ANNODA-GML").unwrap(),
            );
            assert!(structural_eq(&a, ra, &b, rb), "assembly differs at n={n}");
        }
    }

    #[test]
    fn install_bumps_only_touched_epoch_and_changed_shards_sees_it() {
        let flat = gml_fixture();
        let mut sharded = ShardedStore::partition(&flat, "ANNODA-GML", 4).unwrap();
        let before = sharded.epochs().to_vec();

        // Stage a mutation of one gene and re-partition.
        let mut mutated = gml_fixture();
        let (idx, _) = sharded.fragment("Gene", "TP53").unwrap();
        let root = mutated.named("ANNODA-GML").unwrap();
        let frag = mutated
            .edges_of(root)
            .iter()
            .find(|e| {
                mutated.label_name(e.label) == "Gene"
                    && fragment_key(&mutated, "Gene", e.target) == "TP53"
            })
            .unwrap()
            .target;
        mutated.add_atomic_child(frag, "Note", "mutated").unwrap();
        let staged = ShardedStore::partition(&mutated, "ANNODA-GML", 4).unwrap();

        let changed = sharded.changed_shards(&staged);
        assert_eq!(changed, vec![idx], "only TP53's shard changed");
        for &i in &changed {
            sharded.install(i, Arc::clone(staged.shard(i)));
        }
        for (i, &b) in before.iter().enumerate() {
            let expect = if i == idx { b + 1 } else { b };
            assert_eq!(sharded.epochs()[i], expect);
        }
    }

    #[test]
    fn changed_fragments_counts_mutations_inserts_and_removals() {
        let flat = gml_fixture();
        let sharded = ShardedStore::partition(&flat, "ANNODA-GML", 4).unwrap();
        // No change: zero fragments differ anywhere.
        let same = ShardedStore::partition(&flat, "ANNODA-GML", 4).unwrap();
        let all: Vec<usize> = (0..4).collect();
        assert_eq!(sharded.changed_fragments(&same, &all), 0);

        // Mutate one gene, drop another, add a new function.
        let mut mutated = gml_fixture();
        let root = mutated.named("ANNODA-GML").unwrap();
        let tp53 = mutated
            .edges_of(root)
            .iter()
            .find(|e| fragment_key(&mutated, "Gene", e.target) == "TP53")
            .unwrap()
            .target;
        mutated.add_atomic_child(tp53, "Note", "mutated").unwrap();
        let kras = *mutated
            .edges_of(root)
            .iter()
            .find(|e| fragment_key(&mutated, "Gene", e.target) == "KRAS")
            .unwrap();
        let kras_label = mutated.label_name(kras.label).to_string();
        mutated.remove_edge(root, &kras_label, kras.target).unwrap();
        let f = mutated.add_complex_child(root, "Function").unwrap();
        mutated
            .add_atomic_child(f, "FunctionID", "GO:0099")
            .unwrap();
        let staged = ShardedStore::partition(&mutated, "ANNODA-GML", 4).unwrap();

        let changed = sharded.changed_shards(&staged);
        assert_eq!(sharded.changed_fragments(&staged, &changed), 3);
    }

    #[test]
    fn mask_and_stamp_roundtrip() {
        let mask = shard_mask(&[0, 3]);
        assert_eq!(mask, 0b1001);
        let epochs = vec![5, 7, 9, 11];
        assert_eq!(mask_stamp(&epochs, mask), 16);
        // Bumping an unmasked shard leaves the stamp fixed.
        let bumped = vec![5, 8, 9, 11];
        assert_eq!(mask_stamp(&bumped, mask), 16);
        // Bumping a masked shard moves it.
        let moved = vec![6, 7, 9, 11];
        assert_ne!(mask_stamp(&moved, mask), 16);
    }

    #[test]
    fn fragment_key_falls_back_deterministically() {
        let mut s = OemStore::new();
        let root = s.new_complex();
        s.set_name("R", root).unwrap();
        let odd = s.add_complex_child(root, "Widget").unwrap();
        s.add_atomic_child(odd, "Whatever", "w-1").unwrap();
        assert_eq!(fragment_key(&s, "Widget", odd), "w-1");
        let bare = s.add_complex_child(root, "Empty").unwrap();
        assert_eq!(fragment_key(&s, "Empty", bare), "Empty");
        let atom = s.new_atomic("direct");
        s.add_edge(root, "Atom", atom).unwrap();
        assert_eq!(fragment_key(&s, "Atom", atom), "direct");
    }

    #[test]
    fn from_shards_validates_roots() {
        let flat = gml_fixture();
        let sharded = ShardedStore::partition(&flat, "ANNODA-GML", 2).unwrap();
        let rebuilt = ShardedStore::from_shards(
            "ANNODA-GML",
            sharded.shards().to_vec(),
            sharded.epochs().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.shard_count(), 2);
        assert!(ShardedStore::from_shards("NOPE", sharded.shards().to_vec(), vec![1, 1]).is_err());
    }
}
