//! Secondary value indexes over OEM entities.
//!
//! Real annotation databases answer key lookups from indexes, not scans;
//! the wrappers mirror that by indexing their join-key attributes at
//! export time. A [`ValueIndex`] maps the *textual* form of an
//! attribute's value to the parent entity objects carrying it.
//!
//! Text keying interacts with Lorel's coercing equality: a numeric
//! literal can match differently-spelled numeric values, which a text
//! index cannot see. Callers therefore restrict index use to
//! **non-numeric string keys** (symbols, accessions, organism names),
//! where text equality and Lorel equality provably coincide for true
//! matches — residual false positives (e.g. a boolean attribute whose
//! text happens to equal the key) are removed by re-verifying candidates.

use std::collections::HashMap;

use crate::oid::Oid;
use crate::store::OemStore;

/// An index over one attribute of one entity set.
#[derive(Debug, Clone, Default)]
pub struct ValueIndex {
    by_text: HashMap<String, Vec<Oid>>,
    entries: usize,
}

impl ValueIndex {
    /// Builds the index of `attr` across the given parent objects. A
    /// parent appears once per distinct attribute instance (multi-valued
    /// attributes index the parent under each value).
    pub fn build(store: &OemStore, parents: &[Oid], attr: &str) -> Self {
        let mut by_text: HashMap<String, Vec<Oid>> = HashMap::new();
        let mut entries = 0usize;
        for &p in parents {
            for child in store.children(p, attr) {
                if let Some(v) = store.value_of(child) {
                    let bucket = by_text.entry(v.as_text()).or_default();
                    if bucket.last() != Some(&p) {
                        bucket.push(p);
                        entries += 1;
                    }
                }
            }
        }
        ValueIndex { by_text, entries }
    }

    /// Parent objects whose attribute text equals `key`.
    pub fn lookup(&self, key: &str) -> &[Oid] {
        self.by_text.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of indexed (value, parent) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when nothing was indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.by_text.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AtomicValue;

    fn store() -> (OemStore, Vec<Oid>) {
        let mut db = OemStore::new();
        let root = db.new_complex();
        let mut parents = Vec::new();
        for (sym, extra) in [("TP53", Some("TP53-ALT")), ("BRCA1", None), ("TP53", None)] {
            let g = db.add_complex_child(root, "Gene").unwrap();
            db.add_atomic_child(g, "Symbol", sym).unwrap();
            if let Some(e) = extra {
                db.add_atomic_child(g, "Symbol", e).unwrap();
            }
            parents.push(g);
        }
        (db, parents)
    }

    #[test]
    fn lookup_finds_all_parents_per_value() {
        let (db, parents) = store();
        let idx = ValueIndex::build(&db, &parents, "Symbol");
        assert_eq!(idx.lookup("TP53"), &[parents[0], parents[2]]);
        assert_eq!(idx.lookup("BRCA1"), &[parents[1]]);
        assert_eq!(idx.lookup("TP53-ALT"), &[parents[0]]);
        assert!(idx.lookup("MISSING").is_empty());
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.distinct(), 3);
    }

    #[test]
    fn numeric_values_index_by_canonical_text() {
        let mut db = OemStore::new();
        let root = db.new_complex();
        let g = db.add_complex_child(root, "Gene").unwrap();
        db.add_atomic_child(g, "Id", AtomicValue::Int(7157))
            .unwrap();
        let idx = ValueIndex::build(&db, &[g], "Id");
        assert_eq!(idx.lookup("7157"), &[g]);
    }

    #[test]
    fn empty_inputs() {
        let db = OemStore::new();
        let idx = ValueIndex::build(&db, &[], "x");
        assert!(idx.is_empty());
    }
}
