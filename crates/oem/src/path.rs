//! Lorel-style path expressions over an OEM store.
//!
//! A path expression is a dot-separated sequence of steps:
//!
//! * a plain label (`LocusLink.Symbol`),
//! * `%` — matches exactly one edge with any label,
//! * `#` — matches any path of length ≥ 0 (the Lorel "general path
//!   expression" wildcard),
//! * `(a|b)` — alternation between labels in one step.
//!
//! Evaluation is set-at-a-time: from a set of start objects, each step maps
//! the current frontier to the next. `#` computes the reachability closure
//! with cycle protection. The result preserves first-reached order and is
//! deduplicated by oid, matching Lorel's oid-set semantics.

use std::collections::HashSet;
use std::fmt;

use crate::oid::Oid;
use crate::store::OemStore;

/// One step in a path expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PathStep {
    /// Follow edges with exactly this label.
    Label(String),
    /// Follow one edge with any label (`%`).
    AnyOne,
    /// Follow any path, including the empty one (`#`).
    AnyPath,
    /// Follow one edge whose label is any of the alternatives (`(a|b)`).
    Alt(Vec<String>),
}

impl fmt::Display for PathStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathStep::Label(l) => f.write_str(l),
            PathStep::AnyOne => f.write_str("%"),
            PathStep::AnyPath => f.write_str("#"),
            PathStep::Alt(ls) => write!(f, "({})", ls.join("|")),
        }
    }
}

/// A parsed path expression.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PathExpr {
    steps: Vec<PathStep>,
}

impl PathExpr {
    /// Builds a path expression from explicit steps.
    pub fn new(steps: Vec<PathStep>) -> Self {
        PathExpr { steps }
    }

    /// Parses a dot-separated textual path (`Links.%.Url`, `#.Symbol`,
    /// `(GO|Go).Term`). An empty string yields the empty path, which maps
    /// every object to itself.
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim();
        if text.is_empty() {
            return Ok(PathExpr::default());
        }
        let mut steps = Vec::new();
        for raw in text.split('.') {
            let tok = raw.trim();
            if tok.is_empty() {
                return Err(format!("empty step in path `{text}`"));
            }
            steps.push(match tok {
                "%" => PathStep::AnyOne,
                "#" => PathStep::AnyPath,
                _ if tok.starts_with('(') && tok.ends_with(')') => {
                    let inner = &tok[1..tok.len() - 1];
                    let alts: Vec<String> = inner
                        .split('|')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if alts.is_empty() {
                        return Err(format!("empty alternation in `{tok}`"));
                    }
                    PathStep::Alt(alts)
                }
                _ => PathStep::Label(tok.to_string()),
            });
        }
        Ok(PathExpr { steps })
    }

    /// The steps of this path.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the empty (identity) path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a step, returning the extended path.
    pub fn then(mut self, step: PathStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Evaluates the path from a single start object.
    pub fn eval(&self, store: &OemStore, start: Oid) -> Vec<Oid> {
        self.eval_many(store, &[start])
    }

    /// Evaluates the path from a set of start objects, deduplicating by
    /// oid and preserving first-reached order.
    pub fn eval_many(&self, store: &OemStore, starts: &[Oid]) -> Vec<Oid> {
        let mut frontier: Vec<Oid> = dedup_in_order(starts.iter().copied());
        for step in &self.steps {
            frontier = apply_step(store, &frontier, step);
            if frontier.is_empty() {
                break;
            }
        }
        frontier
    }

    /// True if at least one instance of the path exists from `start`.
    pub fn exists(&self, store: &OemStore, start: Oid) -> bool {
        !self.eval(store, start).is_empty()
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.steps {
            if !first {
                f.write_str(".")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        Ok(())
    }
}

fn apply_step(store: &OemStore, frontier: &[Oid], step: &PathStep) -> Vec<Oid> {
    match step {
        PathStep::Label(name) => {
            let Some(label) = store.labels().get(name) else {
                return Vec::new();
            };
            dedup_in_order(frontier.iter().flat_map(|&o| {
                store
                    .edges_of(o)
                    .iter()
                    .filter(move |e| e.label == label)
                    .map(|e| e.target)
            }))
        }
        PathStep::AnyOne => dedup_in_order(
            frontier
                .iter()
                .flat_map(|&o| store.edges_of(o).iter().map(|e| e.target)),
        ),
        PathStep::Alt(names) => {
            let labels: Vec<_> = names.iter().filter_map(|n| store.labels().get(n)).collect();
            dedup_in_order(frontier.iter().flat_map(|&o| {
                store
                    .edges_of(o)
                    .iter()
                    .filter(|e| labels.contains(&e.label))
                    .map(|e| e.target)
            }))
        }
        PathStep::AnyPath => {
            // Reflexive-transitive closure, BFS order.
            let mut seen: HashSet<Oid> = frontier.iter().copied().collect();
            let mut order: Vec<Oid> = dedup_in_order(frontier.iter().copied());
            let mut queue: Vec<Oid> = order.clone();
            while let Some(o) = queue.pop() {
                for e in store.edges_of(o) {
                    if seen.insert(e.target) {
                        order.push(e.target);
                        queue.push(e.target);
                    }
                }
            }
            order
        }
    }
}

fn dedup_in_order(iter: impl Iterator<Item = Oid>) -> Vec<Oid> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for o in iter {
        if seen.insert(o) {
            out.push(o);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AtomicValue;

    /// root -Gene-> g1 -Symbol-> "TP53"
    ///      -Gene-> g2 -Symbol-> "BRCA1"
    ///      -Gene-> g2 (duplicate via second label path below)
    ///      -Pseudo-> g2
    fn sample() -> (OemStore, Oid) {
        let mut db = OemStore::new();
        let root = db.new_complex();
        let g1 = db.add_complex_child(root, "Gene").unwrap();
        db.add_atomic_child(g1, "Symbol", "TP53").unwrap();
        let g2 = db.add_complex_child(root, "Gene").unwrap();
        db.add_atomic_child(g2, "Symbol", "BRCA1").unwrap();
        db.add_edge(root, "Pseudo", g2).unwrap();
        (db, root)
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["Gene.Symbol", "#.Symbol", "Links.%", "(GO|Go).Term"] {
            let p = PathExpr::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!(PathExpr::parse("a..b").is_err());
        assert!(PathExpr::parse("(|)").is_err());
        assert!(PathExpr::parse("").unwrap().is_empty());
    }

    #[test]
    fn label_step_follows_only_that_label() {
        let (db, root) = sample();
        let genes = PathExpr::parse("Gene").unwrap().eval(&db, root);
        assert_eq!(genes.len(), 2);
        let pseudo = PathExpr::parse("Pseudo").unwrap().eval(&db, root);
        assert_eq!(pseudo.len(), 1);
    }

    #[test]
    fn multi_step_path_reaches_values() {
        let (db, root) = sample();
        let syms = PathExpr::parse("Gene.Symbol").unwrap().eval(&db, root);
        let texts: Vec<String> = syms
            .iter()
            .map(|&o| db.value_of(o).unwrap().as_text())
            .collect();
        assert_eq!(texts, vec!["TP53", "BRCA1"]);
    }

    #[test]
    fn missing_label_yields_empty_not_error() {
        let (db, root) = sample();
        assert!(PathExpr::parse("NoSuch.Symbol")
            .unwrap()
            .eval(&db, root)
            .is_empty());
    }

    #[test]
    fn any_one_matches_each_edge_once() {
        let (db, root) = sample();
        // g1, g2 (deduped: g2 reachable via Gene and Pseudo).
        let step = PathExpr::parse("%").unwrap().eval(&db, root);
        assert_eq!(step.len(), 2);
    }

    #[test]
    fn any_path_includes_start_and_handles_cycles() {
        let mut db = OemStore::new();
        let a = db.new_complex();
        let b = db.add_complex_child(a, "next").unwrap();
        db.add_edge(b, "next", a).unwrap();
        let all = PathExpr::parse("#").unwrap().eval(&db, a);
        assert_eq!(all.len(), 2);
        assert!(all.contains(&a));
        assert!(all.contains(&b));
    }

    #[test]
    fn any_path_then_label_finds_deep_values() {
        let (db, root) = sample();
        let syms = PathExpr::parse("#.Symbol").unwrap().eval(&db, root);
        assert_eq!(syms.len(), 2);
    }

    #[test]
    fn alternation_unions_labels() {
        let (db, root) = sample();
        let both = PathExpr::parse("(Gene|Pseudo)").unwrap().eval(&db, root);
        assert_eq!(both.len(), 2); // g1 and g2, deduped
    }

    #[test]
    fn empty_path_is_identity() {
        let (db, root) = sample();
        assert_eq!(PathExpr::default().eval(&db, root), vec![root]);
    }

    #[test]
    fn duplicate_starts_are_deduplicated() {
        let (db, root) = sample();
        let p = PathExpr::parse("Gene").unwrap();
        let r = p.eval_many(&db, &[root, root]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn eval_from_atomic_object_is_empty_for_nonempty_path() {
        let mut db = OemStore::new();
        let a = db.new_atomic(AtomicValue::Int(1));
        assert!(PathExpr::parse("x").unwrap().eval(&db, a).is_empty());
        assert_eq!(PathExpr::default().eval(&db, a), vec![a]);
    }
}
