//! The arena-backed OEM graph store.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::cache::QueryCache;
use crate::error::OemError;
use crate::index::ValueIndex;
use crate::label::{Label, LabelInterner};
use crate::object::{Edge, Object, ObjectKind};
use crate::oid::Oid;
use crate::path::PathExpr;
use crate::stats::AttributeStats;
use crate::value::{AtomicValue, OemType};

/// An OEM database: an arena of objects, an interned label table, and a
/// set of *named roots* (e.g. the `LocusLink` entry object of an OML, or
/// the `ANNODA-GML` object of the global model).
///
/// ```
/// use annoda_oem::{OemStore, AtomicValue};
///
/// let mut db = OemStore::new();
/// let locus = db.new_complex();
/// let id = db.new_atomic(AtomicValue::Int(7157));
/// db.add_edge(locus, "LocusID", id).unwrap();
/// db.set_name("LocusLink", locus).unwrap();
///
/// assert_eq!(db.named("LocusLink"), Some(locus));
/// assert_eq!(db.children(locus, "LocusID").count(), 1);
/// ```
#[derive(Default, Debug)]
pub struct OemStore {
    objects: Vec<Object>,
    labels: LabelInterner,
    names: BTreeMap<String, Oid>,
    /// Memoised value indexes / stats / cardinalities over this store's
    /// content; cleared by every content mutation, never cloned.
    cache: QueryCache,
}

/// Process-wide count of full [`OemStore`] clones, used by benches and
/// tests to assert the serving warm path is zero-clone.
static STORE_CLONES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Number of full [`OemStore`] clones performed by this process so far.
pub fn store_clone_count() -> u64 {
    STORE_CLONES.load(std::sync::atomic::Ordering::Relaxed)
}

impl Clone for OemStore {
    fn clone(&self) -> Self {
        STORE_CLONES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        OemStore {
            objects: self.objects.clone(),
            labels: self.labels.clone(),
            names: self.names.clone(),
            cache: QueryCache::default(),
        }
    }
}

impl OemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The label interner (read access).
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// Interns a label in this store's table.
    pub fn intern_label(&mut self, name: &str) -> Label {
        self.labels.intern(name)
    }

    /// Resolves a label id to its string.
    pub fn label_name(&self, label: Label) -> &str {
        self.labels.resolve(label)
    }

    // ----- construction -------------------------------------------------

    /// Allocates a fresh atomic object.
    pub fn new_atomic(&mut self, value: impl Into<AtomicValue>) -> Oid {
        self.push(Object {
            kind: ObjectKind::Atomic(value.into()),
        })
    }

    /// Allocates a fresh complex object with no references yet.
    pub fn new_complex(&mut self) -> Oid {
        self.push(Object {
            kind: ObjectKind::Complex(Vec::new()),
        })
    }

    fn push(&mut self, object: Object) -> Oid {
        let oid = Oid(self.objects.len() as u32);
        self.objects.push(object);
        self.cache.clear();
        oid
    }

    /// Adds the reference `(label, to)` to the complex object `from`.
    /// Set semantics: an identical `(label, to)` pair already present is
    /// not duplicated. Returns whether the edge was newly inserted.
    pub fn add_edge(&mut self, from: Oid, label: &str, to: Oid) -> Result<bool, OemError> {
        if to.index() >= self.objects.len() {
            return Err(OemError::DanglingOid(format!("{to} as edge target")));
        }
        let label = self.labels.intern(label);
        let from_obj = self
            .objects
            .get_mut(from.index())
            .ok_or_else(|| OemError::DanglingOid(format!("{from} as edge source")))?;
        let inserted = match &mut from_obj.kind {
            ObjectKind::Atomic(_) => Err(OemError::NotComplex(format!(
                "{from} is atomic; cannot hold references"
            ))),
            ObjectKind::Complex(edges) => {
                let edge = Edge { label, target: to };
                if edges.contains(&edge) {
                    Ok(false)
                } else {
                    edges.push(edge);
                    Ok(true)
                }
            }
        };
        if inserted == Ok(true) {
            self.cache.clear();
        }
        inserted
    }

    /// Convenience: allocates an atomic child and links it under `label`.
    pub fn add_atomic_child(
        &mut self,
        from: Oid,
        label: &str,
        value: impl Into<AtomicValue>,
    ) -> Result<Oid, OemError> {
        let child = self.new_atomic(value);
        self.add_edge(from, label, child)?;
        Ok(child)
    }

    /// Convenience: allocates a complex child and links it under `label`.
    pub fn add_complex_child(&mut self, from: Oid, label: &str) -> Result<Oid, OemError> {
        let child = self.new_complex();
        self.add_edge(from, label, child)?;
        Ok(child)
    }

    /// Registers `oid` under a root name. Root names give queries their
    /// entry points (`from ANNODA-GML …`).
    pub fn set_name(&mut self, name: &str, oid: Oid) -> Result<(), OemError> {
        if oid.index() >= self.objects.len() {
            return Err(OemError::DanglingOid(format!("{oid} as named root")));
        }
        if self.names.contains_key(name) {
            return Err(OemError::DuplicateName(name.to_string()));
        }
        self.names.insert(name.to_string(), oid);
        Ok(())
    }

    /// Re-points or inserts a root name without the duplicate check; used
    /// when query answers overwrite a previous `answer` root.
    pub fn set_name_overwrite(&mut self, name: &str, oid: Oid) -> Result<(), OemError> {
        if oid.index() >= self.objects.len() {
            return Err(OemError::DanglingOid(format!("{oid} as named root")));
        }
        self.names.insert(name.to_string(), oid);
        Ok(())
    }

    /// Unregisters a root name, returning the oid it pointed at. The
    /// objects stay live (compaction reclaims them); removing an unknown
    /// name is a no-op.
    pub fn remove_name(&mut self, name: &str) -> Option<Oid> {
        self.names.remove(name)
    }

    // ----- access -------------------------------------------------------

    /// The object behind `oid`, if live.
    pub fn get(&self, oid: Oid) -> Option<&Object> {
        self.objects.get(oid.index())
    }

    /// The named root, if registered.
    pub fn named(&self, name: &str) -> Option<Oid> {
        self.names.get(name).copied()
    }

    /// All named roots in name order.
    pub fn names(&self) -> impl Iterator<Item = (&str, Oid)> {
        self.names.iter().map(|(n, &o)| (n.as_str(), o))
    }

    /// The object's type; `None` for a dangling oid.
    pub fn type_of(&self, oid: Oid) -> Option<OemType> {
        self.get(oid).map(|o| o.oem_type())
    }

    /// The atomic value of `oid`, if it is a live atomic object.
    pub fn value_of(&self, oid: Oid) -> Option<&AtomicValue> {
        self.get(oid).and_then(|o| o.value())
    }

    /// Outgoing references of `oid` (empty slice for atomic or dangling).
    pub fn edges_of(&self, oid: Oid) -> &[Edge] {
        self.get(oid).map(|o| o.edges()).unwrap_or(&[])
    }

    /// Recovers the paper's `(label, oid, type)` triple for an edge.
    pub fn edge_type(&self, edge: Edge) -> Option<OemType> {
        self.type_of(edge.target)
    }

    /// Children of `oid` reachable over an edge labelled `label`.
    pub fn children<'a>(&'a self, oid: Oid, label: &str) -> impl Iterator<Item = Oid> + 'a {
        let wanted = self.labels.get(label);
        self.edges_of(oid)
            .iter()
            .filter(move |e| Some(e.label) == wanted)
            .map(|e| e.target)
    }

    /// The first child under `label`, convenient for functional attributes
    /// such as `LocusID`.
    pub fn child(&self, oid: Oid, label: &str) -> Option<Oid> {
        self.children(oid, label).next()
    }

    /// The atomic value of the first child under `label`.
    pub fn child_value(&self, oid: Oid, label: &str) -> Option<&AtomicValue> {
        self.child(oid, label).and_then(|c| self.value_of(c))
    }

    /// Iterates all live oids in allocation order.
    pub fn oids(&self) -> impl Iterator<Item = Oid> {
        (0..self.objects.len() as u32).map(Oid)
    }

    /// The distinct labels leaving `oid`, in first-occurrence order.
    pub fn out_labels(&self, oid: Oid) -> Vec<Label> {
        let mut seen = Vec::new();
        for e in self.edges_of(oid) {
            if !seen.contains(&e.label) {
                seen.push(e.label);
            }
        }
        seen
    }

    // ----- memoised derived structures ------------------------------------

    /// A [`ValueIndex`] of `attr` over the objects `path` reaches from
    /// `root`, built lazily and memoised on this store until the next
    /// content mutation. Bucket order follows `path.eval_many`'s
    /// enumeration order, so index-seeded candidate lists preserve the
    /// order a scan of the same path would produce.
    pub fn cached_value_index(&self, root: Oid, path: &PathExpr, attr: &str) -> Arc<ValueIndex> {
        self.cache
            .index((root, path.to_string(), attr.to_string()), || {
                let parents = path.eval_many(self, &[root]);
                ValueIndex::build(self, &parents, attr)
            })
    }

    /// [`AttributeStats`] of `attr` over the objects `path` reaches from
    /// `root`, memoised like [`Self::cached_value_index`].
    pub fn cached_attribute_stats(
        &self,
        root: Oid,
        path: &PathExpr,
        attr: &str,
    ) -> Arc<AttributeStats> {
        self.cache
            .stats((root, path.to_string(), attr.to_string()), || {
                let parents = path.eval_many(self, &[root]);
                AttributeStats::collect(self, &parents, attr)
            })
    }

    /// Number of objects `path` reaches from `root` (the label
    /// cardinality the planner orders `from` clauses by), memoised until
    /// the next content mutation.
    pub fn cached_cardinality(&self, root: Oid, path: &PathExpr) -> usize {
        self.cache.cardinality((root, path.to_string()), || {
            path.eval_many(self, &[root]).len()
        })
    }

    /// Number of memoised value indexes (introspection for tests and
    /// `bench_report`).
    pub fn cached_index_count(&self) -> usize {
        self.cache.index_count()
    }

    // ----- mutation beyond growth ----------------------------------------

    /// Replaces the value of an atomic object (used by warehouse refresh).
    pub fn set_value(&mut self, oid: Oid, value: impl Into<AtomicValue>) -> Result<(), OemError> {
        let obj = self
            .objects
            .get_mut(oid.index())
            .ok_or_else(|| OemError::DanglingOid(oid.to_string()))?;
        let replaced = match &mut obj.kind {
            ObjectKind::Atomic(v) => {
                *v = value.into();
                Ok(())
            }
            ObjectKind::Complex(_) => Err(OemError::NotComplex(format!(
                "{oid} is complex; cannot set an atomic value"
            ))),
        };
        if replaced.is_ok() {
            self.cache.clear();
        }
        replaced
    }

    /// Removes the reference `(label, to)` from `from`. Returns whether an
    /// edge was removed.
    pub fn remove_edge(&mut self, from: Oid, label: &str, to: Oid) -> Result<bool, OemError> {
        let Some(label) = self.labels.get(label) else {
            return Ok(false);
        };
        let from_obj = self
            .objects
            .get_mut(from.index())
            .ok_or_else(|| OemError::DanglingOid(from.to_string()))?;
        let removed = match &mut from_obj.kind {
            ObjectKind::Atomic(_) => Err(OemError::NotComplex(from.to_string())),
            ObjectKind::Complex(edges) => {
                let before = edges.len();
                edges.retain(|e| !(e.label == label && e.target == to));
                Ok(edges.len() != before)
            }
        };
        if removed == Ok(true) {
            self.cache.clear();
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AtomicType;

    fn sample() -> (OemStore, Oid) {
        let mut db = OemStore::new();
        let root = db.new_complex();
        db.add_atomic_child(root, "LocusID", AtomicValue::Int(7157))
            .unwrap();
        db.add_atomic_child(root, "Symbol", "TP53").unwrap();
        db.set_name("LocusLink", root).unwrap();
        (db, root)
    }

    #[test]
    fn construction_and_lookup() {
        let (db, root) = sample();
        assert_eq!(db.named("LocusLink"), Some(root));
        assert_eq!(db.type_of(root), Some(OemType::Complex));
        assert_eq!(
            db.child_value(root, "LocusID"),
            Some(&AtomicValue::Int(7157))
        );
        assert_eq!(
            db.child(root, "Symbol").and_then(|c| db.type_of(c)),
            Some(OemType::Atomic(AtomicType::Str))
        );
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn edges_have_set_semantics() {
        let mut db = OemStore::new();
        let a = db.new_complex();
        let b = db.new_atomic(1i64);
        assert!(db.add_edge(a, "x", b).unwrap());
        assert!(!db.add_edge(a, "x", b).unwrap());
        assert_eq!(db.edges_of(a).len(), 1);
        // Same target under a different label is a different reference.
        assert!(db.add_edge(a, "y", b).unwrap());
        assert_eq!(db.edges_of(a).len(), 2);
    }

    #[test]
    fn atomic_objects_reject_edges() {
        let mut db = OemStore::new();
        let a = db.new_atomic("v");
        let b = db.new_atomic("w");
        assert!(matches!(
            db.add_edge(a, "x", b),
            Err(OemError::NotComplex(_))
        ));
    }

    #[test]
    fn dangling_targets_are_rejected() {
        let mut db = OemStore::new();
        let a = db.new_complex();
        assert!(matches!(
            db.add_edge(a, "x", Oid(99)),
            Err(OemError::DanglingOid(_))
        ));
        assert!(matches!(
            db.set_name("r", Oid(99)),
            Err(OemError::DanglingOid(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected_but_overwrite_allowed() {
        let mut db = OemStore::new();
        let a = db.new_complex();
        let b = db.new_complex();
        db.set_name("answer", a).unwrap();
        assert!(matches!(
            db.set_name("answer", b),
            Err(OemError::DuplicateName(_))
        ));
        db.set_name_overwrite("answer", b).unwrap();
        assert_eq!(db.named("answer"), Some(b));
        assert_eq!(db.remove_name("answer"), Some(b));
        assert_eq!(db.named("answer"), None);
        assert_eq!(db.remove_name("answer"), None);
    }

    #[test]
    fn children_filters_by_label() {
        let mut db = OemStore::new();
        let root = db.new_complex();
        let g1 = db.add_complex_child(root, "Gene").unwrap();
        let g2 = db.add_complex_child(root, "Gene").unwrap();
        db.add_complex_child(root, "Disease").unwrap();
        let genes: Vec<Oid> = db.children(root, "Gene").collect();
        assert_eq!(genes, vec![g1, g2]);
        assert_eq!(db.children(root, "Unknown").count(), 0);
    }

    #[test]
    fn set_value_replaces_atoms_only() {
        let mut db = OemStore::new();
        let a = db.new_atomic(1i64);
        db.set_value(a, 2i64).unwrap();
        assert_eq!(db.value_of(a), Some(&AtomicValue::Int(2)));
        let c = db.new_complex();
        assert!(db.set_value(c, 3i64).is_err());
    }

    #[test]
    fn remove_edge_works() {
        let (mut db, root) = sample();
        let sym = db.child(root, "Symbol").unwrap();
        assert!(db.remove_edge(root, "Symbol", sym).unwrap());
        assert!(!db.remove_edge(root, "Symbol", sym).unwrap());
        assert_eq!(db.child(root, "Symbol"), None);
        // Removing over a never-interned label is a no-op, not an error.
        assert!(!db.remove_edge(root, "NeverSeen", sym).unwrap());
    }

    #[test]
    fn out_labels_deduplicates_in_order() {
        let mut db = OemStore::new();
        let root = db.new_complex();
        db.add_complex_child(root, "Gene").unwrap();
        db.add_complex_child(root, "Disease").unwrap();
        db.add_complex_child(root, "Gene").unwrap();
        let names: Vec<&str> = db
            .out_labels(root)
            .into_iter()
            .map(|l| db.label_name(l))
            .collect();
        assert_eq!(names, vec!["Gene", "Disease"]);
    }
}
