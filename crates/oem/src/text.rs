//! The indented textual notation of Figure 3.
//!
//! Each line shows `label &oid Type ["value"]`. If the object is atomic its
//! value is given on that line; if it is complex and has not been described
//! earlier, subsequent indented lines describe its object references. A
//! complex object that was already described appears as a bare reference
//! line (label, oid, `Complex`) with no expansion — this is how shared
//! subobjects and cycles are rendered.
//!
//! ```
//! use annoda_oem::{OemStore, AtomicValue, text};
//!
//! let mut db = OemStore::new();
//! let root = db.new_complex();
//! db.add_atomic_child(root, "LocusID", AtomicValue::Int(7157)).unwrap();
//! db.set_name("LocusLink", root).unwrap();
//!
//! let rendered = text::write_named(&db, "LocusLink").unwrap();
//! let (db2, root2) = text::read(&rendered).unwrap();
//! assert_eq!(db2.named("LocusLink"), Some(root2));
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::error::OemError;
use crate::object::ObjectKind;
use crate::oid::Oid;
use crate::overlay::OemRead;
use crate::store::OemStore;
use crate::value::{AtomicType, AtomicValue, OemType};

const INDENT: &str = "    ";

/// Renders the subgraph under the named root in Figure-3 notation.
pub fn write_named<S: OemRead + ?Sized>(store: &S, name: &str) -> Result<String, OemError> {
    let root = store
        .named(name)
        .ok_or_else(|| OemError::DanglingOid(format!("named root {name}")))?;
    Ok(write_rooted(store, name, root))
}

/// Renders the subgraph under `root`, labelling the top line `label`.
pub fn write_rooted<S: OemRead + ?Sized>(store: &S, label: &str, root: Oid) -> String {
    let mut out = String::new();
    let mut described: HashMap<Oid, ()> = HashMap::new();
    write_object(store, label, root, 0, &mut described, &mut out);
    out
}

fn write_object<S: OemRead + ?Sized>(
    store: &S,
    label: &str,
    oid: Oid,
    depth: usize,
    described: &mut HashMap<Oid, ()>,
    out: &mut String,
) {
    for _ in 0..depth {
        out.push_str(INDENT);
    }
    let Some(obj) = OemRead::get(store, oid) else {
        let _ = writeln!(out, "{label} {oid} <dangling>");
        return;
    };
    match obj.kind() {
        ObjectKind::Atomic(v) => {
            let _ = writeln!(out, "{label} {oid} {} \"{}\"", v.atomic_type(), escape(v));
        }
        ObjectKind::Complex(edges) => {
            let first = described.insert(oid, ()).is_none();
            let _ = writeln!(out, "{label} {oid} Complex");
            if first {
                for e in edges {
                    write_object(
                        store,
                        store.label_name(e.label),
                        e.target,
                        depth + 1,
                        described,
                        out,
                    );
                }
            }
        }
    }
}

fn escape(v: &AtomicValue) -> String {
    let raw = match v {
        AtomicValue::Gif(bytes) => hex(bytes),
        other => other.as_text(),
    };
    let mut s = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            c => s.push(c),
        }
    }
    s
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

fn unhex(s: &str, line: usize) -> Result<Vec<u8>, OemError> {
    if !s.len().is_multiple_of(2) {
        return Err(OemError::Parse {
            line,
            message: "odd-length gif hex".into(),
        });
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| OemError::Parse {
                line,
                message: format!("bad gif hex at byte {i}"),
            })
        })
        .collect()
}

/// Parses Figure-3 notation back into a fresh store.
///
/// Returns the store and the root oid; the root's label becomes a named
/// root in the new store. File oids are remapped to fresh oids, preserving
/// sharing (a complex oid re-referenced later resolves to the same object).
pub fn read(input: &str) -> Result<(OemStore, Oid), OemError> {
    let mut store = OemStore::new();
    // Map from file oid number to store oid.
    let mut remap: HashMap<u64, Oid> = HashMap::new();
    // Stack of (depth, store oid) for complex parents.
    let mut stack: Vec<(usize, Oid)> = Vec::new();
    let mut root: Option<(String, Oid)> = None;

    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        if raw_line.trim().is_empty() {
            continue;
        }
        let depth = leading_indent(raw_line, line_no)?;
        let parsed = parse_line(raw_line.trim_start(), line_no)?;

        while let Some(&(d, _)) = stack.last() {
            if d >= depth {
                stack.pop();
            } else {
                break;
            }
        }
        if depth > 0 && stack.is_empty() {
            return Err(OemError::Parse {
                line: line_no,
                message: "indented line without a complex parent".into(),
            });
        }

        let is_complex = matches!(parsed.payload_kind(), OemType::Complex);
        let oid = resolve_parsed(
            &mut store,
            &mut remap,
            parsed.file_oid,
            parsed.payload,
            line_no,
        )?;

        if let Some(&(_, parent)) = stack.last() {
            store.add_edge(parent, &parsed.label, oid)?;
        } else if root.is_none() {
            root = Some((parsed.label.clone(), oid));
        } else {
            return Err(OemError::Parse {
                line: line_no,
                message: "multiple top-level objects".into(),
            });
        }

        if is_complex {
            stack.push((depth, oid));
        }
    }

    let (name, root) = root.ok_or(OemError::Parse {
        line: 0,
        message: "empty document".into(),
    })?;
    store.set_name_overwrite(&name, root)?;
    Ok((store, root))
}

/// Serialises the whole store — every named root and the objects
/// reachable from them — as a multi-root document. Objects shared
/// between roots are described once; later roots reference them by oid.
pub fn write_store(store: &OemStore) -> String {
    let mut out = String::new();
    let mut described: HashMap<Oid, ()> = HashMap::new();
    for (name, root) in store.names() {
        out.push_str(&format!("@root {name}\n"));
        write_object(store, name, root, 0, &mut described, &mut out);
    }
    out
}

/// Parses a multi-root document produced by [`write_store`].
pub fn read_store(input: &str) -> Result<OemStore, OemError> {
    let mut store = OemStore::new();
    let mut remap: HashMap<u64, Oid> = HashMap::new();
    let mut stack: Vec<(usize, Oid)> = Vec::new();
    let mut pending_root: Option<String> = None;

    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        if raw_line.trim().is_empty() {
            continue;
        }
        if let Some(name) = raw_line.strip_prefix("@root ") {
            pending_root = Some(name.trim().to_string());
            stack.clear();
            continue;
        }
        let depth = leading_indent(raw_line, line_no)?;
        let parsed = parse_line(raw_line.trim_start(), line_no)?;
        while let Some(&(d, _)) = stack.last() {
            if d >= depth {
                stack.pop();
            } else {
                break;
            }
        }
        if depth > 0 && stack.is_empty() {
            return Err(OemError::Parse {
                line: line_no,
                message: "indented line without a complex parent".into(),
            });
        }
        let is_complex = matches!(parsed.payload_kind(), OemType::Complex);
        let oid = resolve_parsed(
            &mut store,
            &mut remap,
            parsed.file_oid,
            parsed.payload,
            line_no,
        )?;
        if let Some(&(_, parent)) = stack.last() {
            store.add_edge(parent, &parsed.label, oid)?;
        } else if let Some(name) = pending_root.take() {
            store.set_name_overwrite(&name, oid)?;
        } else {
            return Err(OemError::Parse {
                line: line_no,
                message: "top-level object without an @root header".into(),
            });
        }
        if is_complex {
            stack.push((depth, oid));
        }
    }
    Ok(store)
}

/// Resolves one parsed line's object against the oid remap (shared by
/// [`read`] and [`read_store`]).
fn resolve_parsed(
    store: &mut OemStore,
    remap: &mut HashMap<u64, Oid>,
    file_oid: u64,
    payload: Payload,
    line_no: usize,
) -> Result<Oid, OemError> {
    Ok(match payload {
        Payload::Atomic(value) => {
            if let Some(&existing) = remap.get(&file_oid) {
                match store.value_of(existing) {
                    Some(v) if *v == value => existing,
                    _ => {
                        return Err(OemError::Parse {
                            line: line_no,
                            message: format!("oid &{file_oid} re-described with a different value"),
                        })
                    }
                }
            } else {
                let oid = store.new_atomic(value);
                remap.insert(file_oid, oid);
                oid
            }
        }
        Payload::Complex => *remap.entry(file_oid).or_insert_with(|| store.new_complex()),
    })
}

/// Saves the whole store to a file in the multi-root notation.
pub fn save_to_file(store: &OemStore, path: &std::path::Path) -> Result<(), OemError> {
    std::fs::write(path, write_store(store))
        .map_err(|e| OemError::Io(crate::error::IoFailure::new("write", path, &e)))
}

/// Loads a store previously saved with [`save_to_file`].
pub fn load_from_file(path: &std::path::Path) -> Result<OemStore, OemError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| OemError::Io(crate::error::IoFailure::new("read", path, &e)))?;
    read_store(&text)
}

struct ParsedLine {
    label: String,
    file_oid: u64,
    payload: Payload,
}

enum Payload {
    Atomic(AtomicValue),
    Complex,
}

impl ParsedLine {
    fn payload_kind(&self) -> OemType {
        match &self.payload {
            Payload::Atomic(v) => OemType::Atomic(v.atomic_type()),
            Payload::Complex => OemType::Complex,
        }
    }
}

fn leading_indent(line: &str, line_no: usize) -> Result<usize, OemError> {
    let spaces = line.len() - line.trim_start_matches(' ').len();
    if line.trim_start_matches(' ').starts_with('\t') {
        return Err(OemError::Parse {
            line: line_no,
            message: "tabs are not valid indentation".into(),
        });
    }
    if !spaces.is_multiple_of(INDENT.len()) {
        return Err(OemError::Parse {
            line: line_no,
            message: format!(
                "indent of {spaces} spaces is not a multiple of {}",
                INDENT.len()
            ),
        });
    }
    Ok(spaces / INDENT.len())
}

fn parse_line(rest: &str, line_no: usize) -> Result<ParsedLine, OemError> {
    let err = |message: String| OemError::Parse {
        line: line_no,
        message,
    };
    let mut parts = rest.splitn(3, ' ');
    let label = parts
        .next()
        .filter(|s| !s.is_empty())
        .ok_or_else(|| err("missing label".into()))?
        .to_string();
    let oid_tok = parts.next().ok_or_else(|| err("missing oid".into()))?;
    let file_oid = oid_tok
        .strip_prefix('&')
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| err(format!("bad oid token `{oid_tok}`")))?;
    let tail = parts.next().ok_or_else(|| err("missing type".into()))?;
    let (type_tok, value_tok) = match tail.split_once(' ') {
        Some((t, v)) => (t, Some(v)),
        None => (tail, None),
    };
    let ty =
        OemType::from_name(type_tok).ok_or_else(|| err(format!("unknown type `{type_tok}`")))?;
    let payload = match ty {
        OemType::Complex => {
            if value_tok.is_some() {
                return Err(err("complex object cannot carry a value".into()));
            }
            Payload::Complex
        }
        OemType::Atomic(aty) => {
            let quoted = value_tok.ok_or_else(|| err("atomic object missing value".into()))?;
            let text = unquote(quoted, line_no)?;
            Payload::Atomic(atom_from_text(aty, &text, line_no)?)
        }
    };
    Ok(ParsedLine {
        label,
        file_oid,
        payload,
    })
}

fn unquote(tok: &str, line_no: usize) -> Result<String, OemError> {
    let err = |message: &str| OemError::Parse {
        line: line_no,
        message: message.into(),
    };
    let inner = tok
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err("value must be quoted"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                _ => return Err(err("bad escape sequence")),
            }
        } else if c == '"' {
            return Err(err("unescaped quote inside value"));
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn atom_from_text(ty: AtomicType, text: &str, line_no: usize) -> Result<AtomicValue, OemError> {
    let err = |message: String| OemError::Parse {
        line: line_no,
        message,
    };
    Ok(match ty {
        AtomicType::Int => AtomicValue::Int(
            text.parse()
                .map_err(|_| err(format!("bad integer `{text}`")))?,
        ),
        AtomicType::Real => AtomicValue::Real(
            text.parse()
                .map_err(|_| err(format!("bad real `{text}`")))?,
        ),
        AtomicType::Str => AtomicValue::Str(text.to_string()),
        AtomicType::Bool => AtomicValue::Bool(
            text.parse()
                .map_err(|_| err(format!("bad boolean `{text}`")))?,
        ),
        AtomicType::Url => AtomicValue::Url(text.to_string()),
        AtomicType::Gif => AtomicValue::Gif(unhex(text, line_no)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::structural_eq;

    fn locuslink_fragment() -> OemStore {
        let mut db = OemStore::new();
        let root = db.new_complex();
        db.add_atomic_child(root, "LocusID", AtomicValue::Int(7157))
            .unwrap();
        db.add_atomic_child(root, "Organism", "Homo sapiens")
            .unwrap();
        db.add_atomic_child(root, "Symbol", "TP53").unwrap();
        db.add_atomic_child(root, "Description", "tumor protein p53")
            .unwrap();
        db.add_atomic_child(root, "Position", "17p13.1").unwrap();
        let links = db.add_complex_child(root, "Links").unwrap();
        db.add_atomic_child(
            links,
            "GO",
            AtomicValue::Url("http://www.geneontology.org/GO:0003700".into()),
        )
        .unwrap();
        db.set_name("LocusLink", root).unwrap();
        db
    }

    #[test]
    fn writer_matches_figure3_shape() {
        let db = locuslink_fragment();
        let out = write_named(&db, "LocusLink").unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "LocusLink &0 Complex");
        assert!(lines[1].starts_with("    LocusID &1 Integer \"7157\""));
        assert!(lines
            .iter()
            .any(|l| l.contains("Links") && l.contains("Complex")));
        assert!(lines.iter().any(|l| l.contains("Url")));
    }

    #[test]
    fn round_trip_preserves_structure() {
        let db = locuslink_fragment();
        let out = write_named(&db, "LocusLink").unwrap();
        let (db2, root2) = read(&out).unwrap();
        assert!(structural_eq(
            &db,
            db.named("LocusLink").unwrap(),
            &db2,
            root2
        ));
        // And rendering again is a fixpoint.
        assert_eq!(write_named(&db2, "LocusLink").unwrap(), out);
    }

    #[test]
    fn shared_objects_are_described_once() {
        let mut db = OemStore::new();
        let root = db.new_complex();
        let shared = db.add_complex_child(root, "A").unwrap();
        db.add_atomic_child(shared, "v", 1i64).unwrap();
        db.add_edge(root, "B", shared).unwrap();
        db.set_name("R", root).unwrap();
        let out = write_named(&db, "R").unwrap();
        // `v` appears exactly once: the second reference is not expanded.
        assert_eq!(out.matches("\"1\"").count(), 1);
        let (db2, root2) = read(&out).unwrap();
        // Sharing is preserved on read-back: A and B point at the same oid.
        let a = db2.child(root2, "A").unwrap();
        let b = db2.child(root2, "B").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cycles_render_and_parse() {
        let mut db = OemStore::new();
        let root = db.new_complex();
        let child = db.add_complex_child(root, "Child").unwrap();
        db.add_edge(child, "Parent", root).unwrap();
        db.set_name("R", root).unwrap();
        let out = write_named(&db, "R").unwrap();
        let (db2, root2) = read(&out).unwrap();
        let child2 = db2.child(root2, "Child").unwrap();
        assert_eq!(db2.child(child2, "Parent"), Some(root2));
    }

    #[test]
    fn values_with_quotes_and_newlines_round_trip() {
        let mut db = OemStore::new();
        let root = db.new_complex();
        db.add_atomic_child(root, "Desc", "a \"quoted\"\nline\\path")
            .unwrap();
        db.set_name("R", root).unwrap();
        let out = write_named(&db, "R").unwrap();
        let (db2, root2) = read(&out).unwrap();
        assert_eq!(
            db2.child_value(root2, "Desc"),
            Some(&AtomicValue::Str("a \"quoted\"\nline\\path".into()))
        );
    }

    #[test]
    fn gif_values_round_trip_as_hex() {
        let mut db = OemStore::new();
        let root = db.new_complex();
        db.add_atomic_child(
            root,
            "Image",
            AtomicValue::Gif(vec![0xde, 0xad, 0xbe, 0xef]),
        )
        .unwrap();
        db.set_name("R", root).unwrap();
        let out = write_named(&db, "R").unwrap();
        assert!(out.contains("\"deadbeef\""));
        let (db2, root2) = read(&out).unwrap();
        assert_eq!(
            db2.child_value(root2, "Image"),
            Some(&AtomicValue::Gif(vec![0xde, 0xad, 0xbe, 0xef]))
        );
    }

    #[test]
    fn whole_store_round_trips_with_cross_root_sharing() {
        let mut db = OemStore::new();
        let shared = db.new_complex();
        db.add_atomic_child(shared, "v", 7i64).unwrap();
        let a = db.new_complex();
        db.add_edge(a, "S", shared).unwrap();
        db.add_atomic_child(a, "only", "in A").unwrap();
        let b = db.new_complex();
        db.add_edge(b, "S", shared).unwrap();
        db.set_name("A", a).unwrap();
        db.set_name("B", b).unwrap();

        let doc = write_store(&db);
        assert!(doc.contains("@root A"));
        assert!(doc.contains("@root B"));
        // The shared object's value is described once.
        assert_eq!(doc.matches("\"7\"").count(), 1);

        let back = read_store(&doc).unwrap();
        let ra = back.named("A").unwrap();
        let rb = back.named("B").unwrap();
        assert!(crate::graph::structural_eq(&db, a, &back, ra));
        assert!(crate::graph::structural_eq(&db, b, &back, rb));
        // Cross-root sharing survives.
        assert_eq!(back.child(ra, "S"), back.child(rb, "S"));
    }

    #[test]
    fn file_save_and_load() {
        let mut db = OemStore::new();
        let root = db.new_complex();
        db.add_atomic_child(root, "Symbol", "TP53").unwrap();
        db.set_name("R", root).unwrap();
        let path = std::env::temp_dir().join(format!("annoda-oem-test-{}.oem", std::process::id()));
        save_to_file(&db, &path).unwrap();
        let back = load_from_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(crate::graph::structural_eq(
            &db,
            root,
            &back,
            back.named("R").unwrap()
        ));
        // Missing files surface as Io errors.
        assert!(matches!(
            load_from_file(std::path::Path::new("/no/such/annoda/file")),
            Err(OemError::Io(_))
        ));
    }

    #[test]
    fn read_store_rejects_headerless_top_level() {
        assert!(matches!(
            read_store("Root &0 Complex\n"),
            Err(OemError::Parse { .. })
        ));
        // Empty documents are fine (an empty store).
        assert!(read_store("").unwrap().is_empty());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "Root &0 Complex\n    Child &1 Nonsense \"x\"\n";
        match read(bad) {
            Err(OemError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn shared_atoms_redescribe_consistently() {
        // Consistent re-description of a shared atom resolves to ONE
        // object; an inconsistent one is rejected.
        let good = "Root &0 Complex\n    A &1 Integer \"1\"\n    B &1 Integer \"1\"\n";
        let (db, root) = read(good).unwrap();
        assert_eq!(db.child(root, "A"), db.child(root, "B"));
        let bad = "Root &0 Complex\n    A &1 Integer \"1\"\n    B &1 Integer \"2\"\n";
        assert!(read(bad).is_err());
    }

    #[test]
    fn rejects_orphan_indent() {
        let bad = "    A &1 Integer \"1\"\n";
        assert!(read(bad).is_err());
    }

    #[test]
    fn rejects_value_on_complex() {
        let bad = "Root &0 Complex \"oops\"\n";
        assert!(read(bad).is_err());
    }

    #[test]
    fn real_values_round_trip() {
        let mut db = OemStore::new();
        let root = db.new_complex();
        db.add_atomic_child(root, "Score", AtomicValue::Real(0.5))
            .unwrap();
        db.add_atomic_child(root, "Whole", AtomicValue::Real(3.0))
            .unwrap();
        db.set_name("R", root).unwrap();
        let (db2, root2) = read(&write_named(&db, "R").unwrap()).unwrap();
        assert_eq!(
            db2.child_value(root2, "Score"),
            Some(&AtomicValue::Real(0.5))
        );
        assert_eq!(
            db2.child_value(root2, "Whole"),
            Some(&AtomicValue::Real(3.0))
        );
    }
}
