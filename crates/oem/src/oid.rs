//! Object identifiers.

use std::fmt;

/// A unique object identifier within one [`crate::OemStore`].
///
/// Oids are dense indices into the store's object arena. In the paper's
/// textual notation an oid is written `&42`; [`fmt::Display`] follows that
/// convention.
///
/// Oids are only meaningful relative to the store that issued them;
/// importing a fragment into another store remaps them
/// (see [`crate::graph::import_fragment`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Oid(pub(crate) u32);

impl Oid {
    /// Returns the raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an oid from a raw index. Intended for deserialisation; the
    /// caller is responsible for the index denoting a live object.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Oid(index as u32)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_ampersand_notation() {
        assert_eq!(Oid(442).to_string(), "&442");
    }

    #[test]
    fn round_trips_through_index() {
        let oid = Oid(7);
        assert_eq!(Oid::from_index(oid.index()), oid);
    }

    #[test]
    fn ordering_follows_allocation_order() {
        assert!(Oid(1) < Oid(2));
    }
}
