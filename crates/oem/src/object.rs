//! OEM objects and object references.

use crate::label::Label;
use crate::oid::Oid;
use crate::value::{AtomicValue, OemType};

/// An object reference held by a complex object.
///
/// The paper denotes a complex object's value as a set of
/// `(label, oid, type)` pairs. The `type` component is derivable from the
/// target object, so the stored edge carries only label and target; the
/// store's [`crate::OemStore::edge_type`] recovers the triple form.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Edge {
    /// The interned attribute label on the edge.
    pub label: Label,
    /// The referenced object.
    pub target: Oid,
}

/// The payload of an object: atomic value or set of references.
#[derive(Clone, PartialEq, Debug)]
pub enum ObjectKind {
    /// An atomic object holding a value of one of the basic atomic types.
    Atomic(AtomicValue),
    /// A complex object: an ordered set of object references. Set semantics
    /// are maintained by the store (no duplicate `(label, target)` pair);
    /// order is insertion order, which keeps the Figure-3 rendering stable.
    Complex(Vec<Edge>),
}

/// A stored OEM object.
#[derive(Clone, PartialEq, Debug)]
pub struct Object {
    pub(crate) kind: ObjectKind,
}

impl Object {
    /// The object's payload.
    pub fn kind(&self) -> &ObjectKind {
        &self.kind
    }

    /// The object's type (atomic tag or complex).
    pub fn oem_type(&self) -> OemType {
        match &self.kind {
            ObjectKind::Atomic(v) => OemType::Atomic(v.atomic_type()),
            ObjectKind::Complex(_) => OemType::Complex,
        }
    }

    /// The atomic value, if this object is atomic.
    pub fn value(&self) -> Option<&AtomicValue> {
        match &self.kind {
            ObjectKind::Atomic(v) => Some(v),
            ObjectKind::Complex(_) => None,
        }
    }

    /// The outgoing references, empty for atomic objects.
    pub fn edges(&self) -> &[Edge] {
        match &self.kind {
            ObjectKind::Atomic(_) => &[],
            ObjectKind::Complex(edges) => edges,
        }
    }

    /// True when the object is complex.
    pub fn is_complex(&self) -> bool {
        matches!(self.kind, ObjectKind::Complex(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AtomicType;

    #[test]
    fn atomic_object_reports_type_and_value() {
        let o = Object {
            kind: ObjectKind::Atomic(AtomicValue::Int(5)),
        };
        assert_eq!(o.oem_type(), OemType::Atomic(AtomicType::Int));
        assert_eq!(o.value(), Some(&AtomicValue::Int(5)));
        assert!(o.edges().is_empty());
        assert!(!o.is_complex());
    }

    #[test]
    fn complex_object_reports_edges() {
        let e = Edge {
            label: Label(0),
            target: Oid(1),
        };
        let o = Object {
            kind: ObjectKind::Complex(vec![e]),
        };
        assert_eq!(o.oem_type(), OemType::Complex);
        assert_eq!(o.value(), None);
        assert_eq!(o.edges(), &[e]);
        assert!(o.is_complex());
    }
}
