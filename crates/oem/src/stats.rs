//! Attribute-value statistics for cost estimation.
//!
//! The mediator estimates how many records a pushed-down predicate will
//! ship. A constant selectivity guess is wrong by orders of magnitude on
//! skewed annotation data (60 % of loci are human), so the optimizer
//! collects small per-attribute summaries from the OMLs: value count,
//! distinct count, and the most common values with their frequencies.

use std::collections::HashMap;

use crate::oid::Oid;
use crate::store::OemStore;
use crate::value::AtomicValue;

/// How many most-common values a summary retains.
const TOP_K: usize = 16;

/// A frequency summary of one attribute across a set of parent objects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttributeStats {
    /// Number of attribute instances observed.
    pub total: usize,
    /// Number of distinct values.
    pub distinct: usize,
    /// The `TOP_K` most common values with their counts, descending.
    pub top: Vec<(String, usize)>,
    /// How many instances the retained top values cover.
    pub top_coverage: usize,
}

impl AttributeStats {
    /// Collects the summary of `label` across `parents` in `store`.
    pub fn collect(store: &OemStore, parents: &[Oid], label: &str) -> Self {
        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut total = 0usize;
        for &p in parents {
            for child in store.children(p, label) {
                if let Some(v) = store.value_of(child) {
                    *counts.entry(v.as_text()).or_default() += 1;
                    total += 1;
                }
            }
        }
        let distinct = counts.len();
        let mut freq: Vec<(String, usize)> = counts.into_iter().collect();
        freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        freq.truncate(TOP_K);
        let top_coverage = freq.iter().map(|(_, n)| n).sum();
        AttributeStats {
            total,
            distinct,
            top: freq,
            top_coverage,
        }
    }

    /// Estimated fraction of parents satisfying `attr = value`.
    ///
    /// Exact when the value is among the retained top values; otherwise
    /// the residual mass is spread uniformly over the unseen distinct
    /// values.
    pub fn eq_selectivity(&self, value: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if let Some((_, n)) = self.top.iter().find(|(v, _)| v == value) {
            return *n as f64 / self.total as f64;
        }
        let residual_values = self.distinct.saturating_sub(self.top.len());
        if residual_values == 0 {
            // Every value is retained and this one is absent.
            return 0.0;
        }
        let residual_mass = (self.total - self.top_coverage) as f64 / self.total as f64;
        residual_mass / residual_values as f64
    }

    /// Estimated fraction satisfying `attr like pattern`, from the
    /// retained values (assumed representative of the distribution).
    pub fn like_selectivity(&self, pattern: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if self.top.is_empty() {
            return 0.1;
        }
        let matching: usize = self
            .top
            .iter()
            .filter(|(v, _)| AtomicValue::Str(v.clone()).lorel_like(pattern))
            .map(|(_, n)| n)
            .sum();
        let fraction = matching as f64 / self.top_coverage.max(1) as f64;
        // Never report exactly 0: unseen values may match.
        fraction.max(0.5 / self.total as f64)
    }

    /// Generic selectivity dispatch for the operators the decomposer
    /// pushes down.
    pub fn selectivity(&self, op: &str, literal: &str) -> f64 {
        match op {
            "=" => self.eq_selectivity(literal),
            "like" => self.like_selectivity(literal),
            // Range predicates: assume a third pass (textbook default).
            "<" | "<=" | ">" | ">=" => 1.0 / 3.0,
            "!=" => 1.0 - self.eq_selectivity(literal),
            _ => 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn organism_store() -> (OemStore, Vec<Oid>) {
        let mut db = OemStore::new();
        let root = db.new_complex();
        let mut parents = Vec::new();
        for i in 0..10 {
            let g = db.add_complex_child(root, "Locus").unwrap();
            let organism = if i < 6 {
                "Homo sapiens"
            } else if i < 9 {
                "Mus musculus"
            } else {
                "Rattus norvegicus"
            };
            db.add_atomic_child(g, "Organism", organism).unwrap();
            parents.push(g);
        }
        (db, parents)
    }

    #[test]
    fn collect_counts_values() {
        let (db, parents) = organism_store();
        let s = AttributeStats::collect(&db, &parents, "Organism");
        assert_eq!(s.total, 10);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.top[0], ("Homo sapiens".to_string(), 6));
        assert_eq!(s.top_coverage, 10);
    }

    #[test]
    fn eq_selectivity_is_exact_for_retained_values() {
        let (db, parents) = organism_store();
        let s = AttributeStats::collect(&db, &parents, "Organism");
        assert!((s.eq_selectivity("Homo sapiens") - 0.6).abs() < 1e-9);
        assert!((s.eq_selectivity("Mus musculus") - 0.3).abs() < 1e-9);
        assert_eq!(s.eq_selectivity("Danio rerio"), 0.0, "all values retained");
    }

    #[test]
    fn residual_mass_spreads_over_unseen_values() {
        // 20 distinct values, each once: top keeps 16, residual 4.
        let mut db = OemStore::new();
        let root = db.new_complex();
        let mut parents = Vec::new();
        for i in 0..20 {
            let g = db.add_complex_child(root, "G").unwrap();
            db.add_atomic_child(g, "v", format!("val{i:02}")).unwrap();
            parents.push(g);
        }
        let s = AttributeStats::collect(&db, &parents, "v");
        assert_eq!(s.distinct, 20);
        assert_eq!(s.top.len(), 16);
        let unseen = s.eq_selectivity("val99");
        assert!((unseen - (4.0 / 20.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn like_selectivity_uses_the_histogram() {
        let (db, parents) = organism_store();
        let s = AttributeStats::collect(&db, &parents, "Organism");
        assert!((s.like_selectivity("%mus%") - 0.3).abs() < 1e-9); // Mus musculus only (case-sensitive)
        assert!(s.like_selectivity("%ZZZ%") > 0.0, "never exactly zero");
        assert!((s.like_selectivity("%") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = AttributeStats::default();
        assert_eq!(s.eq_selectivity("x"), 0.0);
        assert_eq!(s.like_selectivity("%"), 0.0);
    }

    #[test]
    fn selectivity_dispatch() {
        let (db, parents) = organism_store();
        let s = AttributeStats::collect(&db, &parents, "Organism");
        assert!((s.selectivity("=", "Homo sapiens") - 0.6).abs() < 1e-9);
        assert!((s.selectivity("!=", "Homo sapiens") - 0.4).abs() < 1e-9);
        assert!((s.selectivity("<", "M") - 1.0 / 3.0).abs() < 1e-9);
    }
}
