//! Text harvesting — extracting free-text documents from OEM graphs.
//!
//! The search subsystem (`annoda-search`) indexes the natural-language
//! values sitting inside each source's OML: GO term definitions, OMIM
//! disease text and titles, PubMed article titles. This module is the
//! OEM side of that contract: a [`TextDoc`] is one indexable document
//! (a stable key, the concatenated text, and the gene loci the document
//! annotates), and [`HarvestText`] walks a rooted entity collection
//! collecting them declaratively via a [`DocSpec`].
//!
//! Wrappers with flat `root → Entity → atomic` shapes (OMIM entries,
//! PubMed citations) harvest with one spec; wrappers that need a join
//! (GO terms × annotations) use the spec for the document skeleton and
//! fill `loci` themselves.

use crate::store::OemStore;
use crate::value::AtomicValue;

/// One indexable free-text document extracted from an OML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextDoc {
    /// Stable per-source document key (GO accession, MIM number, PMID).
    pub key: String,
    /// The concatenated text body the index tokenizes.
    pub text: String,
    /// Gene loci (symbols) this document annotates — the unit search
    /// answers rank.
    pub loci: Vec<String>,
}

/// Declarative description of where a wrapper's documents live:
/// `root → entity* → (key, text…, loci…)` atomic children.
#[derive(Debug, Clone, Copy)]
pub struct DocSpec<'a> {
    /// Label of the repeated entity under the root (e.g. `"Entry"`).
    pub entity: &'a str,
    /// Label of the single atomic child used as the document key.
    pub key: &'a str,
    /// Labels whose atomic values are concatenated (space-joined, in
    /// label order) into the document text.
    pub text: &'a [&'a str],
    /// Labels whose (possibly repeated) atomic values name the loci the
    /// document annotates.
    pub loci: &'a [&'a str],
}

/// Renders an atomic value as indexable text. Strings and integers
/// carry searchable content (titles, definitions, accession numbers);
/// URLs, reals, booleans and images are navigation/presentation values
/// and harvest as `None`.
pub fn atomic_text(value: &AtomicValue) -> Option<String> {
    match value {
        AtomicValue::Str(s) => Some(s.clone()),
        AtomicValue::Int(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Text extraction over a rooted OEM graph.
pub trait HarvestText {
    /// Collects one [`TextDoc`] per `spec.entity` child of the root
    /// named `root`, in store edge order. Entities without a renderable
    /// key are skipped; entities whose text labels are all absent yield
    /// an empty-text document (still keyed, still carrying loci).
    fn harvest_docs(&self, root: &str, spec: &DocSpec<'_>) -> Vec<TextDoc>;
}

impl HarvestText for OemStore {
    fn harvest_docs(&self, root: &str, spec: &DocSpec<'_>) -> Vec<TextDoc> {
        let Some(root) = self.named(root) else {
            return Vec::new();
        };
        let mut docs = Vec::new();
        for entity in self.children(root, spec.entity) {
            let Some(key) = self.child_value(entity, spec.key).and_then(atomic_text) else {
                continue;
            };
            let mut text = String::new();
            for label in spec.text {
                for child in self.children(entity, label) {
                    if let Some(part) = self.value_of(child).and_then(atomic_text) {
                        if !text.is_empty() {
                            text.push(' ');
                        }
                        text.push_str(&part);
                    }
                }
            }
            let mut loci = Vec::new();
            for label in spec.loci {
                for child in self.children(entity, label) {
                    if let Some(locus) = self.value_of(child).and_then(atomic_text) {
                        loci.push(locus);
                    }
                }
            }
            loci.sort();
            loci.dedup();
            docs.push(TextDoc { key, text, loci });
        }
        docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_store() -> OemStore {
        let mut oml = OemStore::new();
        let root = oml.new_complex();
        for k in 0..3 {
            let e = oml.add_complex_child(root, "Entry").unwrap();
            oml.add_atomic_child(e, "MimNumber", AtomicValue::Int(100 + k))
                .unwrap();
            oml.add_atomic_child(e, "Title", format!("DISORDER {k}"))
                .unwrap();
            oml.add_atomic_child(e, "Text", format!("a disorder involving repair {k}"))
                .unwrap();
            oml.add_atomic_child(e, "GeneSymbol", format!("G{k}"))
                .unwrap();
            oml.add_atomic_child(e, "GeneSymbol", format!("H{k}"))
                .unwrap();
            oml.add_atomic_child(e, "Url", AtomicValue::Url(format!("http://x/{k}")))
                .unwrap();
        }
        oml.set_name("REG", root).unwrap();
        oml
    }

    const SPEC: DocSpec<'static> = DocSpec {
        entity: "Entry",
        key: "MimNumber",
        text: &["Title", "Text"],
        loci: &["GeneSymbol"],
    };

    #[test]
    fn harvests_keyed_docs_with_loci() {
        let oml = registry_store();
        let docs = oml.harvest_docs("REG", &SPEC);
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[0].key, "100");
        assert_eq!(docs[0].text, "DISORDER 0 a disorder involving repair 0");
        assert_eq!(docs[0].loci, vec!["G0".to_string(), "H0".to_string()]);
    }

    #[test]
    fn missing_root_harvests_empty() {
        let oml = registry_store();
        assert!(oml.harvest_docs("NOPE", &SPEC).is_empty());
    }

    #[test]
    fn urls_and_images_are_not_text() {
        assert_eq!(atomic_text(&AtomicValue::Url("http://x".into())), None);
        assert_eq!(atomic_text(&AtomicValue::Gif(vec![1])), None);
        assert_eq!(atomic_text(&AtomicValue::Int(42)).as_deref(), Some("42"));
    }
}
