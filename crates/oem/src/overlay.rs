//! Answer overlays: query materialisation without mutating the base
//! store.
//!
//! Lorel's `select` materialises a fresh `answer` object graph (the
//! paper's `&442`). Historically that forced `&mut OemStore` access —
//! and the serving layer deep-cloned the whole ANNODA-GML store per
//! request to get one. An [`AnswerOverlay`] removes the mutation: new
//! objects are allocated *above the base store's high-water mark* and
//! live in a small side arena, while their edges may freely reference
//! base objects. A [`Snapshot`] then resolves oids through the
//! `base ⊕ overlay` union for rendering and navigation, via the
//! [`OemRead`] trait both [`OemStore`] and [`Snapshot`] implement.
//!
//! Because overlay oids start exactly at `base.len()` — the same
//! numbers a `&mut` evaluation over the base store would have issued —
//! [`AnswerOverlay::apply_to`] can replay the overlay onto the base
//! store and reproduce the classic in-place evaluation *byte for byte*
//! (same oids, same label interning order, same names). The replay is
//! an op log, so even interleavings of allocation and edge insertion
//! are preserved exactly.
//!
//! ```
//! use annoda_oem::{AnswerOverlay, AtomicValue, OemRead, OemStore, Snapshot, text};
//!
//! let mut base = OemStore::new();
//! let root = base.new_complex();
//! base.add_atomic_child(root, "Symbol", "TP53").unwrap();
//! base.set_name("DB", root).unwrap();
//!
//! let mut overlay = AnswerOverlay::for_base(&base);
//! let answer = overlay.new_complex();
//! assert_eq!(answer.index(), base.len(), "above the high-water mark");
//! overlay
//!     .add_edge(&base, answer, "Gene", root)
//!     .unwrap();
//! overlay.set_name_overwrite("answer", answer).unwrap();
//!
//! let view = Snapshot::new(&base, overlay).unwrap();
//! assert_eq!(view.named("answer"), Some(answer));
//! assert!(text::write_rooted(&view, "answer", answer).contains("Symbol"));
//! ```

use std::collections::{BTreeMap, HashMap};
use std::ops::Deref;

use crate::error::OemError;
use crate::label::Label;
use crate::object::{Edge, Object, ObjectKind};
use crate::oid::Oid;
use crate::store::OemStore;
use crate::value::{AtomicValue, OemType};

/// Read-only access to an OEM object graph — implemented by
/// [`OemStore`] and by [`Snapshot`], so rendering ([`crate::text`]) and
/// result inspection work identically over a plain store and over a
/// `base ⊕ overlay` view.
pub trait OemRead {
    /// The object behind `oid`, if live.
    fn get(&self, oid: Oid) -> Option<&Object>;

    /// Resolves a label id to its string.
    fn label_name(&self, label: Label) -> &str;

    /// The named root, if registered.
    fn named(&self, name: &str) -> Option<Oid>;

    /// Number of live objects.
    fn object_count(&self) -> usize;

    /// Outgoing references of `oid` (empty for atomic or dangling).
    fn edges_of(&self, oid: Oid) -> &[Edge] {
        self.get(oid).map(|o| o.edges()).unwrap_or(&[])
    }

    /// The atomic value of `oid`, if it is a live atomic object.
    fn value_of(&self, oid: Oid) -> Option<&AtomicValue> {
        self.get(oid).and_then(|o| o.value())
    }

    /// The object's type; `None` for a dangling oid.
    fn type_of(&self, oid: Oid) -> Option<OemType> {
        self.get(oid).map(|o| o.oem_type())
    }
}

impl OemRead for OemStore {
    fn get(&self, oid: Oid) -> Option<&Object> {
        OemStore::get(self, oid)
    }

    fn label_name(&self, label: Label) -> &str {
        OemStore::label_name(self, label)
    }

    fn named(&self, name: &str) -> Option<Oid> {
        OemStore::named(self, name)
    }

    fn object_count(&self) -> usize {
        self.len()
    }
}

/// One recorded mutation, replayed verbatim by
/// [`AnswerOverlay::apply_to`].
#[derive(Debug, Clone)]
enum OverlayOp {
    NewComplex,
    NewAtomic(AtomicValue),
    AddEdge { from: Oid, label: Label, to: Oid },
    SetName { name: String, oid: Oid },
}

/// A write-only delta above a frozen base store: fresh objects with
/// oids starting at `base.len()`, fresh labels with ids starting at the
/// base's label count, and name bindings that shadow the base's.
#[derive(Debug, Clone)]
pub struct AnswerOverlay {
    base_len: usize,
    base_labels: usize,
    objects: Vec<Object>,
    new_labels: Vec<String>,
    new_label_ids: HashMap<String, Label>,
    names: BTreeMap<String, Oid>,
    ops: Vec<OverlayOp>,
}

impl AnswerOverlay {
    /// An empty overlay positioned above `base`'s high-water mark.
    pub fn for_base(base: &OemStore) -> Self {
        AnswerOverlay {
            base_len: base.len(),
            base_labels: base.labels().len(),
            objects: Vec::new(),
            new_labels: Vec::new(),
            new_label_ids: HashMap::new(),
            names: BTreeMap::new(),
            ops: Vec::new(),
        }
    }

    /// The base object count this overlay was built over (also the
    /// index of the first overlay oid).
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Number of objects allocated in the overlay.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no object has been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The overlay's own object behind `oid` (`None` for base-range or
    /// dangling oids — resolve those through a [`Snapshot`]).
    pub fn get(&self, oid: Oid) -> Option<&Object> {
        oid.index()
            .checked_sub(self.base_len)
            .and_then(|i| self.objects.get(i))
    }

    /// A name bound in the overlay (shadowing the base).
    pub fn named(&self, name: &str) -> Option<Oid> {
        self.names.get(name).copied()
    }

    /// Names bound in the overlay, in name order.
    pub fn names(&self) -> impl Iterator<Item = (&str, Oid)> {
        self.names.iter().map(|(n, &o)| (n.as_str(), o))
    }

    fn total(&self) -> usize {
        self.base_len + self.objects.len()
    }

    /// Allocates a fresh complex object above the base high-water mark.
    pub fn new_complex(&mut self) -> Oid {
        let oid = Oid::from_index(self.total());
        self.objects.push(Object {
            kind: ObjectKind::Complex(Vec::new()),
        });
        self.ops.push(OverlayOp::NewComplex);
        oid
    }

    /// Allocates a fresh atomic object above the base high-water mark.
    pub fn new_atomic(&mut self, value: impl Into<AtomicValue>) -> Oid {
        let value = value.into();
        let oid = Oid::from_index(self.total());
        self.objects.push(Object {
            kind: ObjectKind::Atomic(value.clone()),
        });
        self.ops.push(OverlayOp::NewAtomic(value));
        oid
    }

    /// Interns `label` against the base's table first, extending it with
    /// overlay-local ids only for labels the base has never seen.
    fn intern(&mut self, base: &OemStore, name: &str) -> Label {
        if let Some(label) = base.labels().get(name) {
            return label;
        }
        if let Some(&label) = self.new_label_ids.get(name) {
            return label;
        }
        let label = Label((self.base_labels + self.new_labels.len()) as u32);
        self.new_labels.push(name.to_string());
        self.new_label_ids.insert(name.to_string(), label);
        label
    }

    /// Resolves a label through base-then-overlay tables.
    fn resolve_label<'a>(&'a self, base: &'a OemStore, label: Label) -> &'a str {
        match label.index().checked_sub(self.base_labels) {
            Some(i) => &self.new_labels[i],
            None => base.label_name(label),
        }
    }

    /// Adds the reference `(label, to)` to the overlay object `from`
    /// with the same set semantics as [`OemStore::add_edge`]. `from`
    /// must be an overlay object (base objects are immutable under an
    /// overlay); `to` may live in either the base or the overlay.
    pub fn add_edge(
        &mut self,
        base: &OemStore,
        from: Oid,
        label: &str,
        to: Oid,
    ) -> Result<bool, OemError> {
        if to.index() >= self.total() {
            return Err(OemError::DanglingOid(format!("{to} as edge target")));
        }
        let Some(slot) = from.index().checked_sub(self.base_len) else {
            return Err(OemError::NotComplex(format!(
                "{from} is a base object; an overlay only mutates its own objects"
            )));
        };
        let label = self.intern(base, label);
        let from_obj = self
            .objects
            .get_mut(slot)
            .ok_or_else(|| OemError::DanglingOid(format!("{from} as edge source")))?;
        let inserted = match &mut from_obj.kind {
            ObjectKind::Atomic(_) => Err(OemError::NotComplex(format!(
                "{from} is atomic; cannot hold references"
            ))),
            ObjectKind::Complex(edges) => {
                let edge = Edge { label, target: to };
                if edges.contains(&edge) {
                    Ok(false)
                } else {
                    edges.push(edge);
                    Ok(true)
                }
            }
        }?;
        if inserted {
            self.ops.push(OverlayOp::AddEdge { from, label, to });
        }
        Ok(inserted)
    }

    /// Binds (or re-points) a name in the overlay, shadowing the base's
    /// binding in any [`Snapshot`] built over this overlay.
    pub fn set_name_overwrite(&mut self, name: &str, oid: Oid) -> Result<(), OemError> {
        if oid.index() >= self.total() {
            return Err(OemError::DanglingOid(format!("{oid} as named root")));
        }
        self.names.insert(name.to_string(), oid);
        self.ops.push(OverlayOp::SetName {
            name: name.to_string(),
            oid,
        });
        Ok(())
    }

    /// Replays the overlay onto `store`, which must be the base it was
    /// built over (same object count). Allocation, edge insertion,
    /// label interning, and name binding happen in the exact order the
    /// overlay recorded them, so the result is indistinguishable from
    /// having evaluated against `&mut store` directly.
    pub fn apply_to(&self, store: &mut OemStore) -> Result<(), OemError> {
        if store.len() != self.base_len {
            return Err(OemError::DanglingOid(format!(
                "overlay built over {} objects cannot apply to a store of {}",
                self.base_len,
                store.len()
            )));
        }
        for op in &self.ops {
            match op {
                OverlayOp::NewComplex => {
                    store.new_complex();
                }
                OverlayOp::NewAtomic(value) => {
                    store.new_atomic(value.clone());
                }
                OverlayOp::AddEdge { from, label, to } => {
                    let name = self.resolve_label(store, *label).to_string();
                    store.add_edge(*from, &name, *to)?;
                }
                OverlayOp::SetName { name, oid } => {
                    store.set_name_overwrite(name, *oid)?;
                }
            }
        }
        Ok(())
    }
}

/// A read-only `base ⊕ overlay` union: base oids resolve in the base
/// store, overlay oids in the overlay arena, and overlay names shadow
/// base names. Generic over the base handle so it works borrowed
/// (`Snapshot<&OemStore>`) and shared (`Snapshot<Arc<OemStore>>`, the
/// serving layer's zero-clone answer view).
#[derive(Debug, Clone)]
pub struct Snapshot<B = std::sync::Arc<OemStore>> {
    base: B,
    overlay: AnswerOverlay,
}

impl<B: Deref<Target = OemStore>> Snapshot<B> {
    /// Pairs a base with an overlay built over it. Fails when the
    /// overlay's recorded high-water mark does not match `base`.
    pub fn new(base: B, overlay: AnswerOverlay) -> Result<Self, OemError> {
        if base.len() != overlay.base_len {
            return Err(OemError::DanglingOid(format!(
                "overlay built over {} objects cannot view a base of {}",
                overlay.base_len,
                base.len()
            )));
        }
        Ok(Snapshot { base, overlay })
    }

    /// The base store.
    pub fn base(&self) -> &OemStore {
        &self.base
    }

    /// The overlay delta.
    pub fn overlay(&self) -> &AnswerOverlay {
        &self.overlay
    }

    /// Dissolves the view back into its parts.
    pub fn into_parts(self) -> (B, AnswerOverlay) {
        (self.base, self.overlay)
    }
}

impl<B: Deref<Target = OemStore>> OemRead for Snapshot<B> {
    fn get(&self, oid: Oid) -> Option<&Object> {
        if oid.index() < self.overlay.base_len {
            self.base.get(oid)
        } else {
            self.overlay.get(oid)
        }
    }

    fn label_name(&self, label: Label) -> &str {
        self.overlay.resolve_label(&self.base, label)
    }

    fn named(&self, name: &str) -> Option<Oid> {
        self.overlay.named(name).or_else(|| self.base.named(name))
    }

    fn object_count(&self) -> usize {
        self.overlay.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text;

    fn base_store() -> (OemStore, Oid) {
        let mut db = OemStore::new();
        let root = db.new_complex();
        db.add_atomic_child(root, "Symbol", "TP53").unwrap();
        db.add_atomic_child(root, "LocusID", AtomicValue::Int(7157))
            .unwrap();
        db.set_name("DB", root).unwrap();
        (db, root)
    }

    #[test]
    fn overlay_oids_start_at_the_high_water_mark() {
        let (base, root) = base_store();
        let mut ov = AnswerOverlay::for_base(&base);
        let a = ov.new_complex();
        let b = ov.new_atomic("x");
        assert_eq!(a.index(), base.len());
        assert_eq!(b.index(), base.len() + 1);
        assert!(ov.add_edge(&base, a, "Gene", root).unwrap());
        assert!(ov.add_edge(&base, a, "v", b).unwrap());
        // Set semantics, as in the store.
        assert!(!ov.add_edge(&base, a, "Gene", root).unwrap());
        assert_eq!(ov.len(), 2);
    }

    #[test]
    fn base_objects_are_immutable_and_dangling_targets_rejected() {
        let (base, root) = base_store();
        let mut ov = AnswerOverlay::for_base(&base);
        let a = ov.new_complex();
        assert!(matches!(
            ov.add_edge(&base, root, "x", a),
            Err(OemError::NotComplex(_))
        ));
        assert!(matches!(
            ov.add_edge(&base, a, "x", Oid::from_index(99)),
            Err(OemError::DanglingOid(_))
        ));
        let atom = ov.new_atomic(1i64);
        assert!(matches!(
            ov.add_edge(&base, atom, "x", a),
            Err(OemError::NotComplex(_))
        ));
    }

    #[test]
    fn snapshot_resolves_both_sides_and_shadows_names() {
        let (base, root) = base_store();
        let mut ov = AnswerOverlay::for_base(&base);
        let answer = ov.new_complex();
        ov.add_edge(&base, answer, "Gene", root).unwrap();
        ov.set_name_overwrite("answer", answer).unwrap();
        ov.set_name_overwrite("DB", answer).unwrap();

        let view = Snapshot::new(&base, ov).unwrap();
        assert_eq!(view.object_count(), base.len() + 1);
        assert_eq!(view.named("answer"), Some(answer));
        assert_eq!(view.named("DB"), Some(answer), "overlay shadows base");
        assert_eq!(
            view.value_of(view.edges_of(root)[0].target),
            Some(&AtomicValue::Str("TP53".into()))
        );
        assert_eq!(view.edges_of(answer).len(), 1);
        assert_eq!(view.type_of(answer), Some(OemType::Complex));
    }

    #[test]
    fn apply_to_replays_byte_identically() {
        let (base, root) = base_store();

        // Overlay path.
        let mut ov = AnswerOverlay::for_base(&base);
        let answer = ov.new_complex();
        let copy = ov.new_complex();
        ov.add_edge(&base, copy, "Symbol", base.child(root, "Symbol").unwrap())
            .unwrap();
        ov.add_edge(&base, answer, "FreshLabel", copy).unwrap();
        let atom = ov.new_atomic(AtomicValue::Int(42));
        ov.add_edge(&base, answer, "n", atom).unwrap();
        ov.set_name_overwrite("answer", answer).unwrap();
        let view = Snapshot::new(&base, ov.clone()).unwrap();
        let rendered_view = text::write_rooted(&view, "answer", answer);

        // In-place path: replay onto a clone of the base.
        let mut replayed = base.clone();
        ov.apply_to(&mut replayed).unwrap();
        assert_eq!(replayed.len(), base.len() + 3);
        assert_eq!(replayed.named("answer"), Some(answer));
        let rendered_store = text::write_rooted(&replayed, "answer", answer);
        assert_eq!(rendered_view, rendered_store, "byte-identical rendering");
    }

    #[test]
    fn apply_to_rejects_a_moved_base() {
        let (mut base, _root) = base_store();
        let mut ov = AnswerOverlay::for_base(&base);
        ov.new_complex();
        base.new_complex(); // base grew underneath the overlay
        assert!(matches!(
            ov.apply_to(&mut base),
            Err(OemError::DanglingOid(_))
        ));
    }

    #[test]
    fn snapshot_rejects_a_mismatched_base() {
        let (base, _root) = base_store();
        let (other, _) = {
            let mut db = OemStore::new();
            let r = db.new_complex();
            db.add_atomic_child(r, "x", 1i64).unwrap();
            (db, r)
        };
        let ov = AnswerOverlay::for_base(&base);
        assert!(Snapshot::new(&other, ov).is_err());
    }
}
