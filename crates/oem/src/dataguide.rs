//! DataGuide structural summaries.
//!
//! A DataGuide is a concise summary of the label paths present in a
//! semi-structured database: every label path that occurs in the source
//! occurs exactly once in the guide, and no path occurs in the guide that
//! does not occur in the source. ANNODA's mediator uses per-source
//! DataGuides for *source selection* — deciding which sources can possibly
//! contribute to a path in a decomposed query — without touching the data.
//!
//! The construction is the classic powerset (NFA→DFA) determinisation:
//! each guide node corresponds to the set of source objects reachable by
//! one label path.

use std::collections::{BTreeSet, HashMap};

use crate::oid::Oid;
use crate::store::OemStore;

/// A node in the guide, identified by a dense index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GuideNode(u32);

/// A DataGuide for (a rooted region of) an OEM store.
#[derive(Debug, Clone)]
pub struct DataGuide {
    /// node → (label name → node)
    transitions: Vec<HashMap<String, GuideNode>>,
    /// node → how many source objects its target set contains
    cardinality: Vec<usize>,
    root: GuideNode,
}

impl DataGuide {
    /// Builds the guide for the region reachable from `roots`.
    pub fn build(store: &OemStore, roots: &[Oid]) -> Self {
        let root_set: BTreeSet<Oid> = roots
            .iter()
            .copied()
            .filter(|&o| store.get(o).is_some())
            .collect();
        let mut node_of: HashMap<BTreeSet<Oid>, GuideNode> = HashMap::new();
        let mut transitions: Vec<HashMap<String, GuideNode>> = Vec::new();
        let mut cardinality: Vec<usize> = Vec::new();
        let mut worklist: Vec<BTreeSet<Oid>> = Vec::new();

        let alloc = |set: BTreeSet<Oid>,
                     node_of: &mut HashMap<BTreeSet<Oid>, GuideNode>,
                     transitions: &mut Vec<HashMap<String, GuideNode>>,
                     cardinality: &mut Vec<usize>,
                     worklist: &mut Vec<BTreeSet<Oid>>|
         -> GuideNode {
            if let Some(&n) = node_of.get(&set) {
                return n;
            }
            let n = GuideNode(transitions.len() as u32);
            transitions.push(HashMap::new());
            cardinality.push(set.len());
            node_of.insert(set.clone(), n);
            worklist.push(set);
            n
        };

        let root = alloc(
            root_set,
            &mut node_of,
            &mut transitions,
            &mut cardinality,
            &mut worklist,
        );

        while let Some(set) = worklist.pop() {
            let from = node_of[&set];
            // Group targets by label name.
            let mut by_label: HashMap<String, BTreeSet<Oid>> = HashMap::new();
            for &o in &set {
                for e in store.edges_of(o) {
                    by_label
                        .entry(store.label_name(e.label).to_string())
                        .or_default()
                        .insert(e.target);
                }
            }
            for (label, targets) in by_label {
                let to = alloc(
                    targets,
                    &mut node_of,
                    &mut transitions,
                    &mut cardinality,
                    &mut worklist,
                );
                transitions[from.0 as usize].insert(label, to);
            }
        }

        DataGuide {
            transitions,
            cardinality,
            root,
        }
    }

    /// The guide's root node.
    pub fn root(&self) -> GuideNode {
        self.root
    }

    /// Number of guide nodes.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True for a guide over an empty region.
    pub fn is_empty(&self) -> bool {
        self.cardinality.first().is_none_or(|&c| c == 0) && self.transitions.len() <= 1
    }

    /// Follows one labelled transition.
    pub fn step(&self, node: GuideNode, label: &str) -> Option<GuideNode> {
        self.transitions[node.0 as usize].get(label).copied()
    }

    /// Follows a whole label path from the root. Returns the reached node
    /// or `None` if the path does not occur in the source.
    pub fn lookup(&self, path: &[&str]) -> Option<GuideNode> {
        let mut node = self.root;
        for &label in path {
            node = self.step(node, label)?;
        }
        Some(node)
    }

    /// True if the label path occurs somewhere in the summarised region.
    pub fn has_path(&self, path: &[&str]) -> bool {
        self.lookup(path).is_some()
    }

    /// How many distinct source objects the path reaches — the optimizer's
    /// cardinality estimate (exact for DataGuides built over the full
    /// region).
    pub fn cardinality(&self, path: &[&str]) -> usize {
        self.lookup(path)
            .map(|n| self.cardinality[n.0 as usize])
            .unwrap_or(0)
    }

    /// The labels leaving a node, sorted.
    pub fn out_labels(&self, node: GuideNode) -> Vec<&str> {
        let mut v: Vec<&str> = self.transitions[node.0 as usize]
            .keys()
            .map(String::as_str)
            .collect();
        v.sort_unstable();
        v
    }

    /// Enumerates every label path in the guide up to `max_depth` steps,
    /// lexicographically. Useful for schema extraction from instance data
    /// (the matcher consumes this).
    pub fn paths(&self, max_depth: usize) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.paths_rec(self.root, max_depth, &mut prefix, &mut out, &mut vec![]);
        out
    }

    fn paths_rec(
        &self,
        node: GuideNode,
        budget: usize,
        prefix: &mut Vec<String>,
        out: &mut Vec<Vec<String>>,
        on_stack: &mut Vec<GuideNode>,
    ) {
        if budget == 0 || on_stack.contains(&node) {
            return;
        }
        on_stack.push(node);
        for label in self.out_labels(node) {
            let next = self.step(node, label).expect("listed label exists");
            prefix.push(label.to_string());
            out.push(prefix.clone());
            self.paths_rec(next, budget - 1, prefix, out, on_stack);
            prefix.pop();
        }
        on_stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (OemStore, Oid) {
        let mut db = OemStore::new();
        let root = db.new_complex();
        for sym in ["TP53", "BRCA1", "EGFR"] {
            let g = db.add_complex_child(root, "Gene").unwrap();
            db.add_atomic_child(g, "Symbol", sym).unwrap();
            db.add_atomic_child(g, "Organism", "Homo sapiens").unwrap();
        }
        let d = db.add_complex_child(root, "Disease").unwrap();
        db.add_atomic_child(d, "Title", "Li-Fraumeni syndrome")
            .unwrap();
        (db, root)
    }

    #[test]
    fn every_source_path_occurs_in_guide() {
        let (db, root) = sample();
        let g = DataGuide::build(&db, &[root]);
        assert!(g.has_path(&["Gene"]));
        assert!(g.has_path(&["Gene", "Symbol"]));
        assert!(g.has_path(&["Disease", "Title"]));
        assert!(!g.has_path(&["Gene", "Title"]));
        assert!(!g.has_path(&["Symbol"]));
    }

    #[test]
    fn guide_merges_same_label_paths_into_one_node() {
        let (db, root) = sample();
        let g = DataGuide::build(&db, &[root]);
        // Three genes, one guide node for path [Gene].
        assert_eq!(g.cardinality(&["Gene"]), 3);
        assert_eq!(g.cardinality(&["Gene", "Symbol"]), 3);
        assert_eq!(g.cardinality(&["Disease"]), 1);
        assert_eq!(g.cardinality(&["Missing"]), 0);
    }

    #[test]
    fn guide_is_small_for_regular_data() {
        let (db, root) = sample();
        let g = DataGuide::build(&db, &[root]);
        // root, Gene-set, Symbol-set, Organism-set, Disease-set, Title-set.
        assert_eq!(g.len(), 6);
    }

    #[test]
    fn cyclic_data_terminates() {
        let mut db = OemStore::new();
        let a = db.new_complex();
        let b = db.add_complex_child(a, "next").unwrap();
        db.add_edge(b, "next", a).unwrap();
        let g = DataGuide::build(&db, &[a]);
        assert!(g.has_path(&["next", "next", "next"]));
        assert!(g.len() <= 3);
    }

    #[test]
    fn paths_enumeration_respects_depth() {
        let (db, root) = sample();
        let g = DataGuide::build(&db, &[root]);
        let p1 = g.paths(1);
        assert_eq!(p1.len(), 2); // Disease, Gene
        let p2 = g.paths(2);
        assert!(p2.contains(&vec!["Gene".to_string(), "Symbol".to_string()]));
        assert_eq!(p2.len(), 5);
    }

    #[test]
    fn empty_roots_build_trivial_guide() {
        let db = OemStore::new();
        let g = DataGuide::build(&db, &[]);
        assert!(g.is_empty());
        assert!(!g.has_path(&["x"]));
    }
}
