//! Store-attached cache of derived query structures.
//!
//! The Lorel planner (and the wrappers' access paths) repeatedly need
//! three derived artefacts for a given store: the set of objects a path
//! reaches from a root (its *cardinality*), a [`ValueIndex`] over one
//! attribute of that set, and its [`AttributeStats`] histogram. All three
//! are pure functions of store content, so the store memoises them behind
//! a reader-writer lock: read-only workloads (wrapper subqueries,
//! mediator fan-out) build each artefact once and share it across
//! threads, while every content mutation drops the whole cache.
//!
//! Entries are keyed by `(root oid, path text, attribute)`; invalidation
//! is coarse (any mutation clears everything) because stores in this
//! system are either built once and then queried (OMLs, the GML) or
//! mutated in bulk during refresh, where fine-grained tracking would buy
//! nothing.

use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};

use crate::index::ValueIndex;
use crate::oid::Oid;
use crate::stats::AttributeStats;

/// Key for index and stats entries: root, path text, attribute label.
type AttrKey = (Oid, String, String);
/// Key for cardinality entries: root and path text.
type PathKey = (Oid, String);

#[derive(Default)]
struct CacheInner {
    indexes: HashMap<AttrKey, Arc<ValueIndex>>,
    stats: HashMap<AttrKey, Arc<AttributeStats>>,
    cardinalities: HashMap<PathKey, usize>,
}

/// Interior-mutable memo table attached to an `OemStore`.
///
/// Cloning a store starts with an empty cache; the cache never
/// participates in equality or serialisation.
#[derive(Default)]
pub(crate) struct QueryCache {
    inner: RwLock<CacheInner>,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("QueryCache")
            .field("indexes", &inner.indexes.len())
            .field("stats", &inner.stats.len())
            .field("cardinalities", &inner.cardinalities.len())
            .finish()
    }
}

impl QueryCache {
    /// Drops every memoised entry (called on any store mutation).
    pub(crate) fn clear(&self) {
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        inner.indexes.clear();
        inner.stats.clear();
        inner.cardinalities.clear();
    }

    /// Number of memoised value indexes (test/introspection hook).
    pub(crate) fn index_count(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .indexes
            .len()
    }

    pub(crate) fn index(
        &self,
        key: AttrKey,
        build: impl FnOnce() -> ValueIndex,
    ) -> Arc<ValueIndex> {
        if let Some(hit) = self
            .inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .indexes
            .get(&key)
        {
            return Arc::clone(hit);
        }
        // Built outside the lock: concurrent misses may build twice, but
        // never block readers on an O(n) construction.
        let built = Arc::new(build());
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(inner.indexes.entry(key).or_insert(built))
    }

    pub(crate) fn stats(
        &self,
        key: AttrKey,
        build: impl FnOnce() -> AttributeStats,
    ) -> Arc<AttributeStats> {
        if let Some(hit) = self
            .inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .stats
            .get(&key)
        {
            return Arc::clone(hit);
        }
        let built = Arc::new(build());
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(inner.stats.entry(key).or_insert(built))
    }

    pub(crate) fn cardinality(&self, key: PathKey, compute: impl FnOnce() -> usize) -> usize {
        if let Some(hit) = self
            .inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .cardinalities
            .get(&key)
        {
            return *hit;
        }
        let computed = compute();
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        *inner.cardinalities.entry(key).or_insert(computed)
    }
}
