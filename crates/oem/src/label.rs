//! Interned edge labels.
//!
//! OEM edges carry string labels (`LocusID`, `Organism`, `Links`, …). The
//! same label typically decorates thousands of edges, so the store interns
//! labels into dense ids and edges carry the 4-byte id.

use std::collections::HashMap;
use std::fmt;

/// A dense id for an interned label, valid within one [`LabelInterner`]
/// (and therefore within one store).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Label(pub(crate) u32);

impl Label {
    /// Raw index into the interner's table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "label#{}", self.0)
    }
}

/// A bidirectional string↔id table for edge labels.
#[derive(Default, Debug, Clone)]
pub struct LabelInterner {
    names: Vec<String>,
    ids: HashMap<String, Label>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = Label(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Looks up an already-interned label without inserting.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.ids.get(name).copied()
    }

    /// The string for an id. Panics on an id from a different interner
    /// that is out of range.
    pub fn resolve(&self, label: Label) -> &str {
        &self.names[label.index()]
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Label(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut li = LabelInterner::new();
        let a = li.intern("LocusID");
        let b = li.intern("LocusID");
        assert_eq!(a, b);
        assert_eq!(li.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut li = LabelInterner::new();
        let a = li.intern("Symbol");
        let b = li.intern("symbol"); // labels are case-sensitive
        assert_ne!(a, b);
        assert_eq!(li.resolve(a), "Symbol");
        assert_eq!(li.resolve(b), "symbol");
    }

    #[test]
    fn get_does_not_insert() {
        let mut li = LabelInterner::new();
        assert_eq!(li.get("Organism"), None);
        let id = li.intern("Organism");
        assert_eq!(li.get("Organism"), Some(id));
        assert_eq!(li.len(), 1);
    }

    #[test]
    fn iter_yields_in_interning_order() {
        let mut li = LabelInterner::new();
        li.intern("a");
        li.intern("b");
        let names: Vec<&str> = li.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
