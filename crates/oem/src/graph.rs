//! Whole-graph operations: reachability, structural equality, fragment
//! import, and compaction.
//!
//! These are the primitives the upper layers build on: result fusion in the
//! mediator imports OEM fragments produced by different wrappers into one
//! answer store; reconciliation compares fragments structurally; query
//! answers are garbage-collected by compacting around the named roots.

use std::collections::{HashMap, HashSet};

use crate::object::ObjectKind;
use crate::oid::Oid;
use crate::store::OemStore;

/// The set of oids reachable from `roots` (including the roots).
pub fn reachable(store: &OemStore, roots: &[Oid]) -> HashSet<Oid> {
    let mut seen: HashSet<Oid> = HashSet::new();
    let mut stack: Vec<Oid> = Vec::new();
    for &r in roots {
        if store.get(r).is_some() && seen.insert(r) {
            stack.push(r);
        }
    }
    while let Some(o) = stack.pop() {
        for e in store.edges_of(o) {
            if seen.insert(e.target) {
                stack.push(e.target);
            }
        }
    }
    seen
}

/// Structural (bisimulation-style) equality of two rooted subgraphs.
///
/// Two objects are structurally equal when they are both atomic with equal
/// values, or both complex with edge lists of the same length whose i-th
/// edges carry the same label string and structurally equal targets. Edge
/// order matters (the store preserves insertion order, and the textual
/// notation is order-sensitive). Cycles are handled coinductively: a pair
/// already under comparison is assumed equal.
pub fn structural_eq(a: &OemStore, ra: Oid, b: &OemStore, rb: Oid) -> bool {
    let mut assumed: HashSet<(Oid, Oid)> = HashSet::new();
    eq_rec(a, ra, b, rb, &mut assumed)
}

fn eq_rec(a: &OemStore, oa: Oid, b: &OemStore, ob: Oid, assumed: &mut HashSet<(Oid, Oid)>) -> bool {
    let (Some(obj_a), Some(obj_b)) = (a.get(oa), b.get(ob)) else {
        return false;
    };
    match (obj_a.kind(), obj_b.kind()) {
        (ObjectKind::Atomic(va), ObjectKind::Atomic(vb)) => va == vb,
        (ObjectKind::Complex(ea), ObjectKind::Complex(eb)) => {
            if ea.len() != eb.len() {
                return false;
            }
            if !assumed.insert((oa, ob)) {
                return true; // already comparing this pair: coinductive yes
            }
            for (x, y) in ea.iter().zip(eb.iter()) {
                if a.label_name(x.label) != b.label_name(y.label) {
                    return false;
                }
                if !eq_rec(a, x.target, b, y.target, assumed) {
                    return false;
                }
            }
            true
        }
        _ => false,
    }
}

/// Deep-copies the subgraph under `src_root` from `src` into `dst`,
/// preserving sharing and cycles. Returns the oid of the copied root in
/// `dst`. Repeated imports of the same fragment create fresh copies; the
/// memo lives only for one call.
pub fn import_fragment(dst: &mut OemStore, src: &OemStore, src_root: Oid) -> Oid {
    let mut memo: HashMap<Oid, Oid> = HashMap::new();
    // First pass: allocate all reachable objects (atoms with their values,
    // complexes empty) so cycles can be wired in the second pass.
    let order: Vec<Oid> = {
        let mut seen = HashSet::new();
        let mut stack = vec![src_root];
        let mut order = Vec::new();
        while let Some(o) = stack.pop() {
            if !seen.insert(o) {
                continue;
            }
            order.push(o);
            for e in src.edges_of(o) {
                stack.push(e.target);
            }
        }
        order
    };
    for &o in &order {
        let copy = match src.get(o).map(|obj| obj.kind()) {
            Some(ObjectKind::Atomic(v)) => dst.new_atomic(v.clone()),
            Some(ObjectKind::Complex(_)) | None => dst.new_complex(),
        };
        memo.insert(o, copy);
    }
    for &o in &order {
        let from = memo[&o];
        // Collect first to end the immutable borrow of src edge list
        // before mutating dst (they are distinct stores, but the label
        // names borrow from src).
        let edges: Vec<(String, Oid)> = src
            .edges_of(o)
            .iter()
            .map(|e| (src.label_name(e.label).to_string(), memo[&e.target]))
            .collect();
        for (label, to) in edges {
            dst.add_edge(from, &label, to)
                .expect("copied edges target live objects");
        }
    }
    memo[&src_root]
}

/// One difference between two rooted OEM subgraphs, located by the label
/// path from the roots.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffEntry {
    /// The value of an atomic object changed.
    ValueChanged {
        /// Label path of the changed atom.
        path: String,
        /// The left-hand value's text.
        left: String,
        /// The right-hand value's text.
        right: String,
    },
    /// An edge (by label, at this path) exists only on the left.
    OnlyLeft {
        /// Label path of the left-only edge.
        path: String,
    },
    /// An edge (by label, at this path) exists only on the right.
    OnlyRight {
        /// Label path of the right-only edge.
        path: String,
    },
    /// The object kinds differ (atomic vs complex) at this path.
    KindChanged {
        /// Label path where the kinds diverge.
        path: String,
    },
}

impl std::fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffEntry::ValueChanged { path, left, right } => {
                write!(f, "~ {path}: \"{left}\" -> \"{right}\"")
            }
            DiffEntry::OnlyLeft { path } => write!(f, "- {path}"),
            DiffEntry::OnlyRight { path } => write!(f, "+ {path}"),
            DiffEntry::KindChanged { path } => write!(f, "! {path}: kind changed"),
        }
    }
}

/// One segment of a structured diff path: the k-th edge labelled
/// `label` (positional within that label group) at its parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSeg {
    /// Edge label.
    pub label: String,
    /// Positional index within the parent's edges of that label.
    pub index: usize,
}

/// The kind of edit a [`StructuredDiff`] reports at its path.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffOp {
    /// The value of an atomic object changed (left/right value text).
    ValueChanged {
        /// The left-hand value's text.
        left: String,
        /// The right-hand value's text.
        right: String,
    },
    /// An edge at this path exists only on the left.
    OnlyLeft,
    /// An edge at this path exists only on the right.
    OnlyRight,
    /// The object kinds differ (atomic vs complex) at this path.
    KindChanged,
}

/// One difference between two rooted subgraphs, addressed by a machine
/// traversable path instead of a formatted string. [`diff`] is the
/// string rendering of these entries; `annoda-persist` turns them into
/// journal records.
#[derive(Debug, Clone, PartialEq)]
pub struct StructuredDiff {
    /// Segments from the root down to the differing edge/object. Empty
    /// for a difference at the roots themselves.
    pub path: Vec<PathSeg>,
    /// What differs there.
    pub op: DiffOp,
}

impl StructuredDiff {
    /// The `Gene[2].Symbol[0]` rendering of the path.
    pub fn path_string(&self) -> String {
        self.path
            .iter()
            .map(|s| format!("{}[{}]", s.label, s.index))
            .collect::<Vec<_>>()
            .join(".")
    }

    /// Resolves the object this path addresses, walking from `root`:
    /// each segment selects the index-th child under its label.
    pub fn resolve(store: &OemStore, root: Oid, path: &[PathSeg]) -> Option<Oid> {
        let mut at = root;
        for seg in path {
            at = store.children(at, &seg.label).nth(seg.index)?;
        }
        Some(at)
    }
}

/// Structural diff of two rooted subgraphs, reported as label-path
/// edits. Edges are matched positionally within each label (the k-th
/// `Gene` edge on the left against the k-th on the right); surplus edges
/// on either side are reported as additions/removals. Cycles are cut by
/// never revisiting an already-compared pair.
pub fn diff(a: &OemStore, ra: Oid, b: &OemStore, rb: Oid) -> Vec<DiffEntry> {
    diff_structured(a, ra, b, rb)
        .into_iter()
        .map(|entry| {
            let path = entry.path_string();
            match entry.op {
                DiffOp::ValueChanged { left, right } => {
                    DiffEntry::ValueChanged { path, left, right }
                }
                DiffOp::OnlyLeft => DiffEntry::OnlyLeft { path },
                DiffOp::OnlyRight => DiffEntry::OnlyRight { path },
                DiffOp::KindChanged => DiffEntry::KindChanged { path },
            }
        })
        .collect()
}

/// [`diff`] with machine-traversable paths (the form journaled deltas
/// are built from).
pub fn diff_structured(a: &OemStore, ra: Oid, b: &OemStore, rb: Oid) -> Vec<StructuredDiff> {
    let mut out = Vec::new();
    let mut visited: HashSet<(Oid, Oid)> = HashSet::new();
    let mut path = Vec::new();
    diff_rec(a, ra, b, rb, &mut path, &mut visited, &mut out);
    out
}

fn diff_rec(
    a: &OemStore,
    oa: Oid,
    b: &OemStore,
    ob: Oid,
    path: &mut Vec<PathSeg>,
    visited: &mut HashSet<(Oid, Oid)>,
    out: &mut Vec<StructuredDiff>,
) {
    if !visited.insert((oa, ob)) {
        return;
    }
    let (Some(obj_a), Some(obj_b)) = (a.get(oa), b.get(ob)) else {
        return;
    };
    let push = |out: &mut Vec<StructuredDiff>, path: &[PathSeg], seg: Option<PathSeg>, op| {
        let mut full = path.to_vec();
        full.extend(seg);
        out.push(StructuredDiff { path: full, op });
    };
    match (obj_a.kind(), obj_b.kind()) {
        (ObjectKind::Atomic(va), ObjectKind::Atomic(vb)) => {
            if va != vb {
                push(
                    out,
                    path,
                    None,
                    DiffOp::ValueChanged {
                        left: va.as_text(),
                        right: vb.as_text(),
                    },
                );
            }
        }
        (ObjectKind::Complex(_), ObjectKind::Complex(_)) => {
            // Group edges by label on both sides, preserving order.
            let group = |store: &OemStore, oid: Oid| {
                let mut m: Vec<(String, Vec<Oid>)> = Vec::new();
                for e in store.edges_of(oid) {
                    let name = store.label_name(e.label).to_string();
                    match m.iter_mut().find(|(l, _)| *l == name) {
                        Some((_, v)) => v.push(e.target),
                        None => m.push((name, vec![e.target])),
                    }
                }
                m
            };
            let ga = group(a, oa);
            let gb = group(b, ob);
            for (label, targets_a) in &ga {
                let targets_b = gb
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, v)| v.as_slice())
                    .unwrap_or(&[]);
                for (k, &ta) in targets_a.iter().enumerate() {
                    let seg = PathSeg {
                        label: label.clone(),
                        index: k,
                    };
                    match targets_b.get(k) {
                        Some(&tb) => {
                            path.push(seg);
                            diff_rec(a, ta, b, tb, path, visited, out);
                            path.pop();
                        }
                        None => push(out, path, Some(seg), DiffOp::OnlyLeft),
                    }
                }
                for k in targets_a.len()..targets_b.len() {
                    let seg = PathSeg {
                        label: label.clone(),
                        index: k,
                    };
                    push(out, path, Some(seg), DiffOp::OnlyRight);
                }
            }
            for (label, targets_b) in &gb {
                if !ga.iter().any(|(l, _)| l == label) {
                    for k in 0..targets_b.len() {
                        let seg = PathSeg {
                            label: label.clone(),
                            index: k,
                        };
                        push(out, path, Some(seg), DiffOp::OnlyRight);
                    }
                }
            }
        }
        _ => push(out, path, None, DiffOp::KindChanged),
    }
}

/// Builds a new store containing exactly the objects reachable from the
/// given named roots of `store`, re-registering those names. Returns the
/// compacted store and the oid remapping (old → new).
pub fn compact(store: &OemStore, keep_names: &[&str]) -> (OemStore, HashMap<Oid, Oid>) {
    let mut out = OemStore::new();
    let mut remap: HashMap<Oid, Oid> = HashMap::new();
    for &name in keep_names {
        let Some(root) = store.named(name) else {
            continue;
        };
        let new_root = if let Some(&r) = remap.get(&root) {
            r
        } else {
            import_fragment_memo(&mut out, store, root, &mut remap)
        };
        out.set_name_overwrite(name, new_root)
            .expect("fresh root is live");
    }
    (out, remap)
}

/// Like [`import_fragment`] but with a caller-supplied memo, so several
/// fragments can be imported into `dst` while sharing already-copied
/// objects (the mediator's result fusion and [`compact`] both need this).
pub fn import_fragment_memo(
    dst: &mut OemStore,
    src: &OemStore,
    src_root: Oid,
    memo: &mut HashMap<Oid, Oid>,
) -> Oid {
    let mut order = Vec::new();
    {
        let mut stack = vec![src_root];
        while let Some(o) = stack.pop() {
            if memo.contains_key(&o) || order.contains(&o) {
                continue;
            }
            order.push(o);
            for e in src.edges_of(o) {
                stack.push(e.target);
            }
        }
    }
    for &o in &order {
        let copy = match src.get(o).map(|obj| obj.kind()) {
            Some(ObjectKind::Atomic(v)) => dst.new_atomic(v.clone()),
            Some(ObjectKind::Complex(_)) | None => dst.new_complex(),
        };
        memo.insert(o, copy);
    }
    for &o in &order {
        let from = memo[&o];
        let edges: Vec<(String, Oid)> = src
            .edges_of(o)
            .iter()
            .map(|e| (src.label_name(e.label).to_string(), memo[&e.target]))
            .collect();
        for (label, to) in edges {
            dst.add_edge(from, &label, to)
                .expect("copied edges target live objects");
        }
    }
    memo[&src_root]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AtomicValue;

    fn two_gene_store() -> (OemStore, Oid) {
        let mut db = OemStore::new();
        let root = db.new_complex();
        let g = db.add_complex_child(root, "Gene").unwrap();
        db.add_atomic_child(g, "Symbol", "TP53").unwrap();
        let h = db.add_complex_child(root, "Gene").unwrap();
        db.add_atomic_child(h, "Symbol", "BRCA1").unwrap();
        db.set_name("R", root).unwrap();
        (db, root)
    }

    #[test]
    fn reachable_covers_subgraph_only() {
        let (mut db, root) = two_gene_store();
        let orphan = db.new_atomic(1i64);
        let r = reachable(&db, &[root]);
        assert_eq!(r.len(), 5);
        assert!(!r.contains(&orphan));
    }

    #[test]
    fn structural_eq_detects_equal_and_unequal() {
        let (a, ra) = two_gene_store();
        let (b, rb) = two_gene_store();
        assert!(structural_eq(&a, ra, &b, rb));

        let mut c = OemStore::new();
        let rc = c.new_complex();
        let g = c.add_complex_child(rc, "Gene").unwrap();
        c.add_atomic_child(g, "Symbol", "TP53").unwrap();
        assert!(!structural_eq(&a, ra, &c, rc)); // fewer genes
    }

    #[test]
    fn structural_eq_is_label_string_based_across_stores() {
        // Same label strings, interned in different orders.
        let mut a = OemStore::new();
        a.intern_label("Zed");
        let ra = a.new_complex();
        a.add_atomic_child(ra, "Symbol", "X").unwrap();

        let mut b = OemStore::new();
        let rb = b.new_complex();
        b.add_atomic_child(rb, "Symbol", "X").unwrap();
        assert!(structural_eq(&a, ra, &b, rb));
    }

    #[test]
    fn structural_eq_handles_cycles() {
        let mut a = OemStore::new();
        let ra = a.new_complex();
        let ca = a.add_complex_child(ra, "next").unwrap();
        a.add_edge(ca, "next", ra).unwrap();

        let mut b = OemStore::new();
        let rb = b.new_complex();
        let cb = b.add_complex_child(rb, "next").unwrap();
        b.add_edge(cb, "next", rb).unwrap();
        assert!(structural_eq(&a, ra, &b, rb));
    }

    #[test]
    fn import_preserves_structure_and_sharing() {
        let mut src = OemStore::new();
        let root = src.new_complex();
        let shared = src.add_complex_child(root, "A").unwrap();
        src.add_atomic_child(shared, "v", 7i64).unwrap();
        src.add_edge(root, "B", shared).unwrap();

        let mut dst = OemStore::new();
        dst.new_atomic("padding"); // offset oids so remapping is visible
        let copied = import_fragment(&mut dst, &src, root);
        assert!(structural_eq(&src, root, &dst, copied));
        let a = dst.child(copied, "A").unwrap();
        let b = dst.child(copied, "B").unwrap();
        assert_eq!(a, b, "sharing must be preserved");
    }

    #[test]
    fn import_handles_cycles() {
        let mut src = OemStore::new();
        let root = src.new_complex();
        let child = src.add_complex_child(root, "Child").unwrap();
        src.add_edge(child, "Parent", root).unwrap();

        let mut dst = OemStore::new();
        let copied = import_fragment(&mut dst, &src, root);
        let c2 = dst.child(copied, "Child").unwrap();
        assert_eq!(dst.child(c2, "Parent"), Some(copied));
    }

    #[test]
    fn compact_drops_unreachable_objects() {
        let (mut db, _root) = two_gene_store();
        for _ in 0..10 {
            db.new_atomic("garbage");
        }
        let before = db.len();
        let (small, remap) = compact(&db, &["R"]);
        assert_eq!(small.len(), 5);
        assert!(small.len() < before);
        let new_root = small.named("R").unwrap();
        assert!(structural_eq(&db, db.named("R").unwrap(), &small, new_root));
        assert_eq!(remap.len(), 5);
    }

    #[test]
    fn compact_with_shared_roots_shares_objects() {
        let mut db = OemStore::new();
        let a = db.new_complex();
        let shared = db.add_complex_child(a, "S").unwrap();
        db.add_atomic_child(shared, "v", AtomicValue::Int(1))
            .unwrap();
        let b = db.new_complex();
        db.add_edge(b, "S", shared).unwrap();
        db.set_name("A", a).unwrap();
        db.set_name("B", b).unwrap();
        let (small, _) = compact(&db, &["A", "B"]);
        let sa = small.child(small.named("A").unwrap(), "S").unwrap();
        let sb = small.child(small.named("B").unwrap(), "S").unwrap();
        assert_eq!(sa, sb, "shared object must not be duplicated");
        assert_eq!(small.len(), 4);
    }

    #[test]
    fn diff_reports_value_changes_and_membership() {
        let (a, ra) = two_gene_store();
        let mut b = a.clone();
        let rb = b.named("R").unwrap();
        // Change a symbol value.
        let g = b.child(rb, "Gene").unwrap();
        let sym = b.child(g, "Symbol").unwrap();
        b.set_value(sym, "TP53-v2").unwrap();
        // Add a third gene.
        let g3 = b.add_complex_child(rb, "Gene").unwrap();
        b.add_atomic_child(g3, "Symbol", "EGFR").unwrap();

        let d = diff(&a, ra, &b, rb);
        assert!(
            d.contains(&DiffEntry::ValueChanged {
                path: "Gene[0].Symbol[0]".into(),
                left: "TP53".into(),
                right: "TP53-v2".into(),
            }),
            "{d:?}"
        );
        assert!(d.contains(&DiffEntry::OnlyRight {
            path: "Gene[2]".into()
        }));
        // Identity diff is empty.
        assert!(diff(&a, ra, &a, ra).is_empty());
        // Reversed direction swaps the sign.
        let rd = diff(&b, rb, &a, ra);
        assert!(rd.contains(&DiffEntry::OnlyLeft {
            path: "Gene[2]".into()
        }));
    }

    #[test]
    fn diff_reports_kind_changes_and_handles_cycles() {
        let mut a = OemStore::new();
        let ra = a.new_complex();
        a.add_atomic_child(ra, "X", 1i64).unwrap();
        let mut b = OemStore::new();
        let rb = b.new_complex();
        b.add_complex_child(rb, "X").unwrap();
        let d = diff(&a, ra, &b, rb);
        assert_eq!(
            d,
            vec![DiffEntry::KindChanged {
                path: "X[0]".into()
            }]
        );
        assert!(d[0].to_string().contains("kind changed"));

        // Cyclic graphs terminate.
        let mut c = OemStore::new();
        let rc = c.new_complex();
        let child = c.add_complex_child(rc, "next").unwrap();
        c.add_edge(child, "next", rc).unwrap();
        assert!(diff(&c, rc, &c, rc).is_empty());
    }

    #[test]
    fn structured_diff_paths_resolve_in_the_right_store() {
        let (a, ra) = two_gene_store();
        let mut b = a.clone();
        let rb = b.named("R").unwrap();
        let g = b.children(rb, "Gene").nth(1).unwrap();
        let sym = b.child(g, "Symbol").unwrap();
        b.set_value(sym, "BRCA1-v2").unwrap();

        let sd = diff_structured(&a, ra, &b, rb);
        assert_eq!(sd.len(), 1);
        assert_eq!(sd[0].path_string(), "Gene[1].Symbol[0]");
        assert!(matches!(sd[0].op, DiffOp::ValueChanged { .. }));
        // Resolving the structured path in the right store lands on the
        // changed atom itself.
        let resolved = StructuredDiff::resolve(&b, rb, &sd[0].path).unwrap();
        assert_eq!(
            b.value_of(resolved),
            Some(&AtomicValue::Str("BRCA1-v2".into()))
        );
        // The string diff is exactly the rendering of the structured one.
        let strings: Vec<String> = diff(&a, ra, &b, rb).iter().map(|d| d.to_string()).collect();
        assert_eq!(
            strings,
            vec!["~ Gene[1].Symbol[0]: \"BRCA1\" -> \"BRCA1-v2\""]
        );
    }

    #[test]
    fn compact_missing_name_is_skipped() {
        let (db, _) = two_gene_store();
        let (small, _) = compact(&db, &["DoesNotExist"]);
        assert!(small.is_empty());
    }
}
