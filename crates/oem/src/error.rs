//! Error type for OEM operations.

use std::fmt;
use std::path::Path;

/// A structured description of a failed filesystem operation: which
/// operation, on which path, and what the OS reported. Carried by
/// [`OemError::Io`] (and re-used by `annoda-persist`) so callers can
/// branch on the failure kind instead of parsing a message string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoFailure {
    /// The operation that failed (`"read"`, `"write"`, `"rename"`, ...).
    pub op: &'static str,
    /// The path the operation targeted.
    pub path: String,
    /// The OS error classification.
    pub kind: std::io::ErrorKind,
    /// The OS error message.
    pub detail: String,
}

impl IoFailure {
    /// Captures a failed `std::io` operation on `path`.
    pub fn new(op: &'static str, path: &Path, error: &std::io::Error) -> Self {
        IoFailure {
            op,
            path: path.display().to_string(),
            kind: error.kind(),
            detail: error.to_string(),
        }
    }
}

impl fmt::Display for IoFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.op, self.path, self.detail)
    }
}

/// Errors raised by the OEM store and its textual reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OemError {
    /// An oid did not denote a live object in this store.
    DanglingOid(String),
    /// An edge was added from or described on an atomic object.
    NotComplex(String),
    /// A named root was registered twice.
    DuplicateName(String),
    /// The textual notation could not be parsed.
    Parse {
        /// 1-based line number of the offending input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Disk persistence failed.
    Io(IoFailure),
}

impl fmt::Display for OemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OemError::DanglingOid(what) => write!(f, "dangling oid: {what}"),
            OemError::NotComplex(what) => {
                write!(f, "operation requires a complex object: {what}")
            }
            OemError::DuplicateName(name) => {
                write!(f, "named root registered twice: {name}")
            }
            OemError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            OemError::Io(failure) => write!(f, "io error: {failure}"),
        }
    }
}

impl std::error::Error for OemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = OemError::Parse {
            line: 3,
            message: "bad oid".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(OemError::DuplicateName("GO".into())
            .to_string()
            .contains("GO"));
    }

    #[test]
    fn io_failures_are_structured() {
        let os = std::io::Error::new(std::io::ErrorKind::NotFound, "no such file");
        let f = IoFailure::new("read", Path::new("/tmp/x.oem"), &os);
        assert_eq!(f.kind, std::io::ErrorKind::NotFound);
        let e = OemError::Io(f);
        let text = e.to_string();
        assert!(text.contains("read"), "{text}");
        assert!(text.contains("/tmp/x.oem"), "{text}");
        assert!(text.contains("no such file"), "{text}");
    }
}
