//! Error type for OEM operations.

use std::fmt;

/// Errors raised by the OEM store and its textual reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OemError {
    /// An oid did not denote a live object in this store.
    DanglingOid(String),
    /// An edge was added from or described on an atomic object.
    NotComplex(String),
    /// A named root was registered twice.
    DuplicateName(String),
    /// The textual notation could not be parsed.
    Parse {
        /// 1-based line number of the offending input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Disk persistence failed.
    Io(String),
}

impl fmt::Display for OemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OemError::DanglingOid(what) => write!(f, "dangling oid: {what}"),
            OemError::NotComplex(what) => {
                write!(f, "operation requires a complex object: {what}")
            }
            OemError::DuplicateName(name) => {
                write!(f, "named root registered twice: {name}")
            }
            OemError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            OemError::Io(message) => write!(f, "io error: {message}"),
        }
    }
}

impl std::error::Error for OemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = OemError::Parse {
            line: 3,
            message: "bad oid".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(OemError::DuplicateName("GO".into())
            .to_string()
            .contains("GO"));
    }
}
