//! Atomic values and the ANNODA type extension of OEM.
//!
//! Plain OEM distinguishes only atomic and complex objects. ANNODA extends
//! the model with the *data type of the object's value* so that values from
//! different sources can be compared during integration. The disjoint basic
//! atomic types named in the paper are integer, real, string and gif; we add
//! boolean and URL, which the paper's figures use (`Links` targets are
//! web-links, and exclusion flags in the query interface are boolean).

use std::cmp::Ordering;
use std::fmt;

/// The type tag of an atomic value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum AtomicType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Real,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// A web-link. ANNODA uses URLs for interactive navigation.
    Url,
    /// Raw image bytes ("gif" in the paper's list of atomic types).
    Gif,
}

impl AtomicType {
    /// The human-readable name used by the Figure-3 textual notation.
    pub fn name(self) -> &'static str {
        match self {
            AtomicType::Int => "Integer",
            AtomicType::Real => "Real",
            AtomicType::Str => "String",
            AtomicType::Bool => "Boolean",
            AtomicType::Url => "Url",
            AtomicType::Gif => "Gif",
        }
    }

    /// Parses the Figure-3 name back into a type tag.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "Integer" => AtomicType::Int,
            "Real" => AtomicType::Real,
            "String" => AtomicType::Str,
            "Boolean" => AtomicType::Bool,
            "Url" => AtomicType::Url,
            "Gif" => AtomicType::Gif,
            _ => return None,
        })
    }
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The type of any OEM object: one of the atomic types, or complex.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OemType {
    /// An atomic object of the given value type.
    Atomic(AtomicType),
    /// A complex object (a set of object references).
    Complex,
}

impl OemType {
    /// The name used by the textual notation (`Complex` or the atomic name).
    pub fn name(self) -> &'static str {
        match self {
            OemType::Atomic(a) => a.name(),
            OemType::Complex => "Complex",
        }
    }

    /// Parses a type name as emitted by [`OemType::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        if name == "Complex" {
            Some(OemType::Complex)
        } else {
            AtomicType::from_name(name).map(OemType::Atomic)
        }
    }
}

impl fmt::Display for OemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An atomic object's value.
#[derive(Clone, PartialEq, Debug)]
pub enum AtomicValue {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Real(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// A web-link used for interactive navigation.
    Url(String),
    /// Raw image bytes.
    Gif(Vec<u8>),
}

impl AtomicValue {
    /// The type tag of this value.
    pub fn atomic_type(&self) -> AtomicType {
        match self {
            AtomicValue::Int(_) => AtomicType::Int,
            AtomicValue::Real(_) => AtomicType::Real,
            AtomicValue::Str(_) => AtomicType::Str,
            AtomicValue::Bool(_) => AtomicType::Bool,
            AtomicValue::Url(_) => AtomicType::Url,
            AtomicValue::Gif(_) => AtomicType::Gif,
        }
    }

    /// Lorel-style coercion to a real number, if the value is numeric or a
    /// string spelling a number. Lorel compares across types by coercing
    /// both sides where a sensible coercion exists.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            AtomicValue::Int(i) => Some(*i as f64),
            AtomicValue::Real(r) => Some(*r),
            AtomicValue::Str(s) => s.trim().parse::<f64>().ok(),
            _ => None,
        }
    }

    /// The textual form of the value, used both by the Figure-3 notation
    /// and by string-side coercion.
    pub fn as_text(&self) -> String {
        match self {
            AtomicValue::Int(i) => i.to_string(),
            AtomicValue::Real(r) => format_real(*r),
            AtomicValue::Str(s) => s.clone(),
            AtomicValue::Bool(b) => b.to_string(),
            AtomicValue::Url(u) => u.clone(),
            AtomicValue::Gif(bytes) => format!("<gif:{}B>", bytes.len()),
        }
    }

    /// Lorel equality with coercion: values of the same type compare
    /// natively; numeric/string pairs compare after numeric coercion when
    /// the string spells a number, otherwise textually.
    pub fn lorel_eq(&self, other: &AtomicValue) -> bool {
        self.lorel_cmp(other) == Some(Ordering::Equal)
    }

    /// Lorel three-way comparison with coercion. Returns `None` when the
    /// two values are incomparable (e.g. a gif against an integer), which
    /// in Lorel semantics makes any comparison predicate silently false.
    pub fn lorel_cmp(&self, other: &AtomicValue) -> Option<Ordering> {
        use AtomicValue::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Real(a), Real(b)) => a.partial_cmp(b),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Gif(a), Gif(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Url(a), Url(b)) => Some(a.cmp(b)),
            // Url/Str interchange textually.
            (Str(a), Url(b)) | (Url(a), Str(b)) => Some(a.cmp(b)),
            // Numeric mixes coerce to real.
            (Int(_), Real(_)) | (Real(_), Int(_)) => self.as_real()?.partial_cmp(&other.as_real()?),
            // Number against string: numeric coercion if the string parses,
            // textual comparison otherwise.
            (Int(_) | Real(_), Str(s)) => match s.trim().parse::<f64>() {
                Ok(n) => self.as_real()?.partial_cmp(&n),
                Err(_) => Some(self.as_text().cmp(s)),
            },
            (Str(s), Int(_) | Real(_)) => match s.trim().parse::<f64>() {
                Ok(n) => n.partial_cmp(&other.as_real()?),
                Err(_) => Some(s.cmp(&other.as_text())),
            },
            _ => None,
        }
    }

    /// Substring match used by Lorel's `like` operator. The pattern uses
    /// SQL wildcards: `%` matches any run, `_` a single character.
    pub fn lorel_like(&self, pattern: &str) -> bool {
        like_match(&self.as_text(), pattern)
    }
}

impl fmt::Display for AtomicValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_text())
    }
}

impl From<i64> for AtomicValue {
    fn from(v: i64) -> Self {
        AtomicValue::Int(v)
    }
}
impl From<f64> for AtomicValue {
    fn from(v: f64) -> Self {
        AtomicValue::Real(v)
    }
}
impl From<&str> for AtomicValue {
    fn from(v: &str) -> Self {
        AtomicValue::Str(v.to_string())
    }
}
impl From<String> for AtomicValue {
    fn from(v: String) -> Self {
        AtomicValue::Str(v)
    }
}
impl From<bool> for AtomicValue {
    fn from(v: bool) -> Self {
        AtomicValue::Bool(v)
    }
}

/// Formats a real so that integral reals keep a trailing `.0`, making the
/// textual notation round-trippable (the reader would otherwise parse
/// `2` back as an integer).
fn format_real(r: f64) -> String {
    if r.fract() == 0.0 && r.is_finite() && r.abs() < 1e15 {
        format!("{r:.1}")
    } else {
        r.to_string()
    }
}

/// SQL-style `like` matching with `%` and `_`, case-sensitive, iterative
/// two-pointer algorithm (no recursion, no allocation beyond char buffers).
fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while ti < t.len() {
        // The wildcard test must come first: a literal `%` in the text
        // must not consume a `%` wildcard in the pattern.
        if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_t = ti;
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if star_p != usize::MAX {
            star_t += 1;
            ti = star_t;
            pi = star_p + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_round_trip() {
        for ty in [
            AtomicType::Int,
            AtomicType::Real,
            AtomicType::Str,
            AtomicType::Bool,
            AtomicType::Url,
            AtomicType::Gif,
        ] {
            assert_eq!(AtomicType::from_name(ty.name()), Some(ty));
        }
        assert_eq!(OemType::from_name("Complex"), Some(OemType::Complex));
        assert_eq!(OemType::from_name("Nonsense"), None);
    }

    #[test]
    fn int_real_coercion_compares_numerically() {
        let a = AtomicValue::Int(2);
        let b = AtomicValue::Real(2.0);
        assert!(a.lorel_eq(&b));
        assert_eq!(
            AtomicValue::Int(3).lorel_cmp(&AtomicValue::Real(2.5)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn numeric_string_coerces_when_it_parses() {
        assert!(AtomicValue::Int(42).lorel_eq(&AtomicValue::Str("42".into())));
        assert!(AtomicValue::Str(" 42 ".into()).lorel_eq(&AtomicValue::Real(42.0)));
    }

    #[test]
    fn non_numeric_string_against_number_compares_textually() {
        let n = AtomicValue::Int(42);
        let s = AtomicValue::Str("forty-two".into());
        // "42" < "forty-two" lexicographically.
        assert_eq!(n.lorel_cmp(&s), Some(Ordering::Less));
    }

    #[test]
    fn url_and_string_interchange() {
        let u = AtomicValue::Url("http://x".into());
        let s = AtomicValue::Str("http://x".into());
        assert!(u.lorel_eq(&s));
    }

    #[test]
    fn gif_against_int_is_incomparable() {
        assert_eq!(
            AtomicValue::Gif(vec![1]).lorel_cmp(&AtomicValue::Int(1)),
            None
        );
    }

    #[test]
    fn real_text_round_trip_keeps_decimal_point() {
        assert_eq!(AtomicValue::Real(2.0).as_text(), "2.0");
        assert_eq!(AtomicValue::Real(2.5).as_text(), "2.5");
    }

    #[test]
    fn like_matching() {
        let v = AtomicValue::Str("tumor protein p53".into());
        assert!(v.lorel_like("%p53"));
        assert!(v.lorel_like("tumor%"));
        assert!(v.lorel_like("%protein%"));
        assert!(v.lorel_like("tumor _rotein p53"));
        assert!(!v.lorel_like("p53"));
        assert!(AtomicValue::Str(String::new()).lorel_like("%"));
        assert!(!AtomicValue::Str(String::new()).lorel_like("_"));
    }

    #[test]
    fn bool_ordering() {
        assert_eq!(
            AtomicValue::Bool(false).lorel_cmp(&AtomicValue::Bool(true)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn nan_real_is_incomparable() {
        assert_eq!(
            AtomicValue::Real(f64::NAN).lorel_cmp(&AtomicValue::Real(1.0)),
            None
        );
    }
}
