//! # annoda-oem — the Object Exchange Model
//!
//! The Object Exchange Model (OEM) is the semi-structured data model ANNODA
//! uses to express both the per-source local models (ANNODA-OML) and the
//! federated global model (ANNODA-GML). Data in OEM is a rooted, labelled
//! graph:
//!
//! * every entity is an **object** with a unique object identifier
//!   ([`Oid`]);
//! * **atomic** objects carry a value from one of the disjoint basic atomic
//!   types (integer, real, string, boolean, URL, GIF) — the value-type
//!   extension the ANNODA paper adds to plain OEM;
//! * **complex** objects hold a set of *object references*, denoted as
//!   `(label, oid, type)` triples ([`Edge`]).
//!
//! The crate provides:
//!
//! * [`OemStore`] — an arena-backed graph store with named roots and an
//!   interned label table;
//! * [`text`] — the indented textual notation of Figure 3 of the paper
//!   (`label  &oid  type  value`), both writer and reader;
//! * [`path`] — Lorel-style path expressions (label sequences, `%` single
//!   wildcard, `#` arbitrary-path wildcard) evaluated against a store;
//! * [`dataguide`] — DataGuide structural summaries used by the mediator's
//!   optimizer for source selection;
//! * [`graph`] — reachability, garbage collection, structural equality and
//!   cross-store fragment import (the primitive result fusion builds on).

mod cache;
pub mod dataguide;
pub mod error;
pub mod graph;
pub mod harvest;
pub mod index;
pub mod label;
pub mod object;
pub mod oid;
pub mod overlay;
pub mod path;
pub mod shard;
pub mod stats;
pub mod store;
pub mod text;
pub mod value;

pub use error::{IoFailure, OemError};
pub use graph::{diff, diff_structured, DiffEntry, DiffOp, PathSeg, StructuredDiff};
pub use harvest::{atomic_text, DocSpec, HarvestText, TextDoc};
pub use index::ValueIndex;
pub use label::{Label, LabelInterner};
pub use object::{Edge, Object, ObjectKind};
pub use oid::Oid;
pub use overlay::{AnswerOverlay, OemRead, Snapshot};
pub use path::{PathExpr, PathStep};
pub use shard::{fragment_key, mask_stamp, shard_mask, ShardRouter, ShardedStore, MAX_SHARDS};
pub use stats::AttributeStats;
pub use store::{store_clone_count, OemStore};
pub use value::{AtomicType, AtomicValue, OemType};
