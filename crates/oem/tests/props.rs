//! Property-based tests for the OEM store: random graphs must survive
//! the textual notation, fragment import, and compaction unchanged, and
//! path evaluation must agree with its set-semantics specification.

use proptest::prelude::*;

use annoda_oem::graph::{compact, import_fragment, reachable, structural_eq};
use annoda_oem::{text, AtomicValue, OemStore, Oid, PathExpr};

/// A recipe for building a random store: a list of node specs. Complex
/// nodes pick edges to earlier nodes (guaranteeing liveness) plus
/// optional back-edges (cycles).
#[derive(Debug, Clone)]
enum NodeSpec {
    Int(i64),
    Real(f64),
    Str(String),
    Bool(bool),
    Complex {
        // (label index, target offset) — both reduced modulo bounds.
        forward: Vec<(u8, u8)>,
        back: Vec<(u8, u8)>,
    },
}

const LABELS: &[&str] = &["a", "b", "Gene", "Symbol", "Links"];

fn value_text() -> impl Strategy<Value = String> {
    // Printable strings including the characters the writer escapes.
    proptest::string::string_regex("[ -~]{0,12}").expect("valid regex")
}

fn node_spec() -> impl Strategy<Value = NodeSpec> {
    prop_oneof![
        any::<i64>().prop_map(NodeSpec::Int),
        (-1.0e6..1.0e6f64).prop_map(NodeSpec::Real),
        value_text().prop_map(NodeSpec::Str),
        any::<bool>().prop_map(NodeSpec::Bool),
        (
            proptest::collection::vec((any::<u8>(), any::<u8>()), 0..4),
            proptest::collection::vec((any::<u8>(), any::<u8>()), 0..2)
        )
            .prop_map(|(forward, back)| NodeSpec::Complex { forward, back }),
    ]
}

fn build(specs: &[NodeSpec]) -> (OemStore, Oid) {
    let mut store = OemStore::new();
    let root = store.new_complex();
    let mut oids = vec![root];
    for spec in specs {
        let oid = match spec {
            NodeSpec::Int(v) => store.new_atomic(AtomicValue::Int(*v)),
            NodeSpec::Real(v) => store.new_atomic(AtomicValue::Real(*v)),
            NodeSpec::Str(v) => store.new_atomic(AtomicValue::Str(v.clone())),
            NodeSpec::Bool(v) => store.new_atomic(AtomicValue::Bool(*v)),
            NodeSpec::Complex { forward, .. } => {
                let oid = store.new_complex();
                for (li, ti) in forward {
                    let label = LABELS[*li as usize % LABELS.len()];
                    let target = oids[*ti as usize % oids.len()];
                    store.add_edge(oid, label, target).unwrap();
                }
                oid
            }
        };
        // Attach to the root so everything is reachable.
        store
            .add_edge(root, LABELS[oids.len() % LABELS.len()], oid)
            .unwrap();
        oids.push(oid);
    }
    // Second pass: back edges (may create cycles).
    for (i, spec) in specs.iter().enumerate() {
        if let NodeSpec::Complex { back, .. } = spec {
            let from = oids[i + 1];
            for (li, ti) in back {
                let label = LABELS[*li as usize % LABELS.len()];
                let target = oids[*ti as usize % oids.len()];
                let _ = store.add_edge(from, label, target);
            }
        }
    }
    store.set_name("R", root).unwrap();
    (store, root)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_notation_round_trips(specs in proptest::collection::vec(node_spec(), 0..12)) {
        let (store, root) = build(&specs);
        let rendered = text::write_named(&store, "R").unwrap();
        let (parsed, parsed_root) = text::read(&rendered).unwrap();
        prop_assert!(structural_eq(&store, root, &parsed, parsed_root));
    }

    #[test]
    fn store_text_round_trips_multi_root_corpora(
        specs in proptest::collection::vec(node_spec(), 0..12),
        extra_roots in proptest::collection::vec(any::<u8>(), 0..4),
    ) {
        // write_store/read_store must round-trip whole corpora with
        // several named roots (shared subgraphs included), not just the
        // single-root fragments `write_named` covers.
        let (mut store, _root) = build(&specs);
        let oids: Vec<Oid> = store.oids().collect();
        for (i, pick) in extra_roots.iter().enumerate() {
            let target = oids[*pick as usize % oids.len()];
            store.set_name_overwrite(&format!("Extra{i}"), target).unwrap();
        }
        let rendered = text::write_store(&store);
        let parsed = text::read_store(&rendered).unwrap();
        let names: Vec<String> = store.names().map(|(n, _)| n.to_string()).collect();
        let parsed_names: Vec<String> = parsed.names().map(|(n, _)| n.to_string()).collect();
        prop_assert_eq!(&names, &parsed_names);
        for name in &names {
            prop_assert!(
                structural_eq(
                    &store,
                    store.named(name).unwrap(),
                    &parsed,
                    parsed.named(name).unwrap(),
                ),
                "root {} diverged after round-trip", name
            );
        }
    }

    #[test]
    fn import_fragment_preserves_structure(specs in proptest::collection::vec(node_spec(), 0..12)) {
        let (store, root) = build(&specs);
        let mut dst = OemStore::new();
        dst.new_atomic("offset");
        let copied = import_fragment(&mut dst, &store, root);
        prop_assert!(structural_eq(&store, root, &dst, copied));
    }

    #[test]
    fn compact_preserves_structure_and_drops_garbage(
        specs in proptest::collection::vec(node_spec(), 0..12),
        garbage in 0usize..5,
    ) {
        let (mut store, root) = build(&specs);
        for _ in 0..garbage {
            store.new_atomic("unreachable");
        }
        let (small, _) = compact(&store, &["R"]);
        let new_root = small.named("R").unwrap();
        prop_assert!(structural_eq(&store, root, &small, new_root));
        prop_assert_eq!(small.len(), reachable(&store, &[root]).len());
    }

    #[test]
    fn hash_path_equals_reachability(specs in proptest::collection::vec(node_spec(), 0..12)) {
        let (store, root) = build(&specs);
        let via_path: std::collections::HashSet<Oid> =
            PathExpr::parse("#").unwrap().eval(&store, root).into_iter().collect();
        let via_reach = reachable(&store, &[root]);
        prop_assert_eq!(via_path, via_reach);
    }

    #[test]
    fn path_results_are_duplicate_free(
        specs in proptest::collection::vec(node_spec(), 0..12),
        path in prop_oneof![
            Just("a"), Just("a.b"), Just("%"), Just("%.%"), Just("#.a"), Just("(a|b)")
        ],
    ) {
        let (store, root) = build(&specs);
        let results = PathExpr::parse(path).unwrap().eval(&store, root);
        let set: std::collections::HashSet<Oid> = results.iter().copied().collect();
        prop_assert_eq!(set.len(), results.len(), "duplicates in {:?}", results);
    }

    #[test]
    fn structural_eq_is_reflexive(specs in proptest::collection::vec(node_spec(), 0..12)) {
        let (store, root) = build(&specs);
        prop_assert!(structural_eq(&store, root, &store, root));
    }

    #[test]
    fn structurally_equal_graphs_have_empty_diffs(
        specs in proptest::collection::vec(node_spec(), 0..12),
    ) {
        // structural_eq (order-sensitive) implies an empty diff
        // (label-grouped); the converse need not hold when interleaved
        // labels reorder.
        let (a, ra) = build(&specs);
        let (b, rb) = build(&specs);
        prop_assert!(structural_eq(&a, ra, &b, rb));
        prop_assert!(annoda_oem::graph::diff(&a, ra, &b, rb).is_empty());
    }

    #[test]
    fn value_index_agrees_with_scan(
        values in proptest::collection::vec(
            proptest::string::string_regex("[a-c]{1,3}").unwrap(),
            0..12,
        ),
        key in proptest::string::string_regex("[a-c]{1,3}").unwrap(),
    ) {
        let mut db = OemStore::new();
        let root = db.new_complex();
        let mut parents = Vec::new();
        for v in &values {
            let g = db.add_complex_child(root, "G").unwrap();
            db.add_atomic_child(g, "v", v.as_str()).unwrap();
            parents.push(g);
        }
        let index = annoda_oem::ValueIndex::build(&db, &parents, "v");
        let via_index: Vec<Oid> = index.lookup(&key).to_vec();
        let via_scan: Vec<Oid> = parents
            .iter()
            .copied()
            .filter(|&p| {
                db.children(p, "v")
                    .any(|c| db.value_of(c).map(|v| v.as_text()) == Some(key.clone()))
            })
            .collect();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn lorel_like_agrees_with_naive_matcher(
        text in proptest::string::string_regex("[a-c%_]{0,8}").unwrap(),
        pattern in proptest::string::string_regex("[a-c%_]{0,6}").unwrap(),
    ) {
        fn naive(t: &[char], p: &[char]) -> bool {
            match (t.first(), p.first()) {
                (_, None) => t.is_empty(),
                (_, Some('%')) => naive(t, &p[1..]) || (!t.is_empty() && naive(&t[1..], p)),
                (None, _) => false,
                (Some(tc), Some(pc)) => (*pc == '_' || tc == pc) && naive(&t[1..], &p[1..]),
            }
        }
        let t: Vec<char> = text.chars().collect();
        let p: Vec<char> = pattern.chars().collect();
        let expected = naive(&t, &p);
        let got = AtomicValue::Str(text.clone()).lorel_like(&pattern);
        prop_assert_eq!(got, expected, "text={:?} pattern={:?}", text, pattern);
    }
}
