//! Query optimisation across multi-systems.
//!
//! The mediator plans a decomposed question before touching any source:
//!
//! * **source selection** — only sources whose entities the question
//!   needs are contacted (and, via per-source DataGuides, only sources
//!   that actually contain the entity's path);
//! * **predicate pushdown** — selections translate into the per-source
//!   subqueries when the source is capable, shrinking shipped results;
//! * **cost ordering** — steps are ordered cheapest-first under the
//!   sources' latency models and DataGuide cardinality estimates.
//!
//! Both optimisations can be disabled for the B5 ablation.

use std::collections::HashMap;

use annoda_oem::AttributeStats;
use annoda_wrap::{Capabilities, LatencyModel};

use crate::decompose::{decompose, DecomposedQuery, GeneQuestion, SourceQuery};
use crate::gml::GlobalModel;

/// Optimiser switches (the B5 ablation knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Translate predicates into subqueries when sources allow it.
    pub pushdown: bool,
    /// Contact only the sources the question needs.
    pub source_selection: bool,
    /// Two-phase bind join: run the gene subqueries first and, when the
    /// qualifying gene set is small, push its symbols as a disjunction
    /// into the annotation/disease subqueries (a semijoin across
    /// sources). Changes cost only, never answers.
    pub bind_join: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            pushdown: true,
            source_selection: true,
            bind_join: false,
        }
    }
}

/// Bind joins only pay off for small key sets: above this many distinct
/// symbols the second phase runs unbound.
pub const BIND_JOIN_MAX_KEYS: usize = 64;

/// Planning facts about one source, gathered from its wrapper.
#[derive(Debug, Clone)]
pub struct SourceInfo {
    /// Source name.
    pub name: String,
    /// Native capabilities.
    pub capabilities: Capabilities,
    /// Simulated latency.
    pub latency: LatencyModel,
    /// Exact cardinality per local entity label (from the OML DataGuide).
    pub entity_cardinality: HashMap<String, usize>,
    /// Per-attribute value statistics, keyed by `Entity.Attribute` in
    /// the source's local vocabulary (`Locus.Organism`). Collected from
    /// the OML for the attributes the mapping rules cover.
    pub attr_stats: HashMap<String, AttributeStats>,
}

/// One planned subquery with its cost estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// The subquery to execute.
    pub query: SourceQuery,
    /// Estimated records shipped (DataGuide cardinality, discounted when
    /// a predicate was pushed down).
    pub est_records: u64,
    /// Estimated virtual cost in microseconds.
    pub est_cost_us: u64,
}

/// The ordered execution plan for one question.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecutionPlan {
    /// Steps in planned execution order (cheapest first).
    pub steps: Vec<PlanStep>,
    /// Predicates the mediator must evaluate itself.
    pub residual: Vec<String>,
}

impl ExecutionPlan {
    /// Total estimated virtual cost.
    pub fn est_total_us(&self) -> u64 {
        self.steps.iter().map(|s| s.est_cost_us).sum()
    }

    /// A one-line-per-step textual rendering (for the fig5 harness).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "{:>2}. [{}] {:?}{} est {} records, {} us\n   {}\n",
                i + 1,
                s.query.source,
                s.query.purpose,
                if s.query.pushed_down {
                    " (pushdown)"
                } else {
                    ""
                },
                s.est_records,
                s.est_cost_us,
                s.query.lorel
            ));
        }
        if !self.residual.is_empty() {
            out.push_str(&format!(
                "residual at mediator: {}\n",
                self.residual.join(" and ")
            ));
        }
        out
    }
}

/// Fallback selectivity for a pushed-down predicate whose attribute has
/// no collected statistics (the classic 10 % selection factor).
const FALLBACK_SELECTIVITY: f64 = 0.1;

/// Plans a question: decompose, prune, estimate, order.
pub fn plan(
    question: &GeneQuestion,
    model: &GlobalModel,
    infos: &[SourceInfo],
    config: OptimizerConfig,
) -> ExecutionPlan {
    let info_of = |name: &str| infos.iter().find(|i| i.name == name);

    // Pushdown requires the capability on every involved source; the
    // decomposer is driven per-question, so compute the effective switch
    // per source below by re-checking capability.
    let decomposed: DecomposedQuery =
        decompose(question, model, config.pushdown, !config.source_selection);

    let mut steps = Vec::new();
    let mut residual = decomposed.residual;
    for mut q in decomposed.queries {
        let Some(info) = info_of(&q.source) else {
            continue; // no wrapper — cannot execute
        };
        // A source without pushdown capability gets the unfiltered query.
        if q.pushed_down && !info.capabilities.predicate_pushdown {
            let (stripped, _) = strip_where(&q.lorel);
            residual.push(format!(
                "(filter for {}, source {})",
                q.purpose.entity(),
                q.source
            ));
            q.lorel = stripped;
            q.pushed_down = false;
            q.predicates.clear();
        }
        // Source selection via DataGuide: a source that does not contain
        // the entity's local path ships nothing; skip it.
        let cardinality = info
            .entity_cardinality
            .get(&q.entity_local)
            .copied()
            .unwrap_or(0);
        if config.source_selection && cardinality == 0 {
            continue;
        }
        // Selectivity of the pushed predicates, from the per-attribute
        // histograms where available (independence assumption across
        // conjuncts, the textbook default).
        let selectivity: f64 = q
            .predicates
            .iter()
            .map(|(attr, op, lit)| {
                info.attr_stats
                    .get(&format!("{}.{attr}", q.entity_local))
                    .map(|s| s.selectivity(op, lit))
                    .unwrap_or(FALLBACK_SELECTIVITY)
            })
            .product();
        let est_records = if q.pushed_down {
            ((cardinality as f64) * selectivity).ceil() as u64
        } else {
            cardinality as u64
        };
        let est_cost_us = info.latency.request_cost(est_records);
        steps.push(PlanStep {
            query: q,
            est_records,
            est_cost_us,
        });
    }
    steps.sort_by_key(|s| s.est_cost_us);
    ExecutionPlan { steps, residual }
}

/// Removes the `where` clause from a generated subquery.
fn strip_where(lorel: &str) -> (String, bool) {
    match lorel.split_once(" where ") {
        Some((head, _)) => (head.to_string(), true),
        None => (lorel.to_string(), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::AspectClause;
    use crate::gml::GlobalModel;
    use annoda_match::Mdsm;
    use annoda_oem::{AtomicValue, OemStore};

    fn toy_model_and_infos() -> (GlobalModel, Vec<SourceInfo>) {
        let mut model = GlobalModel::new();
        let mdsm = Mdsm::default();

        let mut gene_oml = OemStore::new();
        let root = gene_oml.new_complex();
        let l = gene_oml.add_complex_child(root, "Locus").unwrap();
        gene_oml
            .add_atomic_child(l, "LocusID", AtomicValue::Int(1))
            .unwrap();
        gene_oml.add_atomic_child(l, "Symbol", "TP53").unwrap();
        gene_oml
            .add_atomic_child(l, "Organism", "Homo sapiens")
            .unwrap();
        gene_oml.set_name("LocusLink", root).unwrap();
        model.register_source(&mdsm, "LocusLink", &gene_oml);

        let mut omim_oml = OemStore::new();
        let root = omim_oml.new_complex();
        let e = omim_oml.add_complex_child(root, "Entry").unwrap();
        omim_oml
            .add_atomic_child(e, "MimNumber", AtomicValue::Int(2))
            .unwrap();
        omim_oml.add_atomic_child(e, "Title", "A SYNDROME").unwrap();
        omim_oml.add_atomic_child(e, "GeneSymbol", "TP53").unwrap();
        omim_oml.set_name("OMIM", root).unwrap();
        model.register_source(&mdsm, "OMIM", &omim_oml);

        let infos = vec![
            SourceInfo {
                name: "LocusLink".into(),
                capabilities: Capabilities::full(),
                latency: LatencyModel::remote(),
                entity_cardinality: HashMap::from([("Locus".to_string(), 100)]),
                attr_stats: HashMap::new(),
            },
            SourceInfo {
                name: "OMIM".into(),
                capabilities: Capabilities::full(),
                latency: LatencyModel::remote(),
                entity_cardinality: HashMap::from([("Entry".to_string(), 50)]),
                attr_stats: HashMap::new(),
            },
        ];
        (model, infos)
    }

    #[test]
    fn source_selection_skips_unneeded_sources() {
        let (model, infos) = toy_model_and_infos();
        let q = GeneQuestion::default(); // no function/disease constraint
        let plan_on = plan(&q, &model, &infos, OptimizerConfig::default());
        assert_eq!(plan_on.steps.len(), 1, "only the gene source is contacted");
        assert_eq!(plan_on.steps[0].query.source, "LocusLink");

        let plan_off = plan(
            &q,
            &model,
            &infos,
            OptimizerConfig {
                source_selection: false,
                ..OptimizerConfig::default()
            },
        );
        assert!(
            plan_off.steps.len() >= 2,
            "fetch-all contacts every provider"
        );
    }

    #[test]
    fn pushdown_reduces_estimates_and_is_reported() {
        let (model, infos) = toy_model_and_infos();
        let q = GeneQuestion {
            organism: Some("Homo sapiens".into()),
            ..GeneQuestion::default()
        };
        let with = plan(&q, &model, &infos, OptimizerConfig::default());
        let without = plan(
            &q,
            &model,
            &infos,
            OptimizerConfig {
                pushdown: false,
                ..OptimizerConfig::default()
            },
        );
        assert!(with.steps[0].query.pushed_down);
        assert!(!without.steps[0].query.pushed_down);
        assert!(with.steps[0].est_records < without.steps[0].est_records);
        assert!(with.est_total_us() < without.est_total_us());
        assert!(without.residual.iter().any(|r| r.contains("Organism")));
    }

    #[test]
    fn incapable_sources_get_stripped_queries() {
        let (model, mut infos) = toy_model_and_infos();
        infos[0].capabilities.predicate_pushdown = false;
        let q = GeneQuestion {
            organism: Some("Homo sapiens".into()),
            ..GeneQuestion::default()
        };
        let p = plan(&q, &model, &infos, OptimizerConfig::default());
        assert!(!p.steps[0].query.pushed_down);
        assert!(!p.steps[0].query.lorel.contains("where"));
        assert!(!p.residual.is_empty());
    }

    #[test]
    fn disease_clause_brings_in_omim_cheapest_first() {
        let (model, infos) = toy_model_and_infos();
        let q = GeneQuestion {
            disease: AspectClause::Exclude(None),
            ..GeneQuestion::default()
        };
        let p = plan(&q, &model, &infos, OptimizerConfig::default());
        let sources: Vec<&str> = p.steps.iter().map(|s| s.query.source.as_str()).collect();
        assert!(sources.contains(&"OMIM"));
        assert!(sources.contains(&"LocusLink"));
        // OMIM ships 50 records vs LocusLink's 100 → OMIM first.
        assert_eq!(p.steps[0].query.source, "OMIM");
        assert!(p.describe().contains("OMIM"));
    }

    #[test]
    fn helper_parsers() {
        let (stripped, had) = strip_where("select X from S.E X where X.a = \"1\"");
        assert_eq!(stripped, "select X from S.E X");
        assert!(had);
    }

    #[test]
    fn statistics_sharpen_pushdown_estimates() {
        let (model, mut infos) = toy_model_and_infos();
        // 80 of 100 loci are human: the histogram knows.
        let mut db = annoda_oem::OemStore::new();
        let root = db.new_complex();
        let mut parents = Vec::new();
        for i in 0..100 {
            let g = db.add_complex_child(root, "Locus").unwrap();
            db.add_atomic_child(
                g,
                "Organism",
                if i < 80 {
                    "Homo sapiens"
                } else {
                    "Mus musculus"
                },
            )
            .unwrap();
            parents.push(g);
        }
        let stats = AttributeStats::collect(&db, &parents, "Organism");
        infos[0]
            .attr_stats
            .insert("Locus.Organism".to_string(), stats);

        let q = GeneQuestion {
            organism: Some("Homo sapiens".into()),
            ..GeneQuestion::default()
        };
        let p = plan(&q, &model, &infos, OptimizerConfig::default());
        // 100 loci × 0.8 selectivity = 80, not the 10 the fallback
        // guess would produce.
        assert_eq!(p.steps[0].est_records, 80);

        let q = GeneQuestion {
            organism: Some("Mus musculus".into()),
            ..GeneQuestion::default()
        };
        let p = plan(&q, &model, &infos, OptimizerConfig::default());
        assert_eq!(p.steps[0].est_records, 20);
    }
}
