//! # annoda-mediator — the federated heart of ANNODA
//!
//! The mediator owns the global model (ANNODA-GML), the mapping rules that
//! relate it to each source's local model (ANNODA-OML), and the machinery
//! that makes one query against the global model behave like queries
//! against all the members:
//!
//! * [`gml`] — builds the ANNODA-GML global model of Figure 4 (Source /
//!   Gene / Function / Disease entities) and keeps per-source mapping
//!   rules produced by the MDSM matcher;
//! * [`mod@decompose`] — translates a global Lorel query into per-source
//!   subqueries over the sources' own vocabularies;
//! * [`optimizer`] — query optimisation across multi-systems: source
//!   selection via DataGuides, predicate pushdown into capable sources,
//!   and cost-ordered execution under the sources' latency models;
//! * [`fusion`] — combines subquery results into one integrated answer,
//!   keyed by the mapping rules' join keys;
//! * [`reconcile`] — detects conflicts and contradictions between sources
//!   and resolves them under a configurable policy (precedence, voting,
//!   union) — the Table 1 row the rival middleware systems lack;
//! * [`weblink`] — mints the `annoda://` and `http://` web-links that
//!   power interactive navigation (Figure 5c).

pub mod cache;
pub mod decompose;
pub mod fusion;
pub mod gml;
pub mod mediator;
pub mod optimizer;
pub mod reconcile;
pub mod weblink;

pub use cache::{CacheStats, SubqueryCache, DEFAULT_CACHE_CAPACITY};
pub use decompose::{
    decompose, AspectClause, Combination, DecomposedQuery, GeneQuestion, Purpose, SourceQuery,
};
pub use fusion::{
    aspect_clauses_pass, fuse, passes_question, DiseaseInfo, FunctionInfo, FusedAnswer,
    FusionStats, IntegratedGene, TaggedResult,
};
pub use gml::{GlobalModel, GmlBuilder};
pub use mediator::{FailureKind, MediatedAnswer, Mediator, MediatorError, SourceFailure};
pub use optimizer::{plan, ExecutionPlan, OptimizerConfig, PlanStep, SourceInfo};
pub use reconcile::{Conflict, ConflictKind, ReconcilePolicy, Reconciler};
pub use weblink::WebLink;
