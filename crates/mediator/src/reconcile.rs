//! Conflict detection and reconciliation.
//!
//! Annotation sources disagree: a locus record may claim a GO annotation
//! the GO database does not carry, and vice versa; two sources may report
//! different values for the same attribute. Table 1 singles this out —
//! K2/Kleisli and DiscoveryLink perform "no reconciliation of results",
//! whereas ANNODA reconciles at query time. This module implements the
//! detection and the resolution policies.

use std::fmt;

/// How a detected conflict was (or would be) resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConflictKind {
    /// Sources disagree whether an association (gene→function,
    /// gene→disease) holds.
    Membership {
        /// Sources asserting the association.
        claimed_by: Vec<String>,
        /// Sources covering the domain but not asserting it.
        denied_by: Vec<String>,
    },
    /// Sources report different atomic values for one logical attribute.
    Value {
        /// `(source, reported value)` pairs.
        values: Vec<(String, String)>,
    },
}

/// One detected conflict, with its resolution under the active policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The gene (or other subject) the conflict concerns.
    pub subject: String,
    /// The contested item (a GO id, a MIM number, an attribute name).
    pub item: String,
    /// What kind of disagreement.
    pub kind: ConflictKind,
    /// Whether the association/value was kept after reconciliation.
    pub kept: bool,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ConflictKind::Membership {
                claimed_by,
                denied_by,
            } => write!(
                f,
                "{}: {} claimed by [{}], absent in [{}] -> {}",
                self.subject,
                self.item,
                claimed_by.join(", "),
                denied_by.join(", "),
                if self.kept { "kept" } else { "dropped" }
            ),
            ConflictKind::Value { values } => write!(
                f,
                "{}: {} has conflicting values {:?} -> {}",
                self.subject,
                self.item,
                values,
                if self.kept { "kept first" } else { "dropped" }
            ),
        }
    }
}

/// The resolution policy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ReconcilePolicy {
    /// Keep anything any source asserts (recall-oriented).
    #[default]
    Union,
    /// Keep only what every covering source asserts (precision-oriented).
    Intersection,
    /// Follow the first source in the list that has an opinion.
    Precedence(Vec<String>),
    /// Keep when a strict majority of covering sources assert it.
    Vote,
    /// Domain-semantic: a disputed GO annotation survives only when the
    /// annotation source backs it with evidence of at least this
    /// reliability (GO codes: IEA=1, ISS=2, TAS=3, IDA=4, EXP=5).
    /// Non-annotation memberships fall back to union behaviour.
    MinEvidence(u8),
}

/// Applies a [`ReconcilePolicy`] to membership and value conflicts,
/// logging every disagreement it sees.
#[derive(Debug, Clone, Default)]
pub struct Reconciler {
    policy: ReconcilePolicy,
    conflicts: Vec<Conflict>,
}

impl Reconciler {
    /// A reconciler with the given policy.
    pub fn new(policy: ReconcilePolicy) -> Self {
        Reconciler {
            policy,
            conflicts: Vec::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &ReconcilePolicy {
        &self.policy
    }

    /// The conflicts logged so far.
    pub fn conflicts(&self) -> &[Conflict] {
        &self.conflicts
    }

    /// Consumes the reconciler, returning the conflict log.
    pub fn into_conflicts(self) -> Vec<Conflict> {
        self.conflicts
    }

    /// Decides whether an association holds given per-source opinions.
    ///
    /// `opinions` lists every source *covering* the association's domain
    /// with `true` (asserts) or `false` (covers but does not assert).
    /// Unanimous opinions pass through without logging; disagreements are
    /// logged with the policy's verdict.
    pub fn membership(&mut self, subject: &str, item: &str, opinions: &[(String, bool)]) -> bool {
        let claimed: Vec<String> = opinions
            .iter()
            .filter(|(_, c)| *c)
            .map(|(s, _)| s.clone())
            .collect();
        let denied: Vec<String> = opinions
            .iter()
            .filter(|(_, c)| !*c)
            .map(|(s, _)| s.clone())
            .collect();
        if claimed.is_empty() {
            return false;
        }
        if denied.is_empty() {
            return true;
        }
        let kept = match &self.policy {
            ReconcilePolicy::Union => true,
            ReconcilePolicy::Intersection => false,
            ReconcilePolicy::Vote => claimed.len() * 2 > opinions.len(),
            ReconcilePolicy::Precedence(order) => order
                .iter()
                .find_map(|s| opinions.iter().find(|(src, _)| src == s).map(|(_, c)| *c))
                .unwrap_or(true),
            // Evidence gating happens in fusion (which sees the codes);
            // by the time a dispute reaches the reconciler the evidence
            // test ran, so surviving claims are kept.
            ReconcilePolicy::MinEvidence(_) => true,
        };
        self.conflicts.push(Conflict {
            subject: subject.to_string(),
            item: item.to_string(),
            kind: ConflictKind::Membership {
                claimed_by: claimed,
                denied_by: denied,
            },
            kept,
        });
        kept
    }

    /// True when a disputed membership claim backed by the given GO
    /// evidence code (if any) survives this policy's evidence gate.
    pub fn evidence_passes(&self, evidence: Option<&str>) -> bool {
        match &self.policy {
            ReconcilePolicy::MinEvidence(min) => {
                let reliability = evidence
                    .and_then(annoda_sources::EvidenceCode::parse)
                    .map(|e| e.reliability())
                    .unwrap_or(0);
                reliability >= *min
            }
            _ => true,
        }
    }

    /// Picks one value for an attribute reported differently by several
    /// sources. Returns `None` when no source reported anything.
    pub fn value(
        &mut self,
        subject: &str,
        attribute: &str,
        values: &[(String, String)],
    ) -> Option<String> {
        if values.is_empty() {
            return None;
        }
        let distinct: Vec<&str> = {
            let mut v: Vec<&str> = values.iter().map(|(_, x)| x.as_str()).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        if distinct.len() == 1 {
            return Some(distinct[0].to_string());
        }
        let chosen = match &self.policy {
            ReconcilePolicy::Precedence(order) => order
                .iter()
                .find_map(|s| {
                    values
                        .iter()
                        .find(|(src, _)| src == s)
                        .map(|(_, v)| v.clone())
                })
                .unwrap_or_else(|| values[0].1.clone()),
            ReconcilePolicy::Vote => {
                // Most frequent value; ties break to first reported.
                let mut best = values[0].1.clone();
                let mut best_n = 0;
                for (_, v) in values {
                    let n = values.iter().filter(|(_, x)| x == v).count();
                    if n > best_n {
                        best_n = n;
                        best = v.clone();
                    }
                }
                best
            }
            // Union/Intersection do not order values; take first reported.
            _ => values[0].1.clone(),
        };
        self.conflicts.push(Conflict {
            subject: subject.to_string(),
            item: attribute.to_string(),
            kind: ConflictKind::Value {
                values: values.to_vec(),
            },
            kept: true,
        });
        Some(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opinions(list: &[(&str, bool)]) -> Vec<(String, bool)> {
        list.iter().map(|&(s, c)| (s.to_string(), c)).collect()
    }

    #[test]
    fn unanimous_membership_is_not_a_conflict() {
        let mut r = Reconciler::new(ReconcilePolicy::Union);
        assert!(r.membership(
            "TP53",
            "GO:1",
            &opinions(&[("LocusLink", true), ("GO", true)])
        ));
        assert!(!r.membership(
            "TP53",
            "GO:2",
            &opinions(&[("LocusLink", false), ("GO", false)])
        ));
        assert!(r.conflicts().is_empty());
    }

    #[test]
    fn union_keeps_and_intersection_drops() {
        let ops = opinions(&[("LocusLink", true), ("GO", false)]);
        let mut u = Reconciler::new(ReconcilePolicy::Union);
        assert!(u.membership("TP53", "GO:1", &ops));
        assert_eq!(u.conflicts().len(), 1);
        assert!(u.conflicts()[0].kept);

        let mut i = Reconciler::new(ReconcilePolicy::Intersection);
        assert!(!i.membership("TP53", "GO:1", &ops));
        assert!(!i.conflicts()[0].kept);
    }

    #[test]
    fn precedence_follows_the_trusted_source() {
        let ops = opinions(&[("LocusLink", true), ("GO", false)]);
        let mut go_first = Reconciler::new(ReconcilePolicy::Precedence(vec![
            "GO".into(),
            "LocusLink".into(),
        ]));
        assert!(!go_first.membership("TP53", "GO:1", &ops));
        let mut ll_first = Reconciler::new(ReconcilePolicy::Precedence(vec![
            "LocusLink".into(),
            "GO".into(),
        ]));
        assert!(ll_first.membership("TP53", "GO:1", &ops));
    }

    #[test]
    fn vote_needs_a_strict_majority() {
        let mut r = Reconciler::new(ReconcilePolicy::Vote);
        assert!(!r.membership("g", "x", &opinions(&[("a", true), ("b", false)])));
        assert!(r.membership(
            "g",
            "y",
            &opinions(&[("a", true), ("b", true), ("c", false)])
        ));
    }

    #[test]
    fn value_conflicts_resolve_by_policy() {
        let vals = vec![
            ("LocusLink".to_string(), "Homo sapiens".to_string()),
            ("OMIM".to_string(), "H. sapiens".to_string()),
            ("GO".to_string(), "Homo sapiens".to_string()),
        ];
        let mut vote = Reconciler::new(ReconcilePolicy::Vote);
        assert_eq!(
            vote.value("TP53", "Organism", &vals),
            Some("Homo sapiens".into())
        );
        let mut prec = Reconciler::new(ReconcilePolicy::Precedence(vec!["OMIM".into()]));
        assert_eq!(
            prec.value("TP53", "Organism", &vals),
            Some("H. sapiens".into())
        );
        assert_eq!(vote.conflicts().len(), 1);
    }

    #[test]
    fn agreeing_values_are_silent() {
        let vals = vec![
            ("A".to_string(), "x".to_string()),
            ("B".to_string(), "x".to_string()),
        ];
        let mut r = Reconciler::default();
        assert_eq!(r.value("g", "attr", &vals), Some("x".into()));
        assert!(r.conflicts().is_empty());
        assert_eq!(r.value("g", "attr", &[]), None);
    }

    #[test]
    fn conflict_display_is_readable() {
        let mut r = Reconciler::new(ReconcilePolicy::Intersection);
        r.membership(
            "TP53",
            "GO:1",
            &opinions(&[("LocusLink", true), ("GO", false)]),
        );
        let text = r.conflicts()[0].to_string();
        assert!(text.contains("TP53"));
        assert!(text.contains("dropped"));
    }
}
