//! Result fusion: combining per-source subquery results into one
//! integrated, reconciled answer.
//!
//! Fusion joins the shipped fragments on the mapping rules' join keys
//! (gene symbol, function id, disease id), reconciles membership and
//! value disagreements through the [`Reconciler`], applies the question's
//! residual predicates, and produces the integrated annotation view of
//! Figure 5b.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use annoda_oem::{AtomicValue, OemStore, Oid};
use annoda_wrap::SubqueryResult;

use crate::decompose::{AspectClause, Combination, GeneQuestion, Purpose};
use crate::reconcile::{Conflict, ReconcilePolicy, Reconciler};
use crate::weblink::WebLink;

/// One subquery result tagged with its origin and purpose.
#[derive(Debug, Clone)]
pub struct TaggedResult {
    /// The source that answered.
    pub source: String,
    /// What the rows feed.
    pub purpose: Purpose,
    /// The shipped fragment.
    pub result: SubqueryResult,
}

/// A reconciled gene→function association in the integrated view.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionInfo {
    /// The function id (GO accession).
    pub id: String,
    /// Term name, when the Function details were fetched.
    pub name: Option<String>,
    /// Namespace, when known.
    pub namespace: Option<String>,
    /// Evidence code from the annotation source, when known.
    pub evidence: Option<String>,
    /// Sources asserting the association.
    pub sources: Vec<String>,
    /// Navigation link.
    pub link: WebLink,
}

/// A reconciled gene→disease association in the integrated view.
#[derive(Debug, Clone, PartialEq)]
pub struct DiseaseInfo {
    /// The disease id (MIM number) as text.
    pub id: String,
    /// Entry title, when known.
    pub name: Option<String>,
    /// Inheritance mode, when known.
    pub inheritance: Option<String>,
    /// Sources asserting the association.
    pub sources: Vec<String>,
    /// Navigation link.
    pub link: WebLink,
}

/// A literature citation attached to a gene in the integrated view
/// (the fourth-source extension).
#[derive(Debug, Clone, PartialEq)]
pub struct PublicationInfo {
    /// The publication id (PMID) as text.
    pub id: String,
    /// Article title, when known.
    pub title: Option<String>,
    /// Publication year, when known.
    pub year: Option<String>,
    /// Journal, when known.
    pub journal: Option<String>,
    /// Sources asserting the citation.
    pub sources: Vec<String>,
    /// Navigation link.
    pub link: WebLink,
}

/// One gene of the integrated annotation view.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegratedGene {
    /// Official symbol (the join key).
    pub symbol: String,
    /// LocusID, when known.
    pub gene_id: Option<i64>,
    /// Organism, when known.
    pub organism: Option<String>,
    /// Description, when known.
    pub description: Option<String>,
    /// Cytogenetic position, when known.
    pub position: Option<String>,
    /// Reconciled function annotations.
    pub functions: Vec<FunctionInfo>,
    /// Reconciled disease associations.
    pub diseases: Vec<DiseaseInfo>,
    /// Literature citations (when a publication source is plugged in).
    pub publications: Vec<PublicationInfo>,
    /// Navigation links (source links + internal object view link).
    pub links: Vec<WebLink>,
}

/// Row counts observed during fusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FusionStats {
    /// Gene entity rows consumed.
    pub gene_rows: usize,
    /// Gene↔function association rows consumed.
    pub annotation_rows: usize,
    /// Function detail rows consumed.
    pub function_rows: usize,
    /// Disease rows consumed.
    pub disease_rows: usize,
    /// Literature citation rows consumed.
    pub publication_rows: usize,
}

/// The fused, reconciled, filtered answer.
#[derive(Debug, Clone)]
pub struct FusedAnswer {
    /// Genes passing the question, sorted by symbol.
    pub genes: Vec<IntegratedGene>,
    /// Conflicts detected during reconciliation.
    pub conflicts: Vec<Conflict>,
    /// Row counts.
    pub stats: FusionStats,
    /// Sources whose contribution is *missing* from this answer because
    /// they failed during execution (partial-results degradation). Empty
    /// for a complete answer. Set by the mediator after fusion — the
    /// degradation travels with the answer, it is not a silent drop.
    pub missing_sources: Vec<String>,
}

impl FusedAnswer {
    /// Materialises the integrated view as an OEM store (root
    /// `IntegratedView`) — the Figure 5b structure.
    pub fn to_store(&self) -> OemStore {
        let mut db = OemStore::new();
        let root = db.new_complex();
        for g in &self.genes {
            let gene = db.add_complex_child(root, "Gene").expect("root complex");
            db.add_atomic_child(gene, "Symbol", g.symbol.as_str())
                .expect("complex");
            if let Some(id) = g.gene_id {
                db.add_atomic_child(gene, "GeneID", AtomicValue::Int(id))
                    .expect("complex");
            }
            for (label, v) in [
                ("Organism", &g.organism),
                ("Description", &g.description),
                ("Position", &g.position),
            ] {
                if let Some(v) = v {
                    db.add_atomic_child(gene, label, v.as_str())
                        .expect("complex");
                }
            }
            for f in &g.functions {
                let fo = db.add_complex_child(gene, "Function").expect("complex");
                db.add_atomic_child(fo, "FunctionID", f.id.as_str())
                    .expect("complex");
                if let Some(n) = &f.name {
                    db.add_atomic_child(fo, "Name", n.as_str())
                        .expect("complex");
                }
                if let Some(ns) = &f.namespace {
                    db.add_atomic_child(fo, "Namespace", ns.as_str())
                        .expect("complex");
                }
                if let Some(e) = &f.evidence {
                    db.add_atomic_child(fo, "Evidence", e.as_str())
                        .expect("complex");
                }
                db.add_atomic_child(fo, "Link", AtomicValue::Url(f.link.url.clone()))
                    .expect("complex");
            }
            for d in &g.diseases {
                let dis = db.add_complex_child(gene, "Disease").expect("complex");
                db.add_atomic_child(dis, "DiseaseID", d.id.as_str())
                    .expect("complex");
                if let Some(n) = &d.name {
                    db.add_atomic_child(dis, "Name", n.as_str())
                        .expect("complex");
                }
                if let Some(inh) = &d.inheritance {
                    db.add_atomic_child(dis, "Inheritance", inh.as_str())
                        .expect("complex");
                }
                db.add_atomic_child(dis, "Link", AtomicValue::Url(d.link.url.clone()))
                    .expect("complex");
            }
            for p in &g.publications {
                let pb = db.add_complex_child(gene, "Publication").expect("complex");
                db.add_atomic_child(pb, "PublicationID", p.id.as_str())
                    .expect("complex");
                if let Some(t) = &p.title {
                    db.add_atomic_child(pb, "Title", t.as_str())
                        .expect("complex");
                }
                if let Some(y) = &p.year {
                    db.add_atomic_child(pb, "Year", y.as_str())
                        .expect("complex");
                }
                if let Some(j) = &p.journal {
                    db.add_atomic_child(pb, "Journal", j.as_str())
                        .expect("complex");
                }
                db.add_atomic_child(pb, "Link", AtomicValue::Url(p.link.url.clone()))
                    .expect("complex");
            }
            for l in &g.links {
                db.add_atomic_child(gene, "Link", AtomicValue::Url(l.url.clone()))
                    .expect("complex");
            }
        }
        db.set_name_overwrite("IntegratedView", root)
            .expect("fresh store");
        db
    }
}

/// Evaluates the question's aspect clauses (require/exclude, with
/// patterns and the combination method) over already-integrated function
/// and disease lists. An item "matches" a clause pattern when its name is
/// known and like-matches; with no pattern, any kept item matches. Shared
/// by query-time fusion and by the warehouse baseline's local filtering.
pub fn aspect_clauses_pass(
    question: &GeneQuestion,
    functions: &[FunctionInfo],
    diseases: &[DiseaseInfo],
    publications: &[PublicationInfo],
) -> bool {
    let fn_matches = match question.function.pattern() {
        None => !functions.is_empty(),
        Some(p) => functions
            .iter()
            .any(|f| f.name.as_deref().is_some_and(|n| like(n, p))),
    };
    let dis_matches = match question.disease.pattern() {
        None => !diseases.is_empty(),
        Some(p) => diseases
            .iter()
            .any(|d| d.name.as_deref().is_some_and(|n| like(n, p))),
    };
    let pub_matches = match question.publication.pattern() {
        None => !publications.is_empty(),
        Some(p) => publications
            .iter()
            .any(|pb| pb.title.as_deref().is_some_and(|t| like(t, p))),
    };
    let mut requires: Vec<bool> = Vec::new();
    let mut excludes_ok = true;
    match &question.function {
        AspectClause::Require(_) => requires.push(fn_matches),
        AspectClause::Exclude(_) => excludes_ok &= !fn_matches,
        AspectClause::Ignore => {}
    }
    match &question.disease {
        AspectClause::Require(_) => requires.push(dis_matches),
        AspectClause::Exclude(_) => excludes_ok &= !dis_matches,
        AspectClause::Ignore => {}
    }
    match &question.publication {
        AspectClause::Require(_) => requires.push(pub_matches),
        AspectClause::Exclude(_) => excludes_ok &= !pub_matches,
        AspectClause::Ignore => {}
    }
    let requires_ok = if requires.is_empty() {
        true
    } else {
        match question.combine {
            Combination::All => requires.iter().all(|&b| b),
            Combination::Any => requires.iter().any(|&b| b),
        }
    };
    requires_ok && excludes_ok
}

/// Full question check over one integrated gene, including the organism
/// and symbol predicates. Used by the warehouse baseline, which filters
/// already-materialised genes locally.
pub fn passes_question(question: &GeneQuestion, gene: &IntegratedGene) -> bool {
    if let Some(o) = &question.organism {
        if gene.organism.as_deref() != Some(o.as_str()) {
            return false;
        }
    }
    if let Some(p) = &question.symbol_like {
        if !like(&gene.symbol, p) {
            return false;
        }
    }
    aspect_clauses_pass(
        question,
        &gene.functions,
        &gene.diseases,
        &gene.publications,
    )
}

// ----- row readers --------------------------------------------------------

fn row_texts(res: &SubqueryResult, row: Oid, label: &str) -> Vec<String> {
    res.store
        .children(row, label)
        .filter_map(|o| res.store.value_of(o).map(|v| v.as_text()))
        .collect()
}

fn row_first(res: &SubqueryResult, row: Oid, label: &str) -> Option<String> {
    res.store
        .children(row, label)
        .next()
        .and_then(|o| res.store.value_of(o).map(|v| v.as_text()))
}

fn like(text: &str, pattern: &str) -> bool {
    AtomicValue::Str(text.to_string()).lorel_like(pattern)
}

// ----- intermediate gene record --------------------------------------------

#[derive(Default, Debug)]
struct GeneDraft {
    gene_id: Option<i64>,
    /// attribute → (source, value) pairs, for value reconciliation.
    attrs: BTreeMap<&'static str, Vec<(String, String)>>,
    /// (source, claimed function ids) from the gene provider's rows.
    fn_claims: BTreeMap<String, BTreeSet<String>>,
    dis_claims: BTreeMap<String, BTreeSet<String>>,
    links: Vec<WebLink>,
}

#[derive(Default, Debug, Clone)]
struct FunctionDetail {
    name: Option<String>,
    namespace: Option<String>,
    link: Option<String>,
}

#[derive(Default, Debug, Clone)]
struct DiseaseDetail {
    name: Option<String>,
    inheritance: Option<String>,
    link: Option<String>,
}

/// Fuses tagged subquery results under `question`, reconciling with
/// `policy`. The question's predicates are (re-)applied at the mediator,
/// so results are identical whether or not pushdown ran.
pub fn fuse(
    question: &GeneQuestion,
    results: &[TaggedResult],
    policy: ReconcilePolicy,
) -> FusedAnswer {
    let mut reconciler = Reconciler::new(policy);
    let mut stats = FusionStats::default();

    // ---- collect gene drafts -------------------------------------------
    let mut drafts: BTreeMap<String, GeneDraft> = BTreeMap::new();
    let mut gene_sources: Vec<String> = Vec::new();
    for tr in results.iter().filter(|t| t.purpose == Purpose::Genes) {
        if !gene_sources.contains(&tr.source) {
            gene_sources.push(tr.source.clone());
        }
        for row in tr.result.row_oids() {
            stats.gene_rows += 1;
            let Some(symbol) = row_first(&tr.result, row, "Symbol") else {
                continue;
            };
            let draft = drafts.entry(symbol.clone()).or_default();
            if let Some(idt) = row_first(&tr.result, row, "GeneID") {
                if let Ok(id) = idt.parse::<i64>() {
                    draft.gene_id = Some(id);
                }
            }
            for attr in ["Organism", "Description", "Position"] {
                if let Some(v) = row_first(&tr.result, row, attr) {
                    draft
                        .attrs
                        .entry(match attr {
                            "Organism" => "Organism",
                            "Description" => "Description",
                            _ => "Position",
                        })
                        .or_default()
                        .push((tr.source.clone(), v));
                }
            }
            draft
                .fn_claims
                .entry(tr.source.clone())
                .or_default()
                .extend(row_texts(&tr.result, row, "FunctionID"));
            draft
                .dis_claims
                .entry(tr.source.clone())
                .or_default()
                .extend(row_texts(&tr.result, row, "DiseaseID"));
            for url in row_texts(&tr.result, row, "Link") {
                let l = WebLink::external(&tr.source, url);
                if !draft.links.contains(&l) {
                    draft.links.push(l);
                }
            }
        }
    }

    // ---- annotations (gene ↔ function, from GO) --------------------------
    // symbol → fid → (source, evidence)
    let mut ann_claims: BTreeMap<String, BTreeMap<String, (String, Option<String>)>> =
        BTreeMap::new();
    let mut annotation_sources: Vec<String> = Vec::new();
    for tr in results.iter().filter(|t| t.purpose == Purpose::Annotations) {
        if !annotation_sources.contains(&tr.source) {
            annotation_sources.push(tr.source.clone());
        }
        for row in tr.result.row_oids() {
            stats.annotation_rows += 1;
            let (Some(symbol), Some(fid)) = (
                row_first(&tr.result, row, "Symbol"),
                row_first(&tr.result, row, "FunctionID"),
            ) else {
                continue;
            };
            let evidence = row_first(&tr.result, row, "Evidence");
            ann_claims
                .entry(symbol)
                .or_default()
                .insert(fid, (tr.source.clone(), evidence));
        }
    }

    // ---- function details -------------------------------------------------
    let mut fn_details: HashMap<String, FunctionDetail> = HashMap::new();
    for tr in results.iter().filter(|t| t.purpose == Purpose::Functions) {
        for row in tr.result.row_oids() {
            stats.function_rows += 1;
            let Some(fid) = row_first(&tr.result, row, "FunctionID") else {
                continue;
            };
            fn_details.insert(
                fid,
                FunctionDetail {
                    name: row_first(&tr.result, row, "Name"),
                    namespace: row_first(&tr.result, row, "Namespace"),
                    link: row_first(&tr.result, row, "Link"),
                },
            );
        }
    }

    // ---- disease rows -----------------------------------------------------
    let mut dis_details: HashMap<String, DiseaseDetail> = HashMap::new();
    // symbol → did set asserted by the disease source.
    let mut dis_claims: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    let mut disease_sources: Vec<String> = Vec::new();
    for tr in results.iter().filter(|t| t.purpose == Purpose::Diseases) {
        if !disease_sources.contains(&tr.source) {
            disease_sources.push(tr.source.clone());
        }
        for row in tr.result.row_oids() {
            stats.disease_rows += 1;
            let Some(did) = row_first(&tr.result, row, "DiseaseID") else {
                continue;
            };
            dis_details.insert(
                did.clone(),
                DiseaseDetail {
                    name: row_first(&tr.result, row, "Name"),
                    inheritance: row_first(&tr.result, row, "Inheritance"),
                    link: row_first(&tr.result, row, "Link"),
                },
            );
            for symbol in row_texts(&tr.result, row, "Symbol") {
                dis_claims
                    .entry(symbol)
                    .or_default()
                    .insert(did.clone(), tr.source.clone());
            }
        }
    }

    // ---- publication rows -------------------------------------------------
    #[derive(Default, Clone)]
    struct PublicationDetail {
        title: Option<String>,
        year: Option<String>,
        journal: Option<String>,
        link: Option<String>,
    }
    let mut pub_details: HashMap<String, PublicationDetail> = HashMap::new();
    // symbol → pmid → source
    let mut pub_claims: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    for tr in results
        .iter()
        .filter(|t| t.purpose == Purpose::Publications)
    {
        for row in tr.result.row_oids() {
            stats.publication_rows += 1;
            let Some(pmid) = row_first(&tr.result, row, "PublicationID") else {
                continue;
            };
            pub_details.insert(
                pmid.clone(),
                PublicationDetail {
                    title: row_first(&tr.result, row, "Title"),
                    year: row_first(&tr.result, row, "Year"),
                    journal: row_first(&tr.result, row, "Journal"),
                    link: row_first(&tr.result, row, "Link"),
                },
            );
            for symbol in row_texts(&tr.result, row, "Symbol") {
                pub_claims
                    .entry(symbol)
                    .or_default()
                    .insert(pmid.clone(), tr.source.clone());
            }
        }
    }

    // Coverage: a provider's silence counts as denial only when it was
    // queried without a narrowing pattern.
    let fn_coverage_complete = !annotation_sources.is_empty();
    let dis_coverage_complete = !disease_sources.is_empty() && question.disease.pattern().is_none();

    // ---- per-gene reconciliation and filtering ----------------------------
    let mut genes = Vec::new();
    for (symbol, draft) in drafts {
        // Residual predicates (safe to re-apply after pushdown).
        let organism = draft
            .attrs
            .get("Organism")
            .and_then(|vs| reconciler.value(&symbol, "Organism", vs));
        if let Some(o) = &question.organism {
            match &organism {
                Some(v) if v == o => {}
                _ => continue,
            }
        }
        if let Some(pat) = &question.symbol_like {
            if !like(&symbol, pat) {
                continue;
            }
        }

        // Function membership.
        let gene_fn_sets: Vec<(&String, &BTreeSet<String>)> = draft.fn_claims.iter().collect();
        let mut candidate_fids: BTreeSet<String> = gene_fn_sets
            .iter()
            .flat_map(|(_, s)| s.iter().cloned())
            .collect();
        let gene_ann = ann_claims.get(&symbol);
        if let Some(ann) = gene_ann {
            candidate_fids.extend(ann.keys().cloned());
        }
        let mut functions = Vec::new();
        for fid in &candidate_fids {
            let mut opinions: Vec<(String, bool)> = gene_fn_sets
                .iter()
                .map(|(src, set)| ((*src).clone(), set.contains(fid)))
                .collect();
            let go_claim = gene_ann.and_then(|a| a.get(fid));
            if let Some((src, evidence)) = go_claim {
                // Evidence gating (MinEvidence policy): a weakly-backed
                // annotation-source claim does not assert membership.
                let asserted = reconciler.evidence_passes(evidence.as_deref());
                opinions.push((src.clone(), asserted));
            } else if fn_coverage_complete {
                for s in &annotation_sources {
                    opinions.push((s.clone(), false));
                }
            }
            if reconciler.membership(&symbol, fid, &opinions) {
                let detail = fn_details.get(fid).cloned().unwrap_or_default();
                functions.push(FunctionInfo {
                    id: fid.clone(),
                    name: detail.name,
                    namespace: detail.namespace,
                    evidence: go_claim.and_then(|(_, e)| e.clone()),
                    sources: opinions
                        .iter()
                        .filter(|(_, c)| *c)
                        .map(|(s, _)| s.clone())
                        .collect(),
                    link: match detail.link {
                        Some(url) => WebLink::external("GO", url),
                        None => WebLink::internal("function", fid),
                    },
                });
            }
        }

        // Disease membership.
        let gene_dis_sets: Vec<(&String, &BTreeSet<String>)> = draft.dis_claims.iter().collect();
        let mut candidate_dids: BTreeSet<String> = gene_dis_sets
            .iter()
            .flat_map(|(_, s)| s.iter().cloned())
            .collect();
        let gene_dis = dis_claims.get(&symbol);
        if let Some(d) = gene_dis {
            candidate_dids.extend(d.keys().cloned());
        }
        let mut diseases = Vec::new();
        for did in &candidate_dids {
            let mut opinions: Vec<(String, bool)> = gene_dis_sets
                .iter()
                .map(|(src, set)| ((*src).clone(), set.contains(did)))
                .collect();
            let omim_claim = gene_dis.and_then(|d| d.get(did));
            if let Some(src) = omim_claim {
                opinions.push((src.clone(), true));
            } else if dis_coverage_complete {
                for s in &disease_sources {
                    opinions.push((s.clone(), false));
                }
            }
            if reconciler.membership(&symbol, did, &opinions) {
                let detail = dis_details.get(did).cloned().unwrap_or_default();
                diseases.push(DiseaseInfo {
                    id: did.clone(),
                    name: detail.name,
                    inheritance: detail.inheritance,
                    sources: opinions
                        .iter()
                        .filter(|(_, c)| *c)
                        .map(|(s, _)| s.clone())
                        .collect(),
                    link: match detail.link {
                        Some(url) => WebLink::external("OMIM", url),
                        None => WebLink::internal("disease", did),
                    },
                });
            }
        }

        // Publications: single-provider claims, no cross-source denial.
        let mut publications = Vec::new();
        if let Some(claims) = pub_claims.get(&symbol) {
            for (pmid, source) in claims {
                let detail = pub_details.get(pmid).cloned().unwrap_or_default();
                publications.push(PublicationInfo {
                    id: pmid.clone(),
                    title: detail.title,
                    year: detail.year,
                    journal: detail.journal,
                    sources: vec![source.clone()],
                    link: match detail.link {
                        Some(url) => WebLink::external("PubMed", url),
                        None => WebLink::internal("publication", pmid),
                    },
                });
            }
        }

        if !aspect_clauses_pass(question, &functions, &diseases, &publications) {
            continue;
        }

        let description = draft
            .attrs
            .get("Description")
            .and_then(|vs| reconciler.value(&symbol, "Description", vs));
        let position = draft
            .attrs
            .get("Position")
            .and_then(|vs| reconciler.value(&symbol, "Position", vs));
        let mut links = draft.links;
        links.push(WebLink::internal("gene", &symbol));
        genes.push(IntegratedGene {
            symbol,
            gene_id: draft.gene_id,
            organism,
            description,
            position,
            functions,
            diseases,
            publications,
            links,
        });
    }

    FusedAnswer {
        genes,
        conflicts: reconciler.into_conflicts(),
        stats,
        missing_sources: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annoda_oem::OemStore;
    use annoda_wrap::{Cost, SourceDescription, Wrapper};

    /// A test wrapper whose OML we assemble by hand.
    struct Fixed {
        descr: SourceDescription,
        oml: OemStore,
    }
    impl Wrapper for Fixed {
        fn description(&self) -> &SourceDescription {
            &self.descr
        }
        fn oml(&self) -> &OemStore {
            &self.oml
        }
        fn refresh(&mut self) -> usize {
            self.oml.len()
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Gene provider rows: TP53 (GO:1 claimed, MIM 100 claimed),
    /// EGFR (no claims).
    fn gene_result() -> TaggedResult {
        let mut oml = OemStore::new();
        let root = oml.new_complex();
        let g1 = oml.add_complex_child(root, "Locus").unwrap();
        oml.add_atomic_child(g1, "Sym", "TP53").unwrap();
        oml.add_atomic_child(g1, "Id", AtomicValue::Int(7157))
            .unwrap();
        oml.add_atomic_child(g1, "Org", "Homo sapiens").unwrap();
        oml.add_atomic_child(g1, "Go", "GO:1").unwrap();
        oml.add_atomic_child(g1, "Mim", "100").unwrap();
        let g2 = oml.add_complex_child(root, "Locus").unwrap();
        oml.add_atomic_child(g2, "Sym", "EGFR").unwrap();
        oml.add_atomic_child(g2, "Id", AtomicValue::Int(1956))
            .unwrap();
        oml.add_atomic_child(g2, "Org", "Homo sapiens").unwrap();
        oml.set_name("LL", root).unwrap();
        let w = Fixed {
            descr: SourceDescription::remote("LL", "", ""),
            oml,
        };
        let mut cost = Cost::new();
        let result = w
            .subquery(
                "select L.Sym as Symbol, L.Id as GeneID, L.Org as Organism, \
                 L.Go as FunctionID, L.Mim as DiseaseID from LL.Locus L",
                &mut cost,
            )
            .unwrap();
        TaggedResult {
            source: "LL".into(),
            purpose: Purpose::Genes,
            result,
        }
    }

    /// GO asserts TP53→GO:1 and TP53→GO:2 (GO:2 missing on the gene side
    /// → conflict).
    fn annotation_result() -> TaggedResult {
        let mut oml = OemStore::new();
        let root = oml.new_complex();
        for fid in ["GO:1", "GO:2"] {
            let a = oml.add_complex_child(root, "Ann").unwrap();
            oml.add_atomic_child(a, "G", "TP53").unwrap();
            oml.add_atomic_child(a, "F", fid).unwrap();
            oml.add_atomic_child(a, "E", "IDA").unwrap();
        }
        oml.set_name("GO", root).unwrap();
        let w = Fixed {
            descr: SourceDescription::remote("GO", "", ""),
            oml,
        };
        let mut cost = Cost::new();
        let result = w
            .subquery(
                "select A.G as Symbol, A.F as FunctionID, A.E as Evidence from GO.Ann A",
                &mut cost,
            )
            .unwrap();
        TaggedResult {
            source: "GO".into(),
            purpose: Purpose::Annotations,
            result,
        }
    }

    fn disease_result() -> TaggedResult {
        let mut oml = OemStore::new();
        let root = oml.new_complex();
        let e = oml.add_complex_child(root, "Entry").unwrap();
        oml.add_atomic_child(e, "N", "100").unwrap();
        oml.add_atomic_child(e, "T", "SOME SYNDROME").unwrap();
        oml.add_atomic_child(e, "S", "TP53").unwrap();
        oml.set_name("OMIM", root).unwrap();
        let w = Fixed {
            descr: SourceDescription::remote("OMIM", "", ""),
            oml,
        };
        let mut cost = Cost::new();
        let result = w
            .subquery(
                "select E.N as DiseaseID, E.T as Name, E.S as Symbol from OMIM.Entry E",
                &mut cost,
            )
            .unwrap();
        TaggedResult {
            source: "OMIM".into(),
            purpose: Purpose::Diseases,
            result,
        }
    }

    #[test]
    fn figure5_question_keeps_only_function_without_disease() {
        // TP53: has functions but also a disease → excluded.
        // EGFR: no functions → fails the require clause.
        let q = GeneQuestion::figure5();
        let results = vec![gene_result(), annotation_result(), disease_result()];
        let ans = fuse(&q, &results, ReconcilePolicy::Union);
        assert!(ans.genes.is_empty());

        // Without the disease exclusion TP53 passes.
        let q2 = GeneQuestion {
            function: AspectClause::Require(None),
            ..GeneQuestion::default()
        };
        let ans2 = fuse(&q2, &results, ReconcilePolicy::Union);
        assert_eq!(ans2.genes.len(), 1);
        assert_eq!(ans2.genes[0].symbol, "TP53");
    }

    #[test]
    fn union_keeps_disputed_annotation_and_logs_conflict() {
        let q = GeneQuestion::default();
        let results = vec![gene_result(), annotation_result()];
        let ans = fuse(&q, &results, ReconcilePolicy::Union);
        let tp53 = ans.genes.iter().find(|g| g.symbol == "TP53").unwrap();
        let fids: Vec<&str> = tp53.functions.iter().map(|f| f.id.as_str()).collect();
        assert_eq!(fids, vec!["GO:1", "GO:2"]);
        // GO:2 is claimed by GO but absent from the locus record.
        assert_eq!(ans.conflicts.len(), 1);
        assert_eq!(ans.conflicts[0].item, "GO:2");
        assert!(ans.conflicts[0].kept);
    }

    #[test]
    fn intersection_drops_disputed_annotation() {
        let q = GeneQuestion::default();
        let results = vec![gene_result(), annotation_result()];
        let ans = fuse(&q, &results, ReconcilePolicy::Intersection);
        let tp53 = ans.genes.iter().find(|g| g.symbol == "TP53").unwrap();
        let fids: Vec<&str> = tp53.functions.iter().map(|f| f.id.as_str()).collect();
        assert_eq!(fids, vec!["GO:1"]);
        assert!(!ans.conflicts[0].kept);
    }

    #[test]
    fn evidence_and_sources_are_carried() {
        let q = GeneQuestion::default();
        let results = vec![gene_result(), annotation_result()];
        let ans = fuse(&q, &results, ReconcilePolicy::Union);
        let tp53 = ans.genes.iter().find(|g| g.symbol == "TP53").unwrap();
        let f1 = tp53.functions.iter().find(|f| f.id == "GO:1").unwrap();
        assert_eq!(f1.evidence.as_deref(), Some("IDA"));
        assert!(f1.sources.contains(&"LL".to_string()));
        assert!(f1.sources.contains(&"GO".to_string()));
    }

    #[test]
    fn organism_and_symbol_filters_apply() {
        let q = GeneQuestion {
            organism: Some("Mus musculus".into()),
            ..GeneQuestion::default()
        };
        let ans = fuse(&q, &[gene_result()], ReconcilePolicy::Union);
        assert!(ans.genes.is_empty());

        let q = GeneQuestion {
            symbol_like: Some("TP%".into()),
            ..GeneQuestion::default()
        };
        let ans = fuse(&q, &[gene_result()], ReconcilePolicy::Union);
        assert_eq!(ans.genes.len(), 1);
        assert_eq!(ans.genes[0].symbol, "TP53");
    }

    #[test]
    fn disease_details_join_by_id() {
        let q = GeneQuestion::default();
        let results = vec![gene_result(), disease_result()];
        let ans = fuse(&q, &results, ReconcilePolicy::Union);
        let tp53 = ans.genes.iter().find(|g| g.symbol == "TP53").unwrap();
        assert_eq!(tp53.diseases.len(), 1);
        assert_eq!(tp53.diseases[0].name.as_deref(), Some("SOME SYNDROME"));
        // Both the gene record and OMIM assert it: no conflict.
        assert!(ans
            .conflicts
            .iter()
            .all(|c| c.item != "100" || c.subject != "TP53"));
    }

    #[test]
    fn combination_any_vs_all() {
        let results = vec![gene_result(), annotation_result(), disease_result()];
        // Require functions AND diseases: TP53 has both → kept.
        let q_all = GeneQuestion {
            function: AspectClause::Require(None),
            disease: AspectClause::Require(None),
            combine: Combination::All,
            ..GeneQuestion::default()
        };
        let ans = fuse(&q_all, &results, ReconcilePolicy::Union);
        assert_eq!(ans.genes.len(), 1);

        // EGFR has neither; under Any it still fails, under All it fails.
        let q_any = GeneQuestion {
            function: AspectClause::Require(None),
            disease: AspectClause::Require(None),
            combine: Combination::Any,
            ..GeneQuestion::default()
        };
        let ans = fuse(&q_any, &results, ReconcilePolicy::Union);
        assert_eq!(ans.genes.len(), 1, "only TP53 satisfies any clause");
    }

    #[test]
    fn to_store_materialises_the_view() {
        let results = vec![gene_result(), annotation_result(), disease_result()];
        let ans = fuse(&GeneQuestion::default(), &results, ReconcilePolicy::Union);
        let store = ans.to_store();
        let root = store.named("IntegratedView").unwrap();
        assert_eq!(store.children(root, "Gene").count(), 2);
        let tp53 = store
            .children(root, "Gene")
            .find(|&g| store.child_value(g, "Symbol") == Some(&AtomicValue::Str("TP53".into())))
            .unwrap();
        assert_eq!(store.children(tp53, "Function").count(), 2);
        assert_eq!(store.children(tp53, "Disease").count(), 1);
        assert!(store.children(tp53, "Link").count() >= 1);
    }

    #[test]
    fn stats_count_rows() {
        let results = vec![gene_result(), annotation_result(), disease_result()];
        let ans = fuse(&GeneQuestion::default(), &results, ReconcilePolicy::Union);
        assert_eq!(ans.stats.gene_rows, 2);
        assert_eq!(ans.stats.annotation_rows, 2);
        assert_eq!(ans.stats.disease_rows, 1);
    }
}
