//! Bounded, sharded subquery result cache.
//!
//! The mediator's original cache was a single `Mutex<HashMap>` with no
//! size bound: every concurrent question serialised on one lock, and a
//! long-running mediator grew without limit. This cache fixes both:
//!
//! * **Sharding** — keys hash onto [`SHARDS`] independently locked
//!   shards, so concurrent questions touching different subqueries
//!   proceed in parallel; `one_mediator_serves_concurrent_questions`
//!   no longer serialises on cache access.
//! * **Bounding** — each shard holds at most `capacity / SHARDS`
//!   entries (the configured capacity is a total across shards, rounded
//!   up to a multiple of the shard count). A full shard evicts its
//!   least-recently-used entry; recency is a global atomic tick stamped
//!   on every hit and insert.
//!
//! Hit, miss, and eviction counts are exposed through [`CacheStats`]
//! (via `Mediator::cache_stats`) and per-question through
//! [`annoda_wrap::Cost::cache_hits`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use annoda_wrap::SubqueryResult;

/// Number of independently locked shards.
const SHARDS: usize = 8;

/// Default total capacity used by `Mediator::enable_cache`.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// A cached value plus its last-use tick.
struct Entry {
    value: SubqueryResult,
    last_used: u64,
}

/// Observable cache state at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Total capacity across all shards.
    pub capacity: usize,
    /// Entries currently cached.
    pub len: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0.0 when the cache
    /// has never been consulted) — the headline number a monitoring
    /// endpoint exposes.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// A bounded, sharded, LRU map from `source\x01lorel` keys to shipped
/// subquery results.
pub struct SubqueryCache {
    shards: Vec<Mutex<HashMap<String, Entry>>>,
    capacity_per_shard: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SubqueryCache {
    /// A cache holding at most `capacity` entries in total (rounded up
    /// to a multiple of the shard count; minimum one entry per shard).
    pub fn new(capacity: usize) -> Self {
        let capacity_per_shard = capacity.div_ceil(SHARDS).max(1);
        SubqueryCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity_per_shard,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.capacity_per_shard * SHARDS
    }

    fn shard_of(&self, key: &str) -> &Mutex<HashMap<String, Entry>> {
        // FNV-1a: stable across runs (keys must map to the same shard
        // for the lifetime of the cache, nothing more).
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(hash as usize) % SHARDS]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<SubqueryResult> {
        let mut shard = self.shard_of(key).lock();
        match shard.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, evicting the shard's least recently
    /// used entry when it is full.
    pub fn insert(&self, key: String, value: SubqueryResult) {
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(&key).lock();
        if !shard.contains_key(&key) && shard.len() >= self.capacity_per_shard {
            if let Some(victim) = shard
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(key, Entry { value, last_used });
    }

    /// Drops every entry (counters are kept — they describe the cache's
    /// lifetime, not its current contents).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Drops only the entries whose key starts with `prefix` — the
    /// selective-invalidation half of a single-source refresh. Keys are
    /// `source\x01lorel`, so passing `"LocusLink\x01"` forgets exactly
    /// that source's shipped results while every other source keeps
    /// serving from cache.
    pub fn invalidate_prefix(&self, prefix: &str) {
        for shard in &self.shards {
            shard.lock().retain(|k, _| !k.starts_with(prefix));
        }
    }

    /// Current size and lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            capacity: self.capacity(),
            len: self.shards.iter().map(|s| s.lock().len()).sum(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for SubqueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SubqueryCache")
            .field("capacity", &stats.capacity)
            .field("len", &stats.len)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annoda_oem::OemStore;

    fn result_of(tag: i64) -> SubqueryResult {
        let mut store = OemStore::new();
        let root = store.new_complex();
        store.add_atomic_child(root, "tag", tag).unwrap();
        store.set_name_overwrite("result", root).unwrap();
        SubqueryResult {
            store,
            root,
            rows: 0,
            used_index: false,
            planner_index_backed: false,
        }
    }

    fn tag_of(r: &SubqueryResult) -> i64 {
        match r.store.child_value(r.root, "tag") {
            Some(annoda_oem::AtomicValue::Int(i)) => *i,
            other => panic!("unexpected tag {other:?}"),
        }
    }

    #[test]
    fn hit_miss_and_replace() {
        let cache = SubqueryCache::new(16);
        assert!(cache.get("a").is_none());
        cache.insert("a".into(), result_of(1));
        assert_eq!(tag_of(&cache.get("a").unwrap()), 1);
        cache.insert("a".into(), result_of(2));
        assert_eq!(tag_of(&cache.get("a").unwrap()), 2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 1, 0));
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn capacity_bounds_each_shard_with_lru_eviction() {
        // Total capacity 8 → one entry per shard: any two keys landing
        // in the same shard evict each other, and recently-used entries
        // win over stale ones.
        let cache = SubqueryCache::new(8);
        assert_eq!(cache.capacity(), 8);
        for i in 0..64 {
            cache.insert(format!("key-{i}"), result_of(i));
        }
        let stats = cache.stats();
        assert!(stats.len <= 8, "bounded: {} entries", stats.len);
        assert_eq!(stats.evictions, 64 - stats.len as u64);

        // The most recently inserted key in some shard must still be
        // present; re-inserting it is a replace, not an eviction.
        let survivor = (0..64)
            .rev()
            .map(|i| format!("key-{i}"))
            .find(|k| cache.get(k).is_some())
            .expect("cache is non-empty");
        let before = cache.stats().evictions;
        cache.insert(survivor, result_of(99));
        assert_eq!(cache.stats().evictions, before);
    }

    #[test]
    fn recency_protects_hot_entries() {
        // With per-shard capacity 1 this would be vacuous, so give the
        // cache room and hammer one shard: the hot key must survive a
        // run of cold inserts shorter than the shard capacity.
        let cache = SubqueryCache::new(SHARDS * 4);
        cache.insert("hot".into(), result_of(7));
        for i in 0..3 {
            // Touch the hot key between cold inserts.
            assert!(cache.get("hot").is_some());
            cache.insert(format!("cold-{i}"), result_of(i));
        }
        assert_eq!(tag_of(&cache.get("hot").unwrap()), 7);
    }

    #[test]
    fn hit_rate_is_guarded_against_zero_lookups() {
        let cache = SubqueryCache::new(8);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.insert("a".into(), result_of(1));
        cache.get("a");
        cache.get("b");
        let rate = cache.stats().hit_rate();
        assert!((rate - 0.5).abs() < 1e-9, "{rate}");
    }

    #[test]
    fn clear_keeps_lifetime_counters() {
        let cache = SubqueryCache::new(8);
        cache.insert("a".into(), result_of(1));
        cache.get("a");
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.len, 0);
        assert_eq!(stats.hits, 1);
        assert!(cache.get("a").is_none());
    }
}
