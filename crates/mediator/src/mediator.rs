//! The mediator façade: registration, planning, execution, fusion.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use annoda_lorel::{
    run_query_snapshot_explained, run_query_with, EvalWorkers, FunctionRegistry, LorelError,
    PlanExplain, QueryOutcome,
};
use annoda_match::{MatchReport, Mdsm};
use annoda_oem::dataguide::DataGuide;
use annoda_oem::TextDoc;
use annoda_oem::{AnswerOverlay, AtomicValue, AttributeStats, OemStore};
use annoda_search::{FusionStrategy, RankedAnswer, SearchIndex, SearchStats};
use annoda_wrap::{Cost, SourceDescription, SubqueryResult, WrapError, Wrapper};

use crate::cache::{CacheStats, SubqueryCache, DEFAULT_CACHE_CAPACITY};
use crate::decompose::{GeneQuestion, Purpose};
use crate::fusion::{fuse, FusedAnswer, TaggedResult};
use crate::gml::GlobalModel;
use crate::optimizer::{plan, ExecutionPlan, OptimizerConfig, SourceInfo};
use crate::reconcile::ReconcilePolicy;

/// Errors raised by the mediator.
#[derive(Debug)]
pub enum MediatorError {
    /// No registered source provides the `Gene` entity.
    NoGeneProvider,
    /// A named source is not registered.
    UnknownSource(String),
    /// A wrapper failed to answer its subquery.
    Wrap(WrapError),
    /// A global Lorel query failed.
    Lorel(LorelError),
}

impl fmt::Display for MediatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediatorError::NoGeneProvider => {
                write!(f, "no registered source provides the Gene entity")
            }
            MediatorError::UnknownSource(s) => write!(f, "unknown source `{s}`"),
            MediatorError::Wrap(e) => write!(f, "wrapper error: {e}"),
            MediatorError::Lorel(e) => write!(f, "global query error: {e}"),
        }
    }
}

impl std::error::Error for MediatorError {}

impl From<WrapError> for MediatorError {
    fn from(e: WrapError) -> Self {
        MediatorError::Wrap(e)
    }
}

impl From<LorelError> for MediatorError {
    fn from(e: LorelError) -> Self {
        MediatorError::Lorel(e)
    }
}

/// Why a source failed during plan execution — the mediator's failure
/// taxonomy, coarser than [`WrapError`] but wire-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The source could not be *reached*: connect refused, timeout, torn
    /// frame, or a tripped circuit breaker. Nothing answered; retrying
    /// later may succeed.
    Transport,
    /// The source *answered* with a refusal — the subquery failed to
    /// parse/evaluate or needs a missing capability. Retrying gets the
    /// same answer.
    Refusal,
    /// The wrapper panicked; the mediator contained the crash to this
    /// source.
    Panic,
}

impl FailureKind {
    /// Stable lowercase name, for display and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Transport => "transport",
            FailureKind::Refusal => "refusal",
            FailureKind::Panic => "panic",
        }
    }

    fn of(error: &WrapError) -> FailureKind {
        match error {
            WrapError::Transport(_) => FailureKind::Transport,
            WrapError::Query(_) | WrapError::Unsupported(_) => FailureKind::Refusal,
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One source that failed while answering a question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFailure {
    /// The failing source's name.
    pub source: String,
    /// The error's display form.
    pub error: String,
    /// Transport loss, answered refusal, or contained panic.
    pub kind: FailureKind,
}

/// An answered question: the fused result plus the plan and cost that
/// produced it.
#[derive(Debug)]
pub struct MediatedAnswer {
    /// The integrated, reconciled, filtered genes.
    pub fused: FusedAnswer,
    /// The plan that was executed.
    pub plan: ExecutionPlan,
    /// Simulated source-access cost (total work across all subqueries).
    pub cost: Cost,
    /// Simulated wall-clock: subqueries to independent sources run
    /// concurrently, so each phase costs its *slowest* subquery, not the
    /// sum — this is the per-phase max, summed over phases.
    pub critical_path_us: u64,
    /// *Measured* wall-clock analogue of
    /// [`MediatedAnswer::critical_path_us`]: each phase's slowest
    /// subquery by real elapsed time, summed over phases. For in-process
    /// wrappers this is microseconds of compute; for remote wrappers it
    /// is genuine network time (including retries and backoff).
    pub wall_path_us: u64,
    /// Sources that failed during execution — only populated under
    /// [`Mediator::partial_results`]; otherwise a failure aborts the
    /// whole answer. Mirrored into
    /// [`FusedAnswer::missing_sources`] so the degradation travels with
    /// the answer itself.
    pub failed_sources: Vec<SourceFailure>,
    /// Per-source cost breakdown (cache hits contribute zero).
    pub per_source_cost: Vec<(String, Cost)>,
}

/// What one concurrently-executed batch of subqueries produced.
struct BatchOutcome {
    tagged: Vec<TaggedResult>,
    cost: Cost,
    /// Slowest subquery by virtual cost (the modelled critical path).
    critical_us: u64,
    /// Slowest subquery by measured wall-clock.
    wall_path_us: u64,
    failed: Vec<SourceFailure>,
    per_source: Vec<(String, Cost)>,
}

/// The ANNODA mediator of Figure 1.
pub struct Mediator {
    wrappers: Vec<Box<dyn Wrapper>>,
    model: GlobalModel,
    mdsm: Mdsm,
    /// Optimiser switches (public: the B5 ablation flips them).
    pub optimizer: OptimizerConfig,
    /// Reconciliation policy applied during fusion.
    pub policy: ReconcilePolicy,
    /// Degrade gracefully when a source is unreachable: skip its
    /// contribution and report it in
    /// [`MediatedAnswer::failed_sources`] instead of failing the whole
    /// question. Gene providers are mandatory — if every one of them
    /// fails the answer still errors.
    pub partial_results: bool,
    /// Subquery result cache (None = disabled). Keyed by
    /// `source\x01lorel`; invalidated on registration changes and
    /// refresh. The cache is **bounded**: it holds at most the
    /// configured capacity (see [`Mediator::enable_cache_with_capacity`];
    /// [`Mediator::enable_cache`] uses
    /// [`DEFAULT_CACHE_CAPACITY`]), evicting least-recently-used
    /// entries per shard when full. Entries are spread over
    /// independently locked shards so concurrent questions do not
    /// serialise on one lock. Hits charge a zero [`Cost`] with
    /// `cache_hits = 1`; lifetime hit/miss/eviction counters are
    /// readable through [`Mediator::cache_stats`].
    cache: Option<SubqueryCache>,
    /// The ranked-search index over the wrappers' harvested text
    /// documents (`None` until the first search). Invalidated together
    /// with the subquery cache: registration changes and refresh both
    /// change what the wrappers would harvest.
    search_index: Option<Arc<SearchIndex>>,
}

impl Default for Mediator {
    fn default() -> Self {
        Self::new()
    }
}

impl Mediator {
    /// A mediator with default MDSM, optimiser, and policy settings.
    pub fn new() -> Self {
        Mediator {
            wrappers: Vec::new(),
            model: GlobalModel::new(),
            mdsm: Mdsm::default(),
            optimizer: OptimizerConfig::default(),
            policy: ReconcilePolicy::Union,
            partial_results: false,
            cache: None,
            search_index: None,
        }
    }

    /// Enables the subquery result cache: identical subqueries against
    /// an unchanged source are answered from the mediator without a
    /// source round trip. Disabled by default so cost accounting stays
    /// per-question. Holds at most [`DEFAULT_CACHE_CAPACITY`] results.
    pub fn enable_cache(&mut self) {
        self.enable_cache_with_capacity(DEFAULT_CACHE_CAPACITY);
    }

    /// [`Mediator::enable_cache`] with an explicit total capacity
    /// (rounded up to a multiple of the shard count). When the cache is
    /// full, the least-recently-used entry in the affected shard makes
    /// room.
    pub fn enable_cache_with_capacity(&mut self, capacity: usize) {
        self.cache = Some(SubqueryCache::new(capacity));
    }

    /// Disables and clears the subquery cache.
    pub fn disable_cache(&mut self) {
        self.cache = None;
    }

    /// Size and lifetime hit/miss/eviction counters of the subquery
    /// cache, when enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(SubqueryCache::stats)
    }

    fn invalidate_cache(&mut self) {
        if let Some(c) = &self.cache {
            c.clear();
        }
        self.search_index = None;
    }

    /// Runs one batch of subqueries concurrently (one thread per
    /// source round trip), consulting the cache. Returns the results in
    /// step order, the summed cost, and the batch's critical paths (the
    /// slowest subquery by virtual cost and by measured wall-clock).
    fn run_batch(
        &self,
        steps: &[&crate::optimizer::PlanStep],
        overrides: &HashMap<usize, String>,
    ) -> Result<BatchOutcome, MediatorError> {
        // Resolve wrappers (and cache hits) up front.
        enum Job<'a> {
            Cached(Box<SubqueryResult>),
            Run(&'a dyn Wrapper, String, String),
        }
        let mut jobs: Vec<(usize, Job)> = Vec::new();
        for (i, step) in steps.iter().enumerate() {
            let lorel = overrides
                .get(&i)
                .cloned()
                .unwrap_or_else(|| step.query.lorel.clone());
            let key = format!("{}\x01{}", step.query.source, lorel);
            if let Some(cache) = &self.cache {
                if let Some(hit) = cache.get(&key) {
                    jobs.push((i, Job::Cached(Box::new(hit))));
                    continue;
                }
            }
            let wrapper = self
                .wrapper(&step.query.source)
                .ok_or_else(|| MediatorError::UnknownSource(step.query.source.clone()))?;
            jobs.push((i, Job::Run(wrapper, lorel, key)));
        }

        let mut outputs: Vec<(usize, SubqueryResult, Cost, Option<String>)> = Vec::new();
        let mut failures: Vec<(usize, WrapError, FailureKind)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, job) in jobs {
                match job {
                    Job::Cached(result) => outputs.push((i, *result, Cost::cache_hit(), None)),
                    Job::Run(wrapper, lorel, key) => {
                        handles.push((
                            i,
                            key,
                            scope.spawn(move || {
                                let mut cost = Cost::new();
                                let start = std::time::Instant::now();
                                let result = wrapper.subquery(&lorel, &mut cost);
                                // The mediator's own measurement
                                // subsumes whatever the wrapper timed
                                // (a remote round trip, an injected
                                // stall): one clock, one owner.
                                cost.wall_us = start.elapsed().as_micros() as u64;
                                (result, cost)
                            }),
                        ));
                    }
                }
            }
            for (i, key, handle) in handles {
                match handle.join() {
                    Ok((Ok(r), cost)) => outputs.push((i, r, cost, Some(key))),
                    Ok((Err(e), _)) => {
                        let kind = FailureKind::of(&e);
                        failures.push((i, e, kind));
                    }
                    // A panicking wrapper is contained to its own
                    // source: surface it as that step's failure instead
                    // of aborting the whole answer.
                    Err(panic) => {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "wrapper panicked".to_string());
                        failures.push((
                            i,
                            WrapError::Unsupported(format!("panic: {msg}")),
                            FailureKind::Panic,
                        ));
                    }
                }
            }
        });
        // Failures are keyed by step index so the error reported without
        // partial results is the FIRST failing step in plan order, not
        // whichever thread finished last.
        failures.sort_by_key(|(i, ..)| *i);
        if !self.partial_results {
            if let Some((_, e, _)) = failures.first() {
                return Err(e.clone().into());
            }
        }
        let failed: Vec<SourceFailure> = failures
            .iter()
            .map(|(i, e, kind)| SourceFailure {
                source: steps[*i].query.source.clone(),
                error: e.to_string(),
                kind: *kind,
            })
            .collect();
        outputs.sort_by_key(|(i, ..)| *i);

        let mut tagged = Vec::new();
        let mut total = Cost::new();
        let mut critical = 0u64;
        let mut wall_path = 0u64;
        let mut per_source: Vec<(String, Cost)> = Vec::new();
        for (i, result, cost, key) in outputs {
            if let (Some(cache), Some(key)) = (&self.cache, key) {
                cache.insert(key, result.clone());
            }
            total += cost;
            critical = critical.max(cost.virtual_us);
            wall_path = wall_path.max(cost.wall_us);
            let step = steps[i];
            match per_source.iter_mut().find(|(s, _)| s == &step.query.source) {
                Some((_, c)) => *c += cost,
                None => per_source.push((step.query.source.clone(), cost)),
            }
            tagged.push(TaggedResult {
                source: step.query.source.clone(),
                purpose: step.query.purpose,
                result,
            });
        }
        Ok(BatchOutcome {
            tagged,
            cost: total,
            critical_us: critical,
            wall_path_us: wall_path,
            failed,
            per_source,
        })
    }

    /// Plugs in a new source: matches its OML against the global schema
    /// (MDSM) and installs the wrapper — the paper's two-step plug-in
    /// procedure.
    pub fn register(&mut self, wrapper: Box<dyn Wrapper>) -> MatchReport {
        let report = self
            .model
            .register_source(&self.mdsm, wrapper.name(), wrapper.oml());
        // Replace an existing wrapper of the same name.
        self.wrappers.retain(|w| w.name() != wrapper.name());
        self.wrappers.push(wrapper);
        self.invalidate_cache();
        report
    }

    /// Unplugs a source. Returns whether it was present.
    pub fn unregister(&mut self, name: &str) -> bool {
        let had = self.wrappers.iter().any(|w| w.name() == name);
        self.wrappers.retain(|w| w.name() != name);
        self.model.unregister_source(name);
        self.invalidate_cache();
        had
    }

    /// The registered source descriptions, in registration order.
    pub fn sources(&self) -> Vec<&SourceDescription> {
        self.wrappers.iter().map(|w| w.description()).collect()
    }

    /// The wrapper for a source.
    pub fn wrapper(&self, name: &str) -> Option<&dyn Wrapper> {
        self.wrappers
            .iter()
            .find(|w| w.name() == name)
            .map(|w| w.as_ref())
    }

    /// Mutable wrapper access (the freshness experiment updates native
    /// databases through this).
    pub fn wrapper_mut(&mut self, name: &str) -> Option<&mut Box<dyn Wrapper>> {
        self.wrappers.iter_mut().find(|w| w.name() == name)
    }

    /// The global model (mappings and exemplar).
    pub fn model(&self) -> &GlobalModel {
        &self.model
    }

    /// Re-exports every OML from its native source. Returns the total
    /// object count across refreshed models.
    pub fn refresh_all(&mut self) -> usize {
        self.invalidate_cache();
        self.wrappers.iter_mut().map(|w| w.refresh()).sum()
    }

    /// Re-exports one source's OML from its native database, returning
    /// the refreshed model's object count — `None` when no such source
    /// is registered. Invalidation is *selective*: only this source's
    /// cached subquery results are dropped (their keys carry the source
    /// name), so after a single-source delta every other source keeps
    /// answering from cache and the next integrated question re-ships
    /// one source, not all of them. The search index still rebuilds
    /// wholesale — its postings fuse all sources.
    pub fn refresh_source(&mut self, name: &str) -> Option<usize> {
        let pos = self.wrappers.iter().position(|w| w.name() == name)?;
        if let Some(c) = &self.cache {
            c.invalidate_prefix(&format!("{name}\x01"));
        }
        self.search_index = None;
        Some(self.wrappers[pos].refresh())
    }

    /// Harvests every wrapper's free-text documents — the ranked-search
    /// index input. Sources without indexable text are omitted.
    pub fn harvest_text_docs(&self) -> Vec<(String, Vec<TextDoc>)> {
        self.wrappers
            .iter()
            .map(|w| (w.name().to_string(), w.text_docs()))
            .filter(|(_, docs)| !docs.is_empty())
            .collect()
    }

    /// The ranked-search index over the current wrappers, building it
    /// on first use. Invalidated (and lazily rebuilt) whenever a source
    /// is registered, unregistered, or refreshed — the same lifecycle
    /// points that clear the subquery cache.
    pub fn search_index(&mut self) -> Arc<SearchIndex> {
        if self.search_index.is_none() {
            self.search_index = Some(Arc::new(SearchIndex::build(&self.harvest_text_docs())));
        }
        Arc::clone(self.search_index.as_ref().expect("just built"))
    }

    /// Ranked full-text search across all text-bearing sources: BM25
    /// per source, then cross-source rank fusion under `strategy`.
    /// Returns the top `k` loci.
    pub fn search(&mut self, query: &str, k: usize, strategy: FusionStrategy) -> Vec<RankedAnswer> {
        self.search_index().search(query, k, strategy)
    }

    /// Size/build counters of the search index, when one is live.
    pub fn search_stats(&self) -> Option<SearchStats> {
        self.search_index.as_ref().map(|i| i.stats())
    }

    /// Gathers planning facts from the wrappers: entity cardinalities
    /// via DataGuides, and value histograms for every attribute the
    /// mapping rules cover (so pushdown selectivity is estimated from
    /// the data rather than guessed).
    pub fn source_infos(&self) -> Vec<SourceInfo> {
        self.wrappers
            .iter()
            .map(|w| {
                let oml = w.oml();
                let mut entity_cardinality = HashMap::new();
                let mut attr_stats = HashMap::new();
                if let Some(root) = oml.named(w.name()) {
                    let guide = DataGuide::build(oml, &[root]);
                    for label in guide.out_labels(guide.root()) {
                        entity_cardinality.insert(label.to_string(), guide.cardinality(&[label]));
                    }
                    for mapping in self.model.entities_of(w.name()) {
                        let parents: Vec<_> = oml.children(root, &mapping.source_entity).collect();
                        for (local, _global) in &mapping.attributes {
                            attr_stats.insert(
                                format!("{}.{local}", mapping.source_entity),
                                AttributeStats::collect(oml, &parents, local),
                            );
                        }
                    }
                }
                SourceInfo {
                    name: w.name().to_string(),
                    capabilities: w.description().capabilities,
                    latency: w.description().latency,
                    entity_cardinality,
                    attr_stats,
                }
            })
            .collect()
    }

    /// Plans a question without executing it.
    pub fn plan(&self, question: &GeneQuestion) -> ExecutionPlan {
        plan(question, &self.model, &self.source_infos(), self.optimizer)
    }

    /// Answers a biological question: plan → per-source subqueries →
    /// fusion → reconciliation → filtered integrated view.
    ///
    /// With [`OptimizerConfig::bind_join`] enabled, execution is
    /// two-phase: the gene subqueries run first and, when the qualifying
    /// gene set is small (≤ [`crate::optimizer::BIND_JOIN_MAX_KEYS`]
    /// symbols), the observed symbols are pushed into the annotation and
    /// disease subqueries as a disjunction — a cross-source semijoin.
    /// Answers are unchanged; shipped volume shrinks.
    pub fn answer(&self, question: &GeneQuestion) -> Result<MediatedAnswer, MediatorError> {
        if self.model.providers_of("Gene").is_empty() {
            return Err(MediatorError::NoGeneProvider);
        }
        let plan = self.plan(question);
        let mut cost = Cost::new();
        let mut critical_path_us = 0u64;
        let mut wall_path_us = 0u64;

        // Phase 1: gene steps, concurrently across providers.
        let gene_steps: Vec<&crate::optimizer::PlanStep> = plan
            .steps
            .iter()
            .filter(|s| s.query.purpose == Purpose::Genes)
            .collect();
        let batch1 = self.run_batch(&gene_steps, &HashMap::new())?;
        let mut tagged = batch1.tagged;
        let mut failed_sources = batch1.failed;
        let mut per_source_cost = batch1.per_source;
        cost += batch1.cost;
        critical_path_us += batch1.critical_us;
        wall_path_us += batch1.wall_path_us;
        if !gene_steps.is_empty() && tagged.is_empty() {
            // Every gene provider failed: nothing to integrate.
            return Err(MediatorError::NoGeneProvider);
        }

        // Bind keys for the second phase.
        let bind_keys: Option<Vec<String>> = if self.optimizer.bind_join {
            let mut symbols: std::collections::BTreeSet<String> = Default::default();
            for tr in &tagged {
                for row in tr.result.row_oids() {
                    if let Some(sym) = tr
                        .result
                        .store
                        .child_value(row, "Symbol")
                        .map(|v| v.as_text())
                    {
                        symbols.insert(sym);
                    }
                }
            }
            let bindable = symbols.len() <= crate::optimizer::BIND_JOIN_MAX_KEYS
                && symbols
                    .iter()
                    .all(|s| !s.contains('"') && !s.contains('\\'));
            bindable.then(|| symbols.into_iter().collect())
        } else {
            None
        };

        // Phase 2: everything else, concurrently, with symbols bound
        // where the entity's mapping carries a Symbol attribute.
        let mut other_steps: Vec<&crate::optimizer::PlanStep> = Vec::new();
        let mut overrides: HashMap<usize, String> = HashMap::new();
        for step in plan
            .steps
            .iter()
            .filter(|s| s.query.purpose != Purpose::Genes)
        {
            if let Some(keys) = &bind_keys {
                if let Some(local_symbol) =
                    self.local_symbol_attr(&step.query.source, step.query.purpose.entity())
                {
                    if keys.is_empty() {
                        // No gene qualified: this step cannot contribute.
                        continue;
                    }
                    let disjunction = keys
                        .iter()
                        .map(|k| format!("X.{local_symbol} = \"{k}\""))
                        .collect::<Vec<_>>()
                        .join(" or ");
                    let mut lorel = step.query.lorel.clone();
                    if lorel.contains(" where ") {
                        lorel.push_str(&format!(" and ({disjunction})"));
                    } else {
                        lorel.push_str(&format!(" where ({disjunction})"));
                    }
                    overrides.insert(other_steps.len(), lorel);
                }
            }
            other_steps.push(step);
        }
        let batch2 = self.run_batch(&other_steps, &overrides)?;
        tagged.extend(batch2.tagged);
        cost += batch2.cost;
        critical_path_us += batch2.critical_us;
        wall_path_us += batch2.wall_path_us;
        failed_sources.extend(batch2.failed);
        for (src, c) in batch2.per_source {
            match per_source_cost.iter_mut().find(|(s, _)| s == &src) {
                Some((_, existing)) => *existing += c,
                None => per_source_cost.push((src, c)),
            }
        }

        let mut fused = fuse(question, &tagged, self.policy.clone());
        // A degraded answer carries its own degradation: the fused view
        // names every source whose contribution is missing, so callers
        // rendering only the answer still see the gap.
        for failure in &failed_sources {
            if !fused.missing_sources.contains(&failure.source) {
                fused.missing_sources.push(failure.source.clone());
            }
        }
        Ok(MediatedAnswer {
            fused,
            plan,
            cost,
            critical_path_us,
            wall_path_us,
            failed_sources,
            per_source_cost,
        })
    }

    /// The local attribute a source maps to the given entity's global
    /// `Symbol`, when present (the bind-join key column).
    fn local_symbol_attr(&self, source: &str, entity: &str) -> Option<String> {
        self.model
            .entities_of(source)
            .iter()
            .find(|m| m.global_entity == entity)
            .and_then(|m| {
                m.attributes
                    .iter()
                    .find(|(_, g)| g == "Symbol")
                    .map(|(l, _)| l.clone())
            })
    }

    /// Materialises the full ANNODA-GML instance: `Source` entries from
    /// the registry plus `Gene` / `Function` / `Disease` / `Annotation`
    /// entities fetched from every provider. Used by the general Lorel
    /// interface; the question path never materialises this.
    pub fn materialize_gml(&self) -> Result<(OemStore, Cost), MediatorError> {
        let question = GeneQuestion::default();
        let infos = self.source_infos();
        let fetch_all_plan = plan(
            &question,
            &self.model,
            &infos,
            OptimizerConfig {
                pushdown: false,
                source_selection: false,
                bind_join: false,
            },
        );
        let mut cost = Cost::new();
        let mut tagged = Vec::new();
        for step in &fetch_all_plan.steps {
            // The fetch-all subqueries ride the same cache as the
            // question path: after a single-source delta (whose refresh
            // invalidates only that source's keys) a re-materialisation
            // re-ships one source and reads the rest from cache.
            let key = format!("{}\x01{}", step.query.source, step.query.lorel);
            let result = match self.cache.as_ref().and_then(|c| c.get(&key)) {
                Some(hit) => {
                    cost += Cost::cache_hit();
                    hit
                }
                None => {
                    let wrapper = self
                        .wrapper(&step.query.source)
                        .ok_or_else(|| MediatorError::UnknownSource(step.query.source.clone()))?;
                    let result = wrapper.subquery(&step.query.lorel, &mut cost)?;
                    if let Some(cache) = &self.cache {
                        cache.insert(key, result.clone());
                    }
                    result
                }
            };
            tagged.push(TaggedResult {
                source: step.query.source.clone(),
                purpose: step.query.purpose,
                result,
            });
        }
        let fused = fuse(&question, &tagged, self.policy.clone());

        let mut gml = OemStore::new();
        let root = gml.new_complex();
        // Source registry entries (SourceID, Name, Content, Structure —
        // the attributes the §4.1 example reads).
        for (i, d) in self.sources().iter().enumerate() {
            let s = gml.add_complex_child(root, "Source").expect("complex");
            gml.add_atomic_child(s, "SourceID", AtomicValue::Int(i as i64 + 1))
                .expect("complex");
            gml.add_atomic_child(s, "Name", d.name.as_str())
                .expect("complex");
            gml.add_atomic_child(s, "Content", d.content.as_str())
                .expect("complex");
            gml.add_atomic_child(s, "Structure", d.structure.as_str())
                .expect("complex");
        }
        // Gene entities from the fused (unfiltered) integration.
        for g in &fused.genes {
            let ge = gml.add_complex_child(root, "Gene").expect("complex");
            gml.add_atomic_child(ge, "Symbol", g.symbol.as_str())
                .expect("complex");
            if let Some(id) = g.gene_id {
                gml.add_atomic_child(ge, "GeneID", AtomicValue::Int(id))
                    .expect("complex");
            }
            for (label, v) in [
                ("Organism", &g.organism),
                ("Description", &g.description),
                ("Position", &g.position),
            ] {
                if let Some(v) = v {
                    gml.add_atomic_child(ge, label, v.as_str())
                        .expect("complex");
                }
            }
            for f in &g.functions {
                gml.add_atomic_child(ge, "FunctionID", f.id.as_str())
                    .expect("complex");
            }
            for d in &g.diseases {
                gml.add_atomic_child(ge, "DiseaseID", d.id.as_str())
                    .expect("complex");
            }
            for l in &g.links {
                gml.add_atomic_child(ge, "Link", AtomicValue::Url(l.url.clone()))
                    .expect("complex");
            }
        }
        // Function / Disease / Annotation entities straight from the rows.
        for tr in &tagged {
            let labels: &[(&str, &str)] = match tr.purpose {
                Purpose::Functions => &[
                    ("FunctionID", "FunctionID"),
                    ("Name", "Name"),
                    ("Namespace", "Namespace"),
                    ("Definition", "Definition"),
                    ("Link", "Link"),
                ],
                Purpose::Diseases => &[
                    ("DiseaseID", "DiseaseID"),
                    ("Name", "Name"),
                    ("Symbol", "Symbol"),
                    ("Inheritance", "Inheritance"),
                    ("Link", "Link"),
                ],
                Purpose::Annotations => &[
                    ("Symbol", "Symbol"),
                    ("FunctionID", "FunctionID"),
                    ("Evidence", "Evidence"),
                ],
                Purpose::Publications => &[
                    ("PublicationID", "PublicationID"),
                    ("Title", "Title"),
                    ("Year", "Year"),
                    ("Journal", "Journal"),
                    ("Symbol", "Symbol"),
                    ("Link", "Link"),
                ],
                Purpose::Genes => continue,
            };
            let entity = tr.purpose.entity();
            for row in tr.result.row_oids() {
                let e = gml.add_complex_child(root, entity).expect("complex");
                for &(from, to) in labels {
                    for child in tr.result.store.children(row, from) {
                        if let Some(v) = tr.result.store.value_of(child) {
                            gml.add_atomic_child(e, to, v.clone()).expect("complex");
                        }
                    }
                }
            }
        }
        gml.set_name_overwrite("ANNODA-GML", root)
            .expect("fresh root");
        Ok((gml, cost))
    }

    /// Runs an arbitrary Lorel query against the (materialised) global
    /// model — the §4.1 interface. Returns the store the answer lives in.
    pub fn query_gml(&self, lorel: &str) -> Result<(OemStore, QueryOutcome, Cost), MediatorError> {
        self.query_gml_with(lorel, &FunctionRegistry::standard())
    }

    /// [`Mediator::query_gml`] with caller-registered specialty
    /// evaluation functions in scope.
    pub fn query_gml_with(
        &self,
        lorel: &str,
        functions: &FunctionRegistry,
    ) -> Result<(OemStore, QueryOutcome, Cost), MediatorError> {
        let (mut gml, cost) = self.materialize_gml()?;
        let outcome = run_query_with(&mut gml, lorel, functions)?;
        Ok((gml, outcome, cost))
    }

    /// Evaluates `lorel` against an **already-materialised, shared** GML
    /// store — the serving layer's zero-clone warm path. The base is
    /// never mutated: the answer lands in the returned
    /// [`AnswerOverlay`], resolvable through an [`annoda_oem::Snapshot`]
    /// over the same base. Needs no mediator instance, so callers can
    /// evaluate with no registry lock held.
    pub fn query_gml_shared(
        gml: &OemStore,
        lorel: &str,
        functions: &FunctionRegistry,
        workers: EvalWorkers,
    ) -> Result<(AnswerOverlay, QueryOutcome, PlanExplain), MediatorError> {
        Ok(run_query_snapshot_explained(
            gml, lorel, functions, workers,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::AspectClause;
    use annoda_sources::{Corpus, CorpusConfig};
    use annoda_wrap::{GoWrapper, LocusLinkWrapper, OmimWrapper};

    fn mediator_over(corpus: &Corpus) -> Mediator {
        let mut m = Mediator::new();
        m.register(Box::new(LocusLinkWrapper::new(corpus.locuslink.clone())));
        m.register(Box::new(GoWrapper::new(corpus.go.clone())));
        m.register(Box::new(OmimWrapper::new(corpus.omim.clone())));
        m
    }

    fn tiny() -> Corpus {
        Corpus::generate(CorpusConfig::tiny(42))
    }

    #[test]
    fn registration_discovers_the_three_entity_mappings() {
        let m = mediator_over(&tiny());
        let model = m.model();
        assert_eq!(model.sources().len(), 3);
        let gene_providers = model.providers_of("Gene");
        assert_eq!(gene_providers.len(), 1, "{gene_providers:?}");
        assert_eq!(gene_providers[0].0, "LocusLink");
        assert_eq!(gene_providers[0].1.source_entity, "Locus");
        let fn_providers = model.providers_of("Function");
        assert_eq!(fn_providers.len(), 1);
        assert_eq!(fn_providers[0].1.source_entity, "Term");
        let dis_providers = model.providers_of("Disease");
        assert_eq!(dis_providers.len(), 1);
        assert_eq!(dis_providers[0].1.source_entity, "Entry");
        let ann_providers = model.providers_of("Annotation");
        assert_eq!(ann_providers.len(), 1);
        assert_eq!(ann_providers[0].1.source_entity, "Annotation");
    }

    #[test]
    fn mapping_covers_the_join_keys() {
        let m = mediator_over(&tiny());
        let model = m.model();
        let gene = &model.providers_of("Gene")[0].1;
        let has = |local: &str, global: &str| {
            gene.attributes
                .iter()
                .any(|(l, g)| l == local && g == global)
        };
        assert!(has("Symbol", "Symbol"), "{:?}", gene.attributes);
        assert!(has("LocusID", "GeneID"), "{:?}", gene.attributes);
        assert!(has("GOID", "FunctionID"), "{:?}", gene.attributes);
        assert!(has("MIM", "DiseaseID"), "{:?}", gene.attributes);
        assert!(has("Organism", "Organism"), "{:?}", gene.attributes);

        let ann = &model.providers_of("Annotation")[0].1;
        assert!(
            ann.attributes
                .iter()
                .any(|(l, g)| l == "Gene" && g == "Symbol"),
            "{:?}",
            ann.attributes
        );
        assert!(
            ann.attributes
                .iter()
                .any(|(l, g)| l == "Accession" && g == "FunctionID"),
            "{:?}",
            ann.attributes
        );

        let dis = &model.providers_of("Disease")[0].1;
        assert!(
            dis.attributes
                .iter()
                .any(|(l, g)| l == "MimNumber" && g == "DiseaseID"),
            "{:?}",
            dis.attributes
        );
        assert!(
            dis.attributes
                .iter()
                .any(|(l, g)| l == "GeneSymbol" && g == "Symbol"),
            "{:?}",
            dis.attributes
        );
    }

    #[test]
    fn figure5_question_end_to_end() {
        let corpus = tiny();
        let m = mediator_over(&corpus);
        let ans = m.answer(&GeneQuestion::figure5()).unwrap();
        // Expected set computed directly from the corpus: genes with at
        // least one GO id (either side) and no OMIM association.
        let mut expected: Vec<String> = corpus
            .locuslink
            .scan()
            .filter(|r| {
                let has_fn = !r.go_ids.is_empty()
                    || corpus.go.annotations_of_gene(&r.symbol).next().is_some();
                let has_dis =
                    !r.omim_ids.is_empty() || corpus.omim.by_gene(&r.symbol).next().is_some();
                has_fn && !has_dis
            })
            .map(|r| r.symbol.clone())
            .collect();
        expected.sort();
        let got: Vec<String> = ans.fused.genes.iter().map(|g| g.symbol.clone()).collect();
        assert_eq!(got, expected);
        assert!(ans.cost.requests >= 3, "all three sources contacted");
    }

    #[test]
    fn answers_are_identical_with_and_without_optimisation() {
        let corpus = tiny();
        let mut m = mediator_over(&corpus);
        let q = GeneQuestion {
            organism: Some("Homo sapiens".into()),
            function: AspectClause::Require(None),
            disease: AspectClause::Exclude(None),
            ..GeneQuestion::default()
        };
        let optimised = m.answer(&q).unwrap();
        m.optimizer = OptimizerConfig {
            pushdown: false,
            source_selection: false,
            bind_join: false,
        };
        let naive = m.answer(&q).unwrap();
        let a: Vec<&str> = optimised
            .fused
            .genes
            .iter()
            .map(|g| g.symbol.as_str())
            .collect();
        let b: Vec<&str> = naive
            .fused
            .genes
            .iter()
            .map(|g| g.symbol.as_str())
            .collect();
        assert_eq!(a, b, "optimisation must not change the answer");
        assert!(
            optimised.cost.virtual_us <= naive.cost.virtual_us,
            "optimised {} > naive {}",
            optimised.cost.virtual_us,
            naive.cost.virtual_us
        );
    }

    #[test]
    fn pushdown_reduces_shipped_records() {
        let corpus = tiny();
        let mut m = mediator_over(&corpus);
        let q = GeneQuestion {
            organism: Some("Homo sapiens".into()),
            ..GeneQuestion::default()
        };
        let with = m.answer(&q).unwrap();
        m.optimizer.pushdown = false;
        let without = m.answer(&q).unwrap();
        assert!(with.cost.records < without.cost.records);
        let a: Vec<&str> = with.fused.genes.iter().map(|g| g.symbol.as_str()).collect();
        let b: Vec<&str> = without
            .fused
            .genes
            .iter()
            .map(|g| g.symbol.as_str())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn conflicts_surface_with_inconsistent_corpus() {
        let corpus = Corpus::generate(CorpusConfig {
            loci: 60,
            go_terms: 30,
            omim_entries: 20,
            seed: 9,
            inconsistency_rate: 0.5,
        });
        let m = mediator_over(&corpus);
        let q = GeneQuestion {
            function: AspectClause::Require(None),
            ..GeneQuestion::default()
        };
        let ans = m.answer(&q).unwrap();
        assert!(
            !ans.fused.conflicts.is_empty(),
            "injected inconsistencies must be detected"
        );
    }

    #[test]
    fn paper_query_against_materialised_gml() {
        let m = mediator_over(&tiny());
        let (gml, outcome, _cost) = m
            .query_gml(r#"select S from ANNODA-GML.Source S where S.Name = "LocusLink""#)
            .unwrap();
        assert_eq!(outcome.rows.len(), 1);
        let obj = outcome.sole_result(&gml).unwrap();
        assert_eq!(
            gml.child_value(obj, "Name"),
            Some(&AtomicValue::Str("LocusLink".into()))
        );
        // The answer object carries the four Figure-4 Source attributes.
        let labels: Vec<&str> = gml
            .edges_of(obj)
            .iter()
            .map(|e| gml.label_name(e.label))
            .collect();
        assert_eq!(labels, vec!["SourceID", "Name", "Content", "Structure"]);
    }

    #[test]
    fn unregister_removes_provider() {
        let mut m = mediator_over(&tiny());
        assert!(m.unregister("OMIM"));
        assert!(!m.unregister("OMIM"));
        assert_eq!(m.sources().len(), 2);
        assert!(m.model().providers_of("Disease").is_empty());
        // Questions ignoring diseases still work.
        let ans = m.answer(&GeneQuestion::default()).unwrap();
        assert!(!ans.fused.genes.is_empty());
    }

    #[test]
    fn one_mediator_serves_concurrent_questions() {
        // The single access point is shared: `answer` takes `&self`, so
        // several users can ask at once (with the cache exercised
        // underneath).
        let corpus = tiny();
        let mut m = mediator_over(&corpus);
        m.enable_cache();
        let expected_fig5 = m
            .answer(&GeneQuestion::figure5())
            .unwrap()
            .fused
            .genes
            .len();
        let expected_all = m
            .answer(&GeneQuestion::default())
            .unwrap()
            .fused
            .genes
            .len();
        let m = &m;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move || {
                        let q = if i % 2 == 0 {
                            GeneQuestion::figure5()
                        } else {
                            GeneQuestion::default()
                        };
                        m.answer(&q).unwrap().fused.genes.len()
                    })
                })
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                let got = h.join().unwrap();
                let expected = if i % 2 == 0 {
                    expected_fig5
                } else {
                    expected_all
                };
                assert_eq!(got, expected);
            }
        });
    }

    #[test]
    fn error_displays_are_informative() {
        assert!(MediatorError::NoGeneProvider.to_string().contains("Gene"));
        assert!(MediatorError::UnknownSource("X".into())
            .to_string()
            .contains("X"));
        let wrap_err: MediatorError = annoda_wrap::WrapError::Unsupported("down".into()).into();
        assert!(wrap_err.to_string().contains("down"));
        let lorel_err: MediatorError = annoda_lorel::LorelError::Eval("bad".into()).into();
        assert!(lorel_err.to_string().contains("bad"));
    }

    #[test]
    fn no_gene_provider_is_an_error() {
        let corpus = tiny();
        let mut m = Mediator::new();
        m.register(Box::new(OmimWrapper::new(corpus.omim.clone())));
        assert!(matches!(
            m.answer(&GeneQuestion::default()),
            Err(MediatorError::NoGeneProvider)
        ));
    }

    #[test]
    fn bind_join_preserves_answers_and_ships_less() {
        let corpus = tiny();
        let mut m = mediator_over(&corpus);
        let q = GeneQuestion {
            symbol_like: Some("B%".into()),
            function: AspectClause::Require(None),
            disease: AspectClause::Exclude(None),
            ..GeneQuestion::default()
        };
        let unbound = m.answer(&q).unwrap();
        m.optimizer.bind_join = true;
        let bound = m.answer(&q).unwrap();
        let a: Vec<&str> = unbound
            .fused
            .genes
            .iter()
            .map(|g| g.symbol.as_str())
            .collect();
        let b: Vec<&str> = bound
            .fused
            .genes
            .iter()
            .map(|g| g.symbol.as_str())
            .collect();
        assert_eq!(a, b, "bind join must not change the answer");
        assert!(
            bound.cost.records < unbound.cost.records,
            "bound {} >= unbound {}",
            bound.cost.records,
            unbound.cost.records
        );
    }

    #[test]
    fn bind_join_with_empty_gene_set_skips_second_phase() {
        let corpus = tiny();
        let mut m = mediator_over(&corpus);
        m.optimizer.bind_join = true;
        let q = GeneQuestion {
            symbol_like: Some("ZZZ_NO_MATCH".into()),
            function: AspectClause::Require(None),
            ..GeneQuestion::default()
        };
        let ans = m.answer(&q).unwrap();
        assert!(ans.fused.genes.is_empty());
        // Gene step + (at most) the Function detail step; the
        // annotation step was skipped because no symbol qualified.
        assert!(ans.cost.requests <= 2, "{} requests", ans.cost.requests);
    }

    #[test]
    fn fourth_source_publications_end_to_end() {
        let corpus = tiny();
        let mut m = mediator_over(&corpus);
        let report = m.register(Box::new(annoda_wrap::PubmedWrapper::new(
            corpus.pubmed.clone(),
        )));
        assert!(report.matched >= 5, "{report:?}");
        let providers = m.model().providers_of("Publication");
        assert_eq!(providers.len(), 1, "{providers:?}");
        assert_eq!(providers[0].1.source_entity, "Citation");
        let has = |local: &str, global: &str| {
            providers[0]
                .1
                .attributes
                .iter()
                .any(|(l, g)| l == local && g == global)
        };
        assert!(
            has("Pmid", "PublicationID"),
            "{:?}",
            providers[0].1.attributes
        );
        assert!(
            has("GeneSymbol", "Symbol"),
            "{:?}",
            providers[0].1.attributes
        );
        assert!(
            has("ArticleTitle", "Title"),
            "{:?}",
            providers[0].1.attributes
        );
        assert!(has("Journal", "Journal"), "{:?}", providers[0].1.attributes);

        // Genes cited in some publication.
        let q = GeneQuestion {
            publication: AspectClause::Require(None),
            ..GeneQuestion::default()
        };
        let ans = m.answer(&q).unwrap();
        let mut expected: Vec<String> = corpus
            .locuslink
            .scan()
            .filter(|r| corpus.pubmed.by_gene(&r.symbol).next().is_some())
            .map(|r| r.symbol.clone())
            .collect();
        expected.sort();
        let got: Vec<String> = ans.fused.genes.iter().map(|g| g.symbol.clone()).collect();
        assert_eq!(got, expected);
        for g in &ans.fused.genes {
            assert!(!g.publications.is_empty());
            assert!(g.publications.iter().all(|p| p.title.is_some()));
        }

        // And the other three mappings are undisturbed by the larger
        // global schema.
        assert_eq!(m.model().providers_of("Gene").len(), 1);
        assert_eq!(m.model().providers_of("Function").len(), 1);
        assert_eq!(m.model().providers_of("Disease").len(), 1);
    }

    #[test]
    fn publication_clause_ignored_without_provider() {
        let corpus = tiny();
        let m = mediator_over(&corpus); // 3 sources only
        let q = GeneQuestion {
            publication: AspectClause::Require(None),
            ..GeneQuestion::default()
        };
        // No provider: no gene can satisfy the require clause.
        let ans = m.answer(&q).unwrap();
        assert!(ans.fused.genes.is_empty());
    }

    #[test]
    fn evidence_gated_reconciliation_drops_weak_go_only_claims() {
        use annoda_sources::{EvidenceCode, GoAnnotation};
        let mut corpus = tiny();
        // Give one gene a GO-side-only annotation with weak (IEA)
        // evidence and another with strong (IDA) evidence.
        let symbol = corpus.locuslink.scan().next().unwrap().symbol.clone();
        let term_weak = "GO:0000001".to_string();
        let term_strong = "GO:0000002".to_string();
        corpus.go.insert_annotation(GoAnnotation {
            gene_symbol: symbol.clone(),
            term_id: term_weak.clone(),
            evidence: EvidenceCode::Iea,
        });
        corpus.go.insert_annotation(GoAnnotation {
            gene_symbol: symbol.clone(),
            term_id: term_strong.clone(),
            evidence: EvidenceCode::Ida,
        });
        let mut m = mediator_over(&corpus);
        m.policy = ReconcilePolicy::MinEvidence(3);
        let q = GeneQuestion {
            symbol_like: Some(symbol.clone()),
            function: AspectClause::Require(None),
            ..GeneQuestion::default()
        };
        let ans = m.answer(&q).unwrap();
        let gene = ans
            .fused
            .genes
            .iter()
            .find(|g| g.symbol == symbol)
            .expect("gene kept (it has locus-side annotations too)");
        let fids: Vec<&str> = gene.functions.iter().map(|f| f.id.as_str()).collect();
        assert!(
            !fids.contains(&term_weak.as_str()),
            "IEA-only claim must be dropped: {fids:?}"
        );
        assert!(
            fids.contains(&term_strong.as_str()),
            "IDA-backed claim must survive: {fids:?}"
        );
        // Locus-side claims survive regardless of GO evidence.
        for locus_fid in &corpus.locuslink.by_symbol(&symbol).unwrap().go_ids {
            assert!(fids.contains(&locus_fid.as_str()));
        }
    }

    #[test]
    fn partial_results_survive_a_downed_source() {
        use annoda_wrap::{FailureMode, FlakyWrapper, OmimWrapper};
        let corpus = tiny();
        let mut m = Mediator::new();
        m.register(Box::new(LocusLinkWrapper::new(corpus.locuslink.clone())));
        m.register(Box::new(GoWrapper::new(corpus.go.clone())));
        m.register(Box::new(FlakyWrapper::new(
            OmimWrapper::new(corpus.omim.clone()),
            FailureMode::Always,
        )));
        let q = GeneQuestion {
            function: AspectClause::Require(None),
            disease: AspectClause::Require(None),
            ..GeneQuestion::default()
        };

        // Default: the outage fails the question.
        assert!(matches!(m.answer(&q), Err(MediatorError::Wrap(_))));

        // Partial results: the question degrades gracefully — OMIM's
        // contribution is missing (so the disease-require clause can
        // only be met by locus-side MIM ids) and the failure is
        // reported.
        m.partial_results = true;
        let ans = m.answer(&q).unwrap();
        assert_eq!(ans.failed_sources.len(), 1);
        assert_eq!(ans.failed_sources[0].source, "OMIM");
        assert!(ans.failed_sources[0].error.contains("injected failure"));
        // FlakyWrapper simulates unreachability: a transport loss, and
        // the fused answer itself names the missing source.
        assert_eq!(ans.failed_sources[0].kind, FailureKind::Transport);
        assert_eq!(ans.fused.missing_sources, vec!["OMIM".to_string()]);
        let expected: Vec<String> = {
            let mut v: Vec<String> = corpus
                .locuslink
                .scan()
                .filter(|r| {
                    let has_fn = !r.go_ids.is_empty()
                        || corpus.go.annotations_of_gene(&r.symbol).next().is_some();
                    has_fn && !r.omim_ids.is_empty()
                })
                .map(|r| r.symbol.clone())
                .collect();
            v.sort();
            v
        };
        let got: Vec<String> = ans.fused.genes.iter().map(|g| g.symbol.clone()).collect();
        assert_eq!(got, expected, "locus-side disease ids still answer");
    }

    #[test]
    fn all_gene_providers_down_is_still_an_error() {
        use annoda_wrap::{FailureMode, FlakyWrapper};
        let corpus = tiny();
        let mut m = Mediator::new();
        m.register(Box::new(FlakyWrapper::new(
            LocusLinkWrapper::new(corpus.locuslink.clone()),
            FailureMode::Always,
        )));
        m.register(Box::new(GoWrapper::new(corpus.go.clone())));
        m.partial_results = true;
        assert!(matches!(
            m.answer(&GeneQuestion::default()),
            Err(MediatorError::NoGeneProvider)
        ));
    }

    #[test]
    fn intermittent_failures_heal_between_questions() {
        use annoda_wrap::{FailureMode, FlakyWrapper, OmimWrapper};
        let corpus = tiny();
        let mut m = Mediator::new();
        m.register(Box::new(LocusLinkWrapper::new(corpus.locuslink.clone())));
        m.register(Box::new(GoWrapper::new(corpus.go.clone())));
        // Fails every 2nd request to OMIM.
        m.register(Box::new(FlakyWrapper::new(
            OmimWrapper::new(corpus.omim.clone()),
            FailureMode::EveryNth(2),
        )));
        m.partial_results = true;
        let q = GeneQuestion {
            disease: AspectClause::Require(None),
            ..GeneQuestion::default()
        };
        let first = m.answer(&q).unwrap(); // OMIM attempt 1: ok
        assert!(first.failed_sources.is_empty());
        let second = m.answer(&q).unwrap(); // OMIM attempt 2: fails
        assert_eq!(second.failed_sources.len(), 1);
        let third = m.answer(&q).unwrap(); // OMIM attempt 3: ok again
        assert!(third.failed_sources.is_empty());
        let a: Vec<&str> = first
            .fused
            .genes
            .iter()
            .map(|g| g.symbol.as_str())
            .collect();
        let c: Vec<&str> = third
            .fused
            .genes
            .iter()
            .map(|g| g.symbol.as_str())
            .collect();
        assert_eq!(a, c);
    }

    #[test]
    fn panicking_wrapper_degrades_like_a_failing_one() {
        use annoda_wrap::{FailureMode, FlakyWrapper, OmimWrapper};
        let corpus = tiny();
        let mut m = Mediator::new();
        m.register(Box::new(LocusLinkWrapper::new(corpus.locuslink.clone())));
        m.register(Box::new(GoWrapper::new(corpus.go.clone())));
        m.register(Box::new(FlakyWrapper::new(
            OmimWrapper::new(corpus.omim.clone()),
            FailureMode::Panic,
        )));
        let q = GeneQuestion {
            function: AspectClause::Require(None),
            disease: AspectClause::Require(None),
            ..GeneQuestion::default()
        };

        // Without partial results the panic becomes this question's
        // error — `answer` itself must not unwind.
        let err = m
            .answer(&q)
            .expect_err("the crashed source fails the question");
        let msg = err.to_string();
        assert!(msg.contains("panic"), "{msg}");
        assert!(msg.contains("OMIM"), "{msg}");

        // With partial results the panic is contained to its source and
        // reported alongside clean failures.
        m.partial_results = true;
        let ans = m.answer(&q).unwrap();
        assert_eq!(ans.failed_sources.len(), 1);
        assert_eq!(ans.failed_sources[0].source, "OMIM");
        assert!(
            ans.failed_sources[0].error.contains("panic"),
            "{:?}",
            ans.failed_sources
        );
        assert_eq!(ans.failed_sources[0].kind, FailureKind::Panic);
        assert_eq!(ans.fused.missing_sources, vec!["OMIM".to_string()]);
        // The healthy sources' answers are intact: same genes as a
        // mediator that never had OMIM.
        let mut healthy = Mediator::new();
        healthy.register(Box::new(LocusLinkWrapper::new(corpus.locuslink.clone())));
        healthy.register(Box::new(GoWrapper::new(corpus.go.clone())));
        let expected = healthy.answer(&q).unwrap();
        let a: Vec<&str> = ans.fused.genes.iter().map(|g| g.symbol.as_str()).collect();
        let b: Vec<&str> = expected
            .fused
            .genes
            .iter()
            .map(|g| g.symbol.as_str())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn first_failure_in_plan_order_is_reported() {
        use annoda_wrap::{FailureMode, FlakyWrapper};
        let corpus = tiny();
        let mut m = Mediator::new();
        m.register(Box::new(LocusLinkWrapper::new(corpus.locuslink.clone())));
        // Both phase-2 sources are down; the reported error must name
        // the one whose step comes first in the plan, deterministically.
        m.register(Box::new(FlakyWrapper::new(
            GoWrapper::new(corpus.go.clone()),
            FailureMode::Always,
        )));
        m.register(Box::new(FlakyWrapper::new(
            OmimWrapper::new(corpus.omim.clone()),
            FailureMode::Always,
        )));
        let q = GeneQuestion {
            function: AspectClause::Require(None),
            disease: AspectClause::Require(None),
            ..GeneQuestion::default()
        };
        let plan = m.plan(&q);
        let first_failing = plan
            .steps
            .iter()
            .map(|s| s.query.source.as_str())
            .find(|s| *s != "LocusLink")
            .expect("plan contacts a non-gene source")
            .to_string();
        for _ in 0..8 {
            let err = m.answer(&q).expect_err("both aspect sources are down");
            assert!(
                err.to_string().contains(&first_failing),
                "expected `{first_failing}` in `{err}`"
            );
        }
    }

    #[test]
    fn cache_is_bounded_and_counts_hits_misses_evictions() {
        let corpus = tiny();
        let mut m = mediator_over(&corpus);
        // Pathologically small: total capacity rounds up to one entry
        // per shard, so distinct questions keep evicting.
        m.enable_cache_with_capacity(1);
        let stats = m.cache_stats().unwrap();
        assert!(stats.capacity >= 1);
        assert_eq!(
            (stats.len, stats.hits, stats.misses, stats.evictions),
            (0, 0, 0, 0)
        );

        let q = GeneQuestion::figure5();
        let first = m.answer(&q).unwrap();
        assert_eq!(first.cost.cache_hits, 0);
        let misses_after_first = m.cache_stats().unwrap().misses;
        assert!(misses_after_first > 0, "cold run misses");

        // Same question again: whatever is still cached is served
        // without a request; every served step is counted on the cost.
        let second = m.answer(&q).unwrap();
        let stats = m.cache_stats().unwrap();
        assert_eq!(second.cost.cache_hits, stats.hits);
        assert!(
            stats.len <= stats.capacity,
            "{} entries exceed capacity {}",
            stats.len,
            stats.capacity
        );

        // A different question forces new keys through the tiny cache:
        // evictions must occur and the bound must hold.
        m.answer(&GeneQuestion::default()).unwrap();
        let stats = m.cache_stats().unwrap();
        assert!(stats.len <= stats.capacity);
        assert!(stats.evictions > 0 || stats.len < stats.capacity);

        // A roomy cache serves the whole repeat question from memory.
        let mut big = mediator_over(&corpus);
        big.enable_cache_with_capacity(256);
        let cold = big.answer(&q).unwrap();
        assert_eq!(cold.cost.cache_hits, 0);
        let warm = big.answer(&q).unwrap();
        assert_eq!(warm.cost.requests, 0);
        assert_eq!(
            warm.cost.cache_hits as usize,
            warm.plan.steps.len(),
            "every step served from cache"
        );
        let stats = big.cache_stats().unwrap();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.hits, warm.cost.cache_hits);
    }

    #[test]
    fn cache_eliminates_repeat_round_trips() {
        let corpus = tiny();
        let mut m = mediator_over(&corpus);
        m.enable_cache();
        let q = GeneQuestion::figure5();
        let first = m.answer(&q).unwrap();
        assert!(first.cost.requests > 0);
        let second = m.answer(&q).unwrap();
        assert_eq!(second.cost.requests, 0, "all subqueries served from cache");
        let a: Vec<&str> = first
            .fused
            .genes
            .iter()
            .map(|g| g.symbol.as_str())
            .collect();
        let b: Vec<&str> = second
            .fused
            .genes
            .iter()
            .map(|g| g.symbol.as_str())
            .collect();
        assert_eq!(a, b);

        // Refresh invalidates: the next answer pays again.
        m.refresh_all();
        let third = m.answer(&q).unwrap();
        assert!(third.cost.requests > 0);

        // Disabling clears it too.
        m.disable_cache();
        let fourth = m.answer(&q).unwrap();
        assert!(fourth.cost.requests > 0);
    }

    #[test]
    fn per_source_costs_sum_to_the_total() {
        let corpus = tiny();
        let m = mediator_over(&corpus);
        let ans = m.answer(&GeneQuestion::figure5()).unwrap();
        assert_eq!(ans.per_source_cost.len(), 3);
        let sum: u64 = ans.per_source_cost.iter().map(|(_, c)| c.virtual_us).sum();
        assert_eq!(sum, ans.cost.virtual_us);
        assert!(ans
            .per_source_cost
            .iter()
            .all(|(s, c)| !s.is_empty() && c.requests >= 1));
    }

    #[test]
    fn critical_path_is_at_most_total_cost() {
        let corpus = tiny();
        let m = mediator_over(&corpus);
        let ans = m.answer(&GeneQuestion::figure5()).unwrap();
        assert!(ans.critical_path_us > 0);
        assert!(
            ans.critical_path_us <= ans.cost.virtual_us,
            "parallel wall-clock {} must not exceed total work {}",
            ans.critical_path_us,
            ans.cost.virtual_us
        );
        // With 3+ sources in phase 2 the critical path is strictly
        // cheaper than serial execution.
        assert!(ans.critical_path_us < ans.cost.virtual_us);
    }

    #[test]
    fn wall_clock_is_measured_alongside_virtual_cost() {
        use annoda_wrap::{DelayMode, FailureMode, FlakyWrapper, OmimWrapper};
        use std::time::Duration;
        let corpus = tiny();
        let mut m = Mediator::new();
        m.register(Box::new(LocusLinkWrapper::new(corpus.locuslink.clone())));
        m.register(Box::new(GoWrapper::new(corpus.go.clone())));
        // One deliberately slow source: 5 ms per subquery.
        m.register(Box::new(
            FlakyWrapper::new(OmimWrapper::new(corpus.omim.clone()), FailureMode::Never)
                .with_delay(DelayMode::Fixed(Duration::from_millis(5))),
        ));
        let q = GeneQuestion {
            function: AspectClause::Require(None),
            disease: AspectClause::Require(None),
            ..GeneQuestion::default()
        };
        let ans = m.answer(&q).unwrap();
        // The slow source bounds the measured wall path from below; the
        // summed per-subquery wall time bounds it from above.
        assert!(
            ans.wall_path_us >= 5_000,
            "wall path {} must include the 5 ms stall",
            ans.wall_path_us
        );
        assert!(ans.wall_path_us <= ans.cost.wall_us);
        // Virtual accounting is untouched by real elapsed time.
        assert!(ans.critical_path_us <= ans.cost.virtual_us);
        let omim = ans
            .per_source_cost
            .iter()
            .find(|(s, _)| s == "OMIM")
            .expect("OMIM contributed");
        assert!(omim.1.wall_us >= 5_000);
    }

    #[test]
    fn refresh_all_reexports() {
        let corpus = tiny();
        let mut m = mediator_over(&corpus);
        let total = m.refresh_all();
        assert!(total > 0);
    }

    #[test]
    fn search_ranks_loci_and_reports_stats() {
        let corpus = tiny();
        let mut m = mediator_over(&corpus);
        assert!(m.search_stats().is_none(), "no index before first search");
        // Query with a word that verifiably occurs in the harvested
        // text, so the assertion does not depend on corpus vocabulary.
        let harvested = m.harvest_text_docs();
        let query = harvested
            .iter()
            .flat_map(|(_, docs)| docs)
            .filter(|d| !d.loci.is_empty())
            .find_map(|d| annoda_search::tokenize(&d.text).into_iter().next())
            .expect("some locus-bearing doc has an indexable token");
        let hits = m.search(&query, 5, FusionStrategy::Weighted);
        assert!(!hits.is_empty(), "query {query:?} must hit");
        assert!(hits.len() <= 5);
        let stats = m.search_stats().expect("index built by the search");
        // GO terms + OMIM entries carry text; LocusLink does not.
        assert_eq!(stats.sources, 2);
        assert!(stats.terms > 0 && stats.postings > 0);
    }

    #[test]
    fn search_index_invalidates_on_registration_and_refresh() {
        let corpus = tiny();
        let mut m = mediator_over(&corpus);
        let _ = m.search("apoptosis", 3, FusionStrategy::Rrf);
        assert!(m.search_stats().is_some());
        m.refresh_all();
        assert!(m.search_stats().is_none(), "refresh drops the index");
        let _ = m.search("apoptosis", 3, FusionStrategy::Rrf);
        let before = m.search_stats().unwrap();
        m.register(Box::new(annoda_wrap::PubmedWrapper::new(
            corpus.pubmed.clone(),
        )));
        assert!(m.search_stats().is_none(), "register drops the index");
        let _ = m.search("apoptosis", 3, FusionStrategy::Rrf);
        let after = m.search_stats().unwrap();
        assert_eq!(after.sources, before.sources + 1, "PubMed now indexed");
        m.unregister("PubMed");
        assert!(m.search_stats().is_none(), "unregister drops the index");
    }
}
