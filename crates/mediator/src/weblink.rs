//! Web-links for interactive navigation.
//!
//! "Unlike the past work …, this database design uses web-links which are
//! very useful for interactive navigation." Every object in an integrated
//! view carries links: external `http://` links pointing back at the
//! originating source record, and internal `annoda://` links that the
//! navigator resolves to individual object views (Figure 5c).

use std::fmt;

/// One navigable link attached to an integrated object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WebLink {
    /// The label shown to the user (usually the source name).
    pub label: String,
    /// The target URL.
    pub url: String,
}

impl WebLink {
    /// An external link into a source's own web interface.
    pub fn external(label: &str, url: impl Into<String>) -> Self {
        WebLink {
            label: label.to_string(),
            url: url.into(),
        }
    }

    /// An internal link to an ANNODA object view, resolvable by the
    /// navigator (`annoda://object/<kind>/<key>`).
    pub fn internal(kind: &str, key: &str) -> Self {
        WebLink {
            label: format!("ANNODA {kind}"),
            url: format!("annoda://object/{kind}/{key}"),
        }
    }

    /// True for internal `annoda://` links.
    pub fn is_internal(&self) -> bool {
        self.url.starts_with("annoda://")
    }

    /// For internal links, the `(kind, key)` pair addressed.
    pub fn internal_target(&self) -> Option<(&str, &str)> {
        let rest = self.url.strip_prefix("annoda://object/")?;
        rest.split_once('/')
    }
}

impl fmt::Display for WebLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]({})", self.label, self.url)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_links_round_trip() {
        let l = WebLink::internal("gene", "TP53");
        assert!(l.is_internal());
        assert_eq!(l.internal_target(), Some(("gene", "TP53")));
        assert_eq!(l.url, "annoda://object/gene/TP53");
    }

    #[test]
    fn external_links_are_not_internal() {
        let l = WebLink::external("OMIM", "http://www.ncbi.nlm.nih.gov/omim/151623");
        assert!(!l.is_internal());
        assert_eq!(l.internal_target(), None);
    }

    #[test]
    fn display_is_markdownish() {
        let l = WebLink::external("GO", "http://go");
        assert_eq!(l.to_string(), "[GO](http://go)");
    }
}
