//! The ANNODA-GML global model (Figure 4).
//!
//! ANNODA-GML is a *virtual* federated view: it is never bulk-loaded; the
//! mediator materialises only query answers against it. What exists
//! statically is (a) the global **schema** — here represented by a small
//! typed exemplar instance, since OEM schemas are extracted from
//! instances — and (b) the per-source **mapping rules** that MDSM
//! produced when the source was plugged in.
//!
//! The global entities follow Figure 4: `Source` (the registry of
//! participating databases, with `SourceID`/`Name`/`Content`/`Structure`
//! exactly as the §4.1 example query expects), `Gene`, `Function`,
//! `Disease`, and the gene↔function `Annotation` association.

use std::collections::HashMap;

use annoda_match::{MappingRule, MatchReport, Mdsm};
use annoda_oem::{AtomicValue, OemStore};

/// Builder for the GML exemplar store.
#[derive(Debug, Clone, Default)]
pub struct GmlBuilder;

impl GmlBuilder {
    /// Builds the typed exemplar instance of the global schema. Every
    /// global entity occurs once with every attribute populated by a
    /// representative value, so schema extraction sees the full
    /// vocabulary with correct types.
    pub fn exemplar() -> OemStore {
        let mut db = OemStore::new();
        let root = db.new_complex();

        let source = db.add_complex_child(root, "Source").expect("root complex");
        db.add_atomic_child(source, "SourceID", AtomicValue::Int(1))
            .expect("complex");
        db.add_atomic_child(source, "Name", "ExampleSource")
            .expect("complex");
        db.add_atomic_child(source, "Content", "example annotation data")
            .expect("complex");
        db.add_atomic_child(source, "Structure", "semistructured")
            .expect("complex");

        let gene = db.add_complex_child(root, "Gene").expect("root complex");
        db.add_atomic_child(gene, "GeneID", AtomicValue::Int(7157))
            .expect("complex");
        db.add_atomic_child(gene, "Symbol", "TP53")
            .expect("complex");
        db.add_atomic_child(gene, "Organism", "Homo sapiens")
            .expect("complex");
        db.add_atomic_child(gene, "Description", "tumor protein p53")
            .expect("complex");
        db.add_atomic_child(gene, "Position", "17p13.1")
            .expect("complex");
        db.add_atomic_child(gene, "FunctionID", "GO:0003700")
            .expect("complex");
        db.add_atomic_child(gene, "DiseaseID", AtomicValue::Int(151623))
            .expect("complex");
        db.add_atomic_child(gene, "Link", AtomicValue::Url("http://example/gene".into()))
            .expect("complex");

        let function = db
            .add_complex_child(root, "Function")
            .expect("root complex");
        db.add_atomic_child(function, "FunctionID", "GO:0003700")
            .expect("complex");
        db.add_atomic_child(function, "Name", "transcription factor activity")
            .expect("complex");
        db.add_atomic_child(function, "Namespace", "molecular_function")
            .expect("complex");
        db.add_atomic_child(function, "Definition", "binds DNA")
            .expect("complex");
        db.add_atomic_child(
            function,
            "Link",
            AtomicValue::Url("http://example/function".into()),
        )
        .expect("complex");

        let disease = db.add_complex_child(root, "Disease").expect("root complex");
        db.add_atomic_child(disease, "DiseaseID", AtomicValue::Int(151623))
            .expect("complex");
        db.add_atomic_child(disease, "Name", "LI-FRAUMENI SYNDROME")
            .expect("complex");
        db.add_atomic_child(disease, "Symbol", "TP53")
            .expect("complex");
        db.add_atomic_child(disease, "Inheritance", "Autosomal dominant")
            .expect("complex");
        db.add_atomic_child(
            disease,
            "Link",
            AtomicValue::Url("http://example/disease".into()),
        )
        .expect("complex");

        let publication = db
            .add_complex_child(root, "Publication")
            .expect("root complex");
        db.add_atomic_child(publication, "PublicationID", AtomicValue::Int(10_000_001))
            .expect("complex");
        db.add_atomic_child(publication, "Title", "p53 mutations in human cancers")
            .expect("complex");
        db.add_atomic_child(publication, "Year", AtomicValue::Int(1991))
            .expect("complex");
        db.add_atomic_child(publication, "Journal", "Science")
            .expect("complex");
        db.add_atomic_child(publication, "Symbol", "TP53")
            .expect("complex");
        db.add_atomic_child(
            publication,
            "Link",
            AtomicValue::Url("http://example/publication".into()),
        )
        .expect("complex");

        let ann = db
            .add_complex_child(root, "Annotation")
            .expect("root complex");
        db.add_atomic_child(ann, "Symbol", "TP53").expect("complex");
        db.add_atomic_child(ann, "FunctionID", "GO:0003700")
            .expect("complex");
        db.add_atomic_child(ann, "Evidence", "IDA")
            .expect("complex");

        db.set_name("ANNODA-GML", root).expect("fresh store");
        db
    }
}

/// The attribute mappings of one source entity into one global entity.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityMapping {
    /// Local entity label under the source root (`Locus`, `Term`, `Entry`).
    pub source_entity: String,
    /// Global entity label (`Gene`, `Function`, `Disease`, `Annotation`).
    pub global_entity: String,
    /// `(local attribute suffix, global attribute name)` pairs, e.g.
    /// `("MimNumber", "DiseaseID")`.
    pub attributes: Vec<(String, String)>,
    /// The entity-level match score.
    pub score: f64,
}

/// The global model: exemplar schema + per-source mappings.
#[derive(Debug, Clone)]
pub struct GlobalModel {
    exemplar: OemStore,
    /// source name → raw MDSM rules.
    rules: HashMap<String, Vec<MappingRule>>,
    /// source name → derived entity mappings.
    entities: HashMap<String, Vec<EntityMapping>>,
    /// Registration order of sources.
    source_order: Vec<String>,
}

impl Default for GlobalModel {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalModel {
    /// A fresh global model with no sources registered.
    pub fn new() -> Self {
        GlobalModel {
            exemplar: GmlBuilder::exemplar(),
            rules: HashMap::new(),
            entities: HashMap::new(),
            source_order: Vec::new(),
        }
    }

    /// The exemplar store (root `ANNODA-GML`).
    pub fn exemplar(&self) -> &OemStore {
        &self.exemplar
    }

    /// Registers a source by matching its OML against the global schema
    /// with MDSM, deriving entity mappings from the raw rules.
    pub fn register_source(
        &mut self,
        mdsm: &Mdsm,
        source_name: &str,
        oml: &OemStore,
    ) -> MatchReport {
        let (rules, report) = mdsm.match_stores(oml, source_name, &self.exemplar, "ANNODA-GML");
        let entities = derive_entity_mappings(&rules);
        self.rules.insert(source_name.to_string(), rules);
        self.entities.insert(source_name.to_string(), entities);
        if !self.source_order.iter().any(|s| s == source_name) {
            self.source_order.push(source_name.to_string());
        }
        report
    }

    /// Removes a source's mappings.
    pub fn unregister_source(&mut self, source_name: &str) {
        self.rules.remove(source_name);
        self.entities.remove(source_name);
        self.source_order.retain(|s| s != source_name);
    }

    /// Registered sources in registration order.
    pub fn sources(&self) -> &[String] {
        &self.source_order
    }

    /// The raw MDSM rules for a source.
    pub fn rules_of(&self, source: &str) -> &[MappingRule] {
        self.rules.get(source).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The derived entity mappings for a source.
    pub fn entities_of(&self, source: &str) -> &[EntityMapping] {
        self.entities.get(source).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The sources providing a given global entity, with their mappings.
    pub fn providers_of(&self, global_entity: &str) -> Vec<(&str, &EntityMapping)> {
        self.source_order
            .iter()
            .filter_map(|s| {
                self.entities_of(s)
                    .iter()
                    .find(|e| e.global_entity == global_entity)
                    .map(|e| (s.as_str(), e))
            })
            .collect()
    }
}

/// Derives entity mappings from raw rules: every complex→complex rule
/// anchors an entity; attribute rules whose source path extends the
/// anchor's source path *and* whose global path extends the anchor's
/// global entity become the entity's attribute map. Attribute rules whose
/// global entity disagrees with the anchor are dropped as strays.
fn derive_entity_mappings(rules: &[MappingRule]) -> Vec<EntityMapping> {
    // Entity anchors: single-segment source path → single-segment global.
    let mut mappings = Vec::new();
    for anchor in rules {
        let src_is_entity = !anchor.source_path.contains('.');
        let glb_is_entity = !anchor.global_path.contains('.');
        if !(src_is_entity && glb_is_entity) {
            continue;
        }
        let mut attributes = Vec::new();
        let src_prefix = format!("{}.", anchor.source_path);
        let glb_prefix = format!("{}.", anchor.global_path);
        for r in rules {
            if let (Some(suffix), Some(attr)) = (
                r.source_path.strip_prefix(&src_prefix),
                r.global_path.strip_prefix(&glb_prefix),
            ) {
                // Only one-level attribute suffixes become attribute
                // mappings; deeper paths (Links.GO) stay out of the
                // entity map.
                if !suffix.contains('.') && !attr.contains('.') {
                    attributes.push((suffix.to_string(), attr.to_string()));
                }
            }
        }
        mappings.push(EntityMapping {
            source_entity: anchor.source_path.clone(),
            global_entity: anchor.global_path.clone(),
            attributes,
            score: anchor.score,
        });
    }
    mappings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exemplar_has_the_figure4_entities() {
        let ex = GmlBuilder::exemplar();
        let root = ex.named("ANNODA-GML").unwrap();
        for entity in [
            "Source",
            "Gene",
            "Function",
            "Disease",
            "Annotation",
            "Publication",
        ] {
            assert!(
                ex.child(root, entity).is_some(),
                "missing GML entity {entity}"
            );
        }
        // The §4.1 example query's attributes exist on Source.
        let source = ex.child(root, "Source").unwrap();
        for attr in ["SourceID", "Name", "Content", "Structure"] {
            assert!(ex.child(source, attr).is_some(), "missing {attr}");
        }
    }

    #[test]
    fn derive_entity_mappings_groups_attributes() {
        let rules = vec![
            MappingRule {
                source_path: "Entry".into(),
                global_path: "Disease".into(),
                score: 0.9,
            },
            MappingRule {
                source_path: "Entry.MimNumber".into(),
                global_path: "Disease.DiseaseID".into(),
                score: 0.6,
            },
            MappingRule {
                source_path: "Entry.Title".into(),
                global_path: "Disease.Name".into(),
                score: 0.8,
            },
            // Stray: global entity disagrees with the anchor.
            MappingRule {
                source_path: "Entry.Text".into(),
                global_path: "Function.Definition".into(),
                score: 0.7,
            },
        ];
        let ents = derive_entity_mappings(&rules);
        assert_eq!(ents.len(), 1);
        let e = &ents[0];
        assert_eq!(e.source_entity, "Entry");
        assert_eq!(e.global_entity, "Disease");
        assert_eq!(e.attributes.len(), 2);
        assert!(e
            .attributes
            .contains(&("MimNumber".to_string(), "DiseaseID".to_string())));
        assert!(!e.attributes.iter().any(|(s, _)| s == "Text"));
    }

    #[test]
    fn register_and_unregister_sources() {
        let mut model = GlobalModel::new();
        let mdsm = Mdsm::default();

        // A toy OML with an Entry entity.
        let mut oml = OemStore::new();
        let root = oml.new_complex();
        let e = oml.add_complex_child(root, "Entry").unwrap();
        oml.add_atomic_child(e, "MimNumber", AtomicValue::Int(1))
            .unwrap();
        oml.add_atomic_child(e, "Title", "X SYNDROME").unwrap();
        oml.add_atomic_child(e, "GeneSymbol", "TP53").unwrap();
        oml.set_name("OMIM", root).unwrap();

        let report = model.register_source(&mdsm, "OMIM", &oml);
        assert!(report.matched >= 3);
        assert_eq!(model.sources(), &["OMIM".to_string()]);
        let ents = model.entities_of("OMIM");
        assert_eq!(ents.len(), 1);
        assert_eq!(ents[0].global_entity, "Disease");
        assert_eq!(model.providers_of("Disease").len(), 1);
        assert!(model.providers_of("Gene").is_empty());

        model.unregister_source("OMIM");
        assert!(model.sources().is_empty());
        assert!(model.rules_of("OMIM").is_empty());
    }
}
