//! Question forms and query decomposition.
//!
//! ANNODA's users "describe a query in biological question, not in SQL"
//! (Figure 5a): they include or exclude sources of interest, pick a
//! combination method, and add search conditions. [`GeneQuestion`] is
//! that form; [`decompose`] translates it — through the mapping rules —
//! into per-source Lorel subqueries phrased in each source's own
//! vocabulary.

use std::fmt;

use crate::gml::{EntityMapping, GlobalModel};

/// How multiple *require* clauses combine (the Figure 5a "method for
/// combining the selected mapping").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Combination {
    /// A gene must satisfy **all** require clauses (intersection).
    #[default]
    All,
    /// A gene may satisfy **any** require clause (union).
    Any,
}

/// Inclusion/exclusion of one annotation aspect, with an optional
/// `like`-pattern on the aspect's name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum AspectClause {
    /// The aspect does not constrain the answer.
    #[default]
    Ignore,
    /// Genes must carry this aspect (optionally name-matching the
    /// pattern) — "annotated with some GO functions".
    Require(Option<String>),
    /// Genes must **not** carry this aspect (optionally restricted to
    /// names matching the pattern) — "not associated with some OMIM
    /// diseases".
    Exclude(Option<String>),
}

impl AspectClause {
    /// True when the clause constrains the answer.
    pub fn is_active(&self) -> bool {
        !matches!(self, AspectClause::Ignore)
    }

    /// The name pattern, if one was given.
    pub fn pattern(&self) -> Option<&str> {
        match self {
            AspectClause::Require(p) | AspectClause::Exclude(p) => p.as_deref(),
            AspectClause::Ignore => None,
        }
    }
}

/// A structured biological question over the integrated view.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GeneQuestion {
    /// Restrict to one organism.
    pub organism: Option<String>,
    /// `like`-pattern on the gene symbol.
    pub symbol_like: Option<String>,
    /// Constraint on GO function annotation.
    pub function: AspectClause,
    /// Constraint on OMIM disease association.
    pub disease: AspectClause,
    /// Constraint on literature citations (pattern on article titles) —
    /// active only when a publication source is plugged in.
    pub publication: AspectClause,
    /// How require clauses combine.
    pub combine: Combination,
    /// Fetch function/disease/publication details even when their
    /// clauses don't constrain the answer — used by the object-view
    /// navigator, which wants a complete record for one gene.
    pub fetch_aspects: bool,
}

impl GeneQuestion {
    /// The paper's running example (Figure 5b): *"find a set of LocusLink
    /// genes, which are annotated with some GO functions, but not
    /// associated with some OMIM diseases"*.
    pub fn figure5() -> Self {
        GeneQuestion {
            function: AspectClause::Require(None),
            disease: AspectClause::Exclude(None),
            ..GeneQuestion::default()
        }
    }
}

impl fmt::Display for GeneQuestion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Find a set of LocusLink genes")?;
        if let Some(o) = &self.organism {
            write!(f, " in {o}")?;
        }
        if let Some(s) = &self.symbol_like {
            write!(f, " whose symbol matches \"{s}\"")?;
        }
        let mut clauses: Vec<String> = Vec::new();
        match &self.function {
            AspectClause::Require(p) => clauses.push(match p {
                Some(p) => format!("which are annotated with GO functions matching \"{p}\""),
                None => "which are annotated with some GO functions".to_string(),
            }),
            AspectClause::Exclude(p) => clauses.push(match p {
                Some(p) => format!("which are not annotated with GO functions matching \"{p}\""),
                None => "which are not annotated with any GO function".to_string(),
            }),
            AspectClause::Ignore => {}
        }
        match &self.disease {
            AspectClause::Require(p) => clauses.push(match p {
                Some(p) => format!("which are associated with OMIM diseases matching \"{p}\""),
                None => "which are associated with some OMIM disease".to_string(),
            }),
            AspectClause::Exclude(p) => clauses.push(match p {
                Some(p) => {
                    format!("which are not associated with OMIM diseases matching \"{p}\"")
                }
                None => "which are not associated with some OMIM disease".to_string(),
            }),
            AspectClause::Ignore => {}
        }
        match &self.publication {
            AspectClause::Require(p) => clauses.push(match p {
                Some(p) => format!("which are cited in publications matching \"{p}\""),
                None => "which are cited in some publication".to_string(),
            }),
            AspectClause::Exclude(p) => clauses.push(match p {
                Some(p) => format!("which are not cited in publications matching \"{p}\""),
                None => "which are not cited in any publication".to_string(),
            }),
            AspectClause::Ignore => {}
        }
        let joiner = match self.combine {
            Combination::All => ", and ",
            Combination::Any => ", or ",
        };
        if !clauses.is_empty() {
            write!(f, ", {}", clauses.join(joiner))?;
        }
        Ok(())
    }
}

/// Which part of the integration a subquery feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purpose {
    /// Gene entity rows.
    Genes,
    /// Function (GO term) detail rows.
    Functions,
    /// Gene↔function association rows.
    Annotations,
    /// Disease entity rows (carrying gene symbols).
    Diseases,
    /// Literature citation rows (the fourth-source extension).
    Publications,
}

impl Purpose {
    /// The global entity the purpose reads.
    pub fn entity(self) -> &'static str {
        match self {
            Purpose::Genes => "Gene",
            Purpose::Functions => "Function",
            Purpose::Annotations => "Annotation",
            Purpose::Diseases => "Disease",
            Purpose::Publications => "Publication",
        }
    }
}

/// One per-source subquery of a decomposed global query.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceQuery {
    /// The source the subquery targets.
    pub source: String,
    /// What the rows feed.
    pub purpose: Purpose,
    /// The Lorel text, phrased in the source's own vocabulary.
    pub lorel: String,
    /// Whether selection predicates were pushed into the subquery.
    pub pushed_down: bool,
    /// The local entity label the subquery ranges over (`Locus`).
    pub entity_local: String,
    /// The pushed predicates as `(local attribute, op, literal)` —
    /// structured so the optimizer can estimate their selectivity from
    /// per-attribute statistics.
    pub predicates: Vec<(String, String, String)>,
}

/// A global question decomposed into per-source subqueries plus the
/// residual predicates the mediator must apply itself.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecomposedQuery {
    /// The subqueries, one per (source, purpose).
    pub queries: Vec<SourceQuery>,
    /// Human-readable descriptions of predicates evaluated at the
    /// mediator because they could not be pushed down.
    pub residual: Vec<String>,
}

/// Generates the Lorel subquery for one entity mapping.
///
/// `predicates` are `(global attribute, operator, literal)` triples; the
/// ones whose attribute the mapping covers are translated into the
/// source vocabulary, the rest are reported back as residual.
pub fn entity_subquery(
    source: &str,
    mapping: &EntityMapping,
    predicates: &[(String, String, String)],
) -> (String, Vec<(String, String, String)>, Vec<String>) {
    let var = "X";
    let mut select_items: Vec<String> = mapping
        .attributes
        .iter()
        .map(|(local, global)| format!("{var}.{local} as {global}"))
        .collect();
    if select_items.is_empty() {
        select_items.push(var.to_string());
    }
    let mut where_parts = Vec::new();
    let mut pushed = Vec::new();
    let mut residual = Vec::new();
    for (attr, op, literal) in predicates {
        match mapping.attributes.iter().find(|(_, g)| g == attr) {
            Some((local, _)) => {
                where_parts.push(format!("{var}.{local} {op} \"{literal}\""));
                pushed.push((local.clone(), op.clone(), literal.clone()));
            }
            None => residual.push(format!(
                "{}.{attr} {op} \"{literal}\"",
                mapping.global_entity
            )),
        }
    }
    let mut lorel = format!(
        "select {} from {source}.{} {var}",
        select_items.join(", "),
        mapping.source_entity
    );
    if !where_parts.is_empty() {
        lorel.push_str(" where ");
        lorel.push_str(&where_parts.join(" and "));
    }
    (lorel, pushed, residual)
}

/// Decomposes a question into per-source subqueries over `model`.
///
/// `pushdown` controls predicate translation (the B5 ablation switch);
/// when off, every predicate is residual. `fetch_all` disables source
/// selection: functions/annotations/diseases are fetched even when the
/// question ignores them.
pub fn decompose(
    question: &GeneQuestion,
    model: &GlobalModel,
    pushdown: bool,
    fetch_all: bool,
) -> DecomposedQuery {
    let mut out = DecomposedQuery::default();

    // Gene predicates.
    let mut gene_preds: Vec<(String, String, String)> = Vec::new();
    if let Some(o) = &question.organism {
        gene_preds.push(("Organism".into(), "=".into(), o.clone()));
    }
    if let Some(s) = &question.symbol_like {
        gene_preds.push(("Symbol".into(), "like".into(), s.clone()));
    }

    let mut add_entity = |purpose: Purpose, preds: &[(String, String, String)]| {
        for (source, mapping) in model.providers_of(purpose.entity()) {
            let effective: &[(String, String, String)] = if pushdown { preds } else { &[] };
            let (lorel, pushed, residual) = entity_subquery(source, mapping, effective);
            if !pushdown {
                for (attr, op, lit) in preds {
                    out.residual
                        .push(format!("{}.{attr} {op} \"{lit}\"", purpose.entity()));
                }
            }
            out.residual.extend(residual);
            out.queries.push(SourceQuery {
                source: source.to_string(),
                purpose,
                pushed_down: pushdown && !pushed.is_empty(),
                entity_local: mapping.source_entity.clone(),
                predicates: pushed,
                lorel,
            });
        }
    };

    add_entity(Purpose::Genes, &gene_preds);

    let fetch_all = fetch_all || question.fetch_aspects;
    if question.function.is_active() || fetch_all {
        add_entity(Purpose::Annotations, &[]);
        let mut fn_preds = Vec::new();
        if let Some(p) = question.function.pattern() {
            fn_preds.push(("Name".to_string(), "like".to_string(), p.to_string()));
        }
        add_entity(Purpose::Functions, &fn_preds);
    }
    if question.disease.is_active() || fetch_all {
        let mut d_preds = Vec::new();
        if let Some(p) = question.disease.pattern() {
            d_preds.push(("Name".to_string(), "like".to_string(), p.to_string()));
        }
        add_entity(Purpose::Diseases, &d_preds);
    }
    if question.publication.is_active() || fetch_all {
        let mut p_preds = Vec::new();
        if let Some(p) = question.publication.pattern() {
            p_preds.push(("Title".to_string(), "like".to_string(), p.to_string()));
        }
        add_entity(Purpose::Publications, &p_preds);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> EntityMapping {
        EntityMapping {
            source_entity: "Entry".into(),
            global_entity: "Disease".into(),
            attributes: vec![
                ("MimNumber".into(), "DiseaseID".into()),
                ("Title".into(), "Name".into()),
                ("GeneSymbol".into(), "Symbol".into()),
            ],
            score: 0.9,
        }
    }

    #[test]
    fn entity_subquery_translates_vocabulary() {
        let (lorel, pushed, residual) = entity_subquery("OMIM", &mapping(), &[]);
        assert!(pushed.is_empty());
        assert_eq!(
            lorel,
            "select X.MimNumber as DiseaseID, X.Title as Name, X.GeneSymbol as Symbol \
             from OMIM.Entry X"
        );
        assert!(residual.is_empty());
    }

    #[test]
    fn predicates_push_into_the_source_vocabulary() {
        let preds = vec![(
            "Name".to_string(),
            "like".to_string(),
            "%SYNDROME%".to_string(),
        )];
        let (lorel, pushed, residual) = entity_subquery("OMIM", &mapping(), &preds);
        assert!(lorel.ends_with(r#"where X.Title like "%SYNDROME%""#));
        assert_eq!(
            pushed,
            vec![(
                "Title".to_string(),
                "like".to_string(),
                "%SYNDROME%".to_string()
            )]
        );
        assert!(residual.is_empty());
    }

    #[test]
    fn unmapped_predicates_become_residual() {
        let preds = vec![(
            "Inheritance".to_string(),
            "=".to_string(),
            "X-linked".to_string(),
        )];
        let (lorel, _pushed, residual) = entity_subquery("OMIM", &mapping(), &preds);
        assert!(!lorel.contains("where"));
        assert_eq!(residual, vec![r#"Disease.Inheritance = "X-linked""#]);
    }

    #[test]
    fn figure5_question_reads_like_the_paper() {
        let q = GeneQuestion::figure5();
        let text = q.to_string();
        assert!(text.contains("annotated with some GO functions"));
        assert!(text.contains("not associated with some OMIM disease"));
    }

    #[test]
    fn fetch_aspects_forces_detail_steps() {
        // Build a minimal model with one gene provider only.
        let mut model = GlobalModel::new();
        let mdsm = annoda_match::Mdsm::default();
        let mut oml = annoda_oem::OemStore::new();
        let root = oml.new_complex();
        let l = oml.add_complex_child(root, "Locus").unwrap();
        oml.add_atomic_child(l, "Symbol", "TP53").unwrap();
        oml.set_name("LocusLink", root).unwrap();
        model.register_source(&mdsm, "LocusLink", &oml);

        let plain = decompose(&GeneQuestion::default(), &model, true, false);
        let fetch = decompose(
            &GeneQuestion {
                fetch_aspects: true,
                ..GeneQuestion::default()
            },
            &model,
            true,
            false,
        );
        // With no other providers registered, the step LISTS are the
        // same, but fetch_aspects asks for every entity the model can
        // provide — here just genes either way; the flag's effect shows
        // once providers exist (covered by navigator tests). At minimum
        // it must never *reduce* the plan.
        assert!(fetch.queries.len() >= plain.queries.len());
    }

    #[test]
    fn publication_clause_reads_naturally() {
        let q = GeneQuestion {
            disease: AspectClause::Require(None),
            publication: AspectClause::Exclude(None),
            ..GeneQuestion::default()
        };
        let text = q.to_string();
        assert!(text.contains("associated with some OMIM disease"));
        assert!(text.contains("not cited in any publication"));
        let q = GeneQuestion {
            publication: AspectClause::Require(Some("%cancer%".into())),
            ..GeneQuestion::default()
        };
        assert!(q
            .to_string()
            .contains("cited in publications matching \"%cancer%\""));
    }

    #[test]
    fn clause_activity() {
        assert!(!AspectClause::Ignore.is_active());
        assert!(AspectClause::Require(None).is_active());
        assert_eq!(
            AspectClause::Exclude(Some("%CANCER%".into())).pattern(),
            Some("%CANCER%")
        );
    }
}
