//! Scripted, deterministic native-database mutations for change-feed
//! testing and benchmarking.
//!
//! A source-server in `--mutate-every` mode, the stream proptests, and
//! B16 all need the same thing: a reproducible sequence of record-level
//! changes to a wrapper's native database. [`scripted_mutation`]
//! provides it — mutation `step` under `seed` always produces the same
//! change, and the change is applied through the wrapper's own
//! [`Wrapper::apply_change`] path, so a subscriber replaying the
//! emitted `(key, flat)` pairs converges on a byte-identical native
//! state (the incremental ≡ full-rebuild invariant the proptests pin).
//!
//! Mutations rewrite existing records (a locus description, an OMIM
//! clinical-text line) rather than inserting or deleting, mirroring how
//! curated annotation databases mostly *revise*; the change-feed
//! protocol itself supports inserts and deletes.

use crate::locuslink::{locus_flat, LocusLinkWrapper};
use crate::omim::{omim_flat, OmimWrapper};
use crate::wrapper::Wrapper;

/// SplitMix64 — a tiny, deterministic hash for picking mutation
/// targets; same construction the federation client uses for jitter.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Applies scripted mutation number `step` (deterministic under
/// `seed`) to `wrapper`'s native database and returns the change as a
/// `(key, flat)` pair ready for journaling. Returns `None` when the
/// wrapper's concrete type is not scriptable (only LocusLink and OMIM
/// are) or its database is empty. The caller owns re-exporting the OML
/// ([`Wrapper::refresh`]) — typically once per batch of mutations.
pub fn scripted_mutation(
    wrapper: &mut dyn Wrapper,
    seed: u64,
    step: u64,
) -> Option<(String, String)> {
    let draw = mix64(seed ^ mix64(step));
    let any = wrapper.as_any_mut();
    if let Some(w) = any.downcast_mut::<LocusLinkWrapper>() {
        let n = w.db().len();
        if n == 0 {
            return None;
        }
        let mut rec = w.db().scan().nth((draw % n as u64) as usize)?.clone();
        rec.description = format!(
            "{} revised annotation (step {step}, evidence e{})",
            rec.symbol,
            draw % 97
        );
        let key = rec.locus_id.to_string();
        let flat = locus_flat(&rec);
        w.apply_change(&key, Some(&flat)).ok()?;
        return Some((key, flat));
    }
    if let Some(w) = any.downcast_mut::<OmimWrapper>() {
        let n = w.db().len();
        if n == 0 {
            return None;
        }
        let mut entry = w.db().scan().nth((draw % n as u64) as usize)?.clone();
        entry.text = format!(
            "Revised clinical synopsis at step {step}: phenotype term pt{} with penetrance p{}.",
            draw % 53,
            draw % 11
        );
        let key = entry.mim_number.to_string();
        let flat = omim_flat(&entry);
        w.apply_change(&key, Some(&flat)).ok()?;
        return Some((key, flat));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use annoda_sources::{Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::tiny(7))
    }

    #[test]
    fn mutations_are_deterministic_and_visible_after_refresh() {
        let c = corpus();
        let mut a = LocusLinkWrapper::new(c.locuslink.clone());
        let mut b = LocusLinkWrapper::new(c.locuslink.clone());
        for step in 0..20 {
            let ca = scripted_mutation(&mut a, 42, step).expect("scriptable");
            let cb = scripted_mutation(&mut b, 42, step).expect("scriptable");
            assert_eq!(ca, cb, "step {step} must be deterministic");
        }
        a.refresh();
        b.refresh();
        assert_eq!(a.db().to_flat(), b.db().to_flat());
        // A different seed picks a different script.
        let mut c2 = LocusLinkWrapper::new(c.locuslink.clone());
        let other = scripted_mutation(&mut c2, 43, 0).expect("scriptable");
        let first = scripted_mutation(&mut a, 42, 0).expect("scriptable");
        assert_ne!(other, first);
    }

    #[test]
    fn omim_mutations_change_text_docs() {
        let c = corpus();
        let mut w = OmimWrapper::new(c.omim.clone());
        let before = w.text_docs();
        let (key, _flat) = scripted_mutation(&mut w, 9, 0).expect("scriptable");
        w.refresh();
        let after = w.text_docs();
        assert_ne!(before, after, "mutated entry {key} must change its doc");
    }

    #[test]
    fn replaying_emitted_changes_converges() {
        let c = corpus();
        let mut source = LocusLinkWrapper::new(c.locuslink.clone());
        let mut subscriber = LocusLinkWrapper::new(c.locuslink.clone());
        for step in 0..10 {
            let (key, flat) = scripted_mutation(&mut source, 5, step).expect("scriptable");
            subscriber.apply_change(&key, Some(&flat)).expect("applies");
        }
        source.refresh();
        subscriber.refresh();
        assert_eq!(source.db().to_flat(), subscriber.db().to_flat());
    }
}
