//! Failure injection for resilience testing.
//!
//! Remote annotation sources go down. [`FlakyWrapper`] decorates any
//! wrapper and fails subqueries according to a deterministic schedule,
//! so the mediator's partial-results behaviour can be tested and
//! benchmarked without real outages.

use std::sync::atomic::{AtomicU64, Ordering};

use annoda_oem::OemStore;

use crate::cost::Cost;
use crate::descr::SourceDescription;
use crate::wrapper::{SubqueryResult, WrapError, Wrapper};

/// When the decorated source fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Never fails (pass-through).
    Never,
    /// Every request fails — the source is down.
    Always,
    /// Every `n`-th request fails (1-based: `EveryNth(3)` fails requests
    /// 3, 6, 9, …).
    EveryNth(u64),
    /// Every request **panics** instead of returning an error — a
    /// crashing wrapper rather than a cleanly-failing one. The mediator
    /// must contain the panic to the failing source.
    Panic,
}

/// A decorator that injects subquery failures.
pub struct FlakyWrapper<W> {
    inner: W,
    mode: FailureMode,
    calls: AtomicU64,
}

impl<W: Wrapper> FlakyWrapper<W> {
    /// Decorates `inner` with the given failure schedule.
    pub fn new(inner: W, mode: FailureMode) -> Self {
        FlakyWrapper {
            inner,
            mode,
            calls: AtomicU64::new(0),
        }
    }

    /// Subquery attempts seen so far (including failed ones).
    pub fn attempts(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// The decorated wrapper.
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: Wrapper> Wrapper for FlakyWrapper<W> {
    fn description(&self) -> &SourceDescription {
        self.inner.description()
    }

    fn oml(&self) -> &OemStore {
        self.inner.oml()
    }

    fn refresh(&mut self) -> usize {
        self.inner.refresh()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn subquery(&self, lorel: &str, cost: &mut Cost) -> Result<SubqueryResult, WrapError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let fail = match self.mode {
            FailureMode::Never => false,
            FailureMode::Always => true,
            FailureMode::EveryNth(k) => k > 0 && n.is_multiple_of(k),
            FailureMode::Panic => panic!(
                "{} wrapper crashed (injected panic, attempt {n})",
                self.name()
            ),
        };
        if fail {
            return Err(WrapError::Unsupported(format!(
                "{} is unreachable (injected failure, attempt {n})",
                self.name()
            )));
        }
        self.inner.subquery(lorel, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locuslink::LocusLinkWrapper;
    use annoda_sources::{LocusLinkDb, LocusRecord};

    fn wrapper(mode: FailureMode) -> FlakyWrapper<LocusLinkWrapper> {
        let db = LocusLinkDb::from_records([LocusRecord {
            locus_id: 1,
            symbol: "X1".into(),
            organism: "Homo sapiens".into(),
            description: "d".into(),
            position: "1p1.1".into(),
            go_ids: vec![],
            omim_ids: vec![],
            links: vec![],
        }]);
        FlakyWrapper::new(LocusLinkWrapper::new(db), mode)
    }

    #[test]
    fn schedules() {
        let w = wrapper(FailureMode::EveryNth(2));
        let mut cost = Cost::new();
        let q = "select L from LocusLink.Locus L";
        assert!(w.subquery(q, &mut cost).is_ok());
        assert!(w.subquery(q, &mut cost).is_err());
        assert!(w.subquery(q, &mut cost).is_ok());
        assert_eq!(w.attempts(), 3);

        let down = wrapper(FailureMode::Always);
        assert!(down.subquery(q, &mut cost).is_err());
        let up = wrapper(FailureMode::Never);
        assert!(up.subquery(q, &mut cost).is_ok());
    }
}
