//! Failure and latency injection for resilience testing.
//!
//! Remote annotation sources go down — and before they go down, they get
//! slow. [`FlakyWrapper`] decorates any wrapper and fails subqueries
//! according to a deterministic schedule ([`FailureMode`]) and/or delays
//! them by a deterministic amount ([`DelayMode`]), so the mediator's
//! partial-results behaviour and the federation layer's timeout/retry/
//! breaker paths can be tested and benchmarked without real outages.
//! Injected failures are [`WrapError::Transport`]: the decorator
//! simulates a source that cannot be *reached*, not one that refuses
//! the query.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use annoda_oem::{OemStore, TextDoc};

use crate::cost::Cost;
use crate::descr::SourceDescription;
use crate::wrapper::{SubqueryResult, WrapError, Wrapper};

/// When the decorated source fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Never fails (pass-through).
    Never,
    /// Every request fails — the source is down.
    Always,
    /// Every `n`-th request fails (1-based: `EveryNth(3)` fails requests
    /// 3, 6, 9, …).
    EveryNth(u64),
    /// Every request **panics** instead of returning an error — a
    /// crashing wrapper rather than a cleanly-failing one. The mediator
    /// must contain the panic to the failing source.
    Panic,
}

/// How long the decorated source stalls before answering (or failing).
///
/// Delays are applied *before* the failure schedule, like a real slow
/// link: a request that will ultimately fail still burns its latency
/// first, which is exactly what timeout and hedging logic must survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayMode {
    /// No injected latency (pass-through).
    None,
    /// Every request stalls exactly this long.
    Fixed(Duration),
    /// Request `n` stalls `base + jitter(n)` where `jitter(n)` is drawn
    /// uniformly from `[0, spread]` by a seeded PRNG keyed on
    /// `(seed, n)` — the same seed always yields the same per-attempt
    /// delay sequence, so timeout tests are reproducible.
    Jittered {
        /// Minimum stall applied to every request.
        base: Duration,
        /// Maximum extra stall on top of `base`.
        spread: Duration,
        /// PRNG seed; same seed → same delay sequence.
        seed: u64,
    },
}

/// SplitMix64 step — a tiny, well-mixed deterministic hash from
/// `(seed, attempt)` to a u64, good enough for jitter.
fn mix64(seed: u64, n: u64) -> u64 {
    let mut z = seed
        .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DelayMode {
    /// The stall for 1-based attempt `n`. Deterministic.
    pub fn delay_for(&self, n: u64) -> Duration {
        match *self {
            DelayMode::None => Duration::ZERO,
            DelayMode::Fixed(d) => d,
            DelayMode::Jittered { base, spread, seed } => {
                let span = spread.as_nanos() as u64;
                let jitter = if span == 0 {
                    0
                } else {
                    mix64(seed, n) % (span + 1)
                };
                base + Duration::from_nanos(jitter)
            }
        }
    }
}

/// A decorator that injects subquery failures and latency.
pub struct FlakyWrapper<W> {
    inner: W,
    mode: FailureMode,
    delay: DelayMode,
    calls: AtomicU64,
    failures: AtomicU64,
}

impl<W: Wrapper> FlakyWrapper<W> {
    /// Decorates `inner` with the given failure schedule and no delay.
    pub fn new(inner: W, mode: FailureMode) -> Self {
        FlakyWrapper {
            inner,
            mode,
            delay: DelayMode::None,
            calls: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// Adds a latency schedule (builder style).
    pub fn with_delay(mut self, delay: DelayMode) -> Self {
        self.delay = delay;
        self
    }

    /// Subquery attempts seen so far (including failed ones).
    pub fn attempts(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Attempts that ended in an *injected* failure. Does not count
    /// errors the inner wrapper produced on its own.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// The decorated wrapper.
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: Wrapper> Wrapper for FlakyWrapper<W> {
    fn description(&self) -> &SourceDescription {
        self.inner.description()
    }

    fn oml(&self) -> &OemStore {
        self.inner.oml()
    }

    fn refresh(&mut self) -> usize {
        self.inner.refresh()
    }

    fn text_docs(&self) -> Vec<TextDoc> {
        // Flakiness applies to subqueries, not to harvesting: the
        // search index sees the inner wrapper's documents untouched.
        self.inner.text_docs()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn subquery(&self, lorel: &str, cost: &mut Cost) -> Result<SubqueryResult, WrapError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let stall = self.delay.delay_for(n);
        if !stall.is_zero() {
            std::thread::sleep(stall);
            cost.wall_us += stall.as_micros() as u64;
        }
        let fail = match self.mode {
            FailureMode::Never => false,
            FailureMode::Always => true,
            FailureMode::EveryNth(k) => k > 0 && n.is_multiple_of(k),
            FailureMode::Panic => panic!(
                "{} wrapper crashed (injected panic, attempt {n})",
                self.name()
            ),
        };
        if fail {
            self.failures.fetch_add(1, Ordering::Relaxed);
            return Err(WrapError::Transport(format!(
                "{} is unreachable (injected failure, attempt {n})",
                self.name()
            )));
        }
        self.inner.subquery(lorel, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locuslink::LocusLinkWrapper;
    use annoda_sources::{LocusLinkDb, LocusRecord};

    fn wrapper(mode: FailureMode) -> FlakyWrapper<LocusLinkWrapper> {
        let db = LocusLinkDb::from_records([LocusRecord {
            locus_id: 1,
            symbol: "X1".into(),
            organism: "Homo sapiens".into(),
            description: "d".into(),
            position: "1p1.1".into(),
            go_ids: vec![],
            omim_ids: vec![],
            links: vec![],
        }]);
        FlakyWrapper::new(LocusLinkWrapper::new(db), mode)
    }

    #[test]
    fn schedules() {
        let w = wrapper(FailureMode::EveryNth(2));
        let mut cost = Cost::new();
        let q = "select L from LocusLink.Locus L";
        assert!(w.subquery(q, &mut cost).is_ok());
        assert!(w.subquery(q, &mut cost).is_err());
        assert!(w.subquery(q, &mut cost).is_ok());
        assert_eq!(w.attempts(), 3);
        assert_eq!(w.failures(), 1);

        let down = wrapper(FailureMode::Always);
        assert!(down.subquery(q, &mut cost).is_err());
        assert_eq!(down.failures(), 1);
        let up = wrapper(FailureMode::Never);
        assert!(up.subquery(q, &mut cost).is_ok());
        assert_eq!(up.failures(), 0);
    }

    #[test]
    fn injected_failures_are_transport() {
        let down = wrapper(FailureMode::Always);
        let mut cost = Cost::new();
        let err = down
            .subquery("select L from LocusLink.Locus L", &mut cost)
            .unwrap_err();
        assert!(err.is_retryable());
        assert!(matches!(err, WrapError::Transport(_)));
    }

    #[test]
    fn delays_are_deterministic_and_charged() {
        let jitter = DelayMode::Jittered {
            base: Duration::from_micros(100),
            spread: Duration::from_micros(400),
            seed: 42,
        };
        // Same seed, same attempt → same delay; base is a floor.
        for n in 1..=5 {
            let d = jitter.delay_for(n);
            assert_eq!(d, jitter.delay_for(n));
            assert!(d >= Duration::from_micros(100));
            assert!(d <= Duration::from_micros(500));
        }
        // Jitter actually varies across attempts.
        assert_ne!(jitter.delay_for(1), jitter.delay_for(2));

        assert_eq!(
            DelayMode::Fixed(Duration::from_millis(2)).delay_for(7),
            Duration::from_millis(2)
        );
        assert_eq!(DelayMode::None.delay_for(1), Duration::ZERO);

        // A stalled subquery charges wall-clock to the meter.
        let w = wrapper(FailureMode::Never).with_delay(DelayMode::Fixed(Duration::from_millis(1)));
        let mut cost = Cost::new();
        w.subquery("select L from LocusLink.Locus L", &mut cost)
            .unwrap();
        assert!(cost.wall_us >= 1000);
    }
}
