//! The `Wrapper` trait and shared subquery machinery.

use std::collections::HashMap;
use std::fmt;

use annoda_lorel::{
    eval_rows_explained, parse, project_row, row_passes, FunctionRegistry, LorelError, Projected,
    Row,
};
use annoda_oem::dataguide::DataGuide;
use annoda_oem::graph::import_fragment_memo;
use annoda_oem::{OemStore, Oid, TextDoc, ValueIndex};

use crate::cost::Cost;
use crate::descr::SourceDescription;

/// Errors raised by wrapper operations.
#[derive(Debug, Clone, PartialEq)]
pub enum WrapError {
    /// The subquery failed to parse or evaluate.
    Query(LorelError),
    /// The request needs a capability this source does not offer.
    Unsupported(String),
    /// The source could not be *reached* — a network-layer loss
    /// (connect refused, timeout, torn frame, tripped breaker), not a
    /// refusal by the source itself. Transport failures are the only
    /// retryable kind: the subquery may well succeed on another
    /// attempt, whereas a query error or capability refusal will not.
    Transport(String),
}

impl WrapError {
    /// Whether retrying the same request could plausibly succeed.
    /// Only transport-layer losses qualify; a source that *answered*
    /// with an error will answer the same way again.
    pub fn is_retryable(&self) -> bool {
        matches!(self, WrapError::Transport(_))
    }
}

impl fmt::Display for WrapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WrapError::Query(e) => write!(f, "subquery failed: {e}"),
            WrapError::Unsupported(what) => write!(f, "source capability missing: {what}"),
            WrapError::Transport(what) => write!(f, "source unreachable: {what}"),
        }
    }
}

impl std::error::Error for WrapError {}

impl From<LorelError> for WrapError {
    fn from(e: LorelError) -> Self {
        WrapError::Query(e)
    }
}

/// Join-key indexes a wrapper builds over its OML at export time,
/// keyed by `(entity label, attribute label)`.
#[derive(Debug, Clone, Default)]
pub struct AccessIndexes {
    indexes: HashMap<(String, String), ValueIndex>,
}

impl AccessIndexes {
    /// Builds indexes for the given `(entity, attribute)` pairs over the
    /// OML rooted at `root_name`.
    pub fn build(oml: &OemStore, root_name: &str, specs: &[(&str, &str)]) -> Self {
        let mut indexes = HashMap::new();
        let Some(root) = oml.named(root_name) else {
            return AccessIndexes { indexes };
        };
        for &(entity, attr) in specs {
            let parents: Vec<Oid> = oml.children(root, entity).collect();
            indexes.insert(
                (entity.to_string(), attr.to_string()),
                ValueIndex::build(oml, &parents, attr),
            );
        }
        AccessIndexes { indexes }
    }

    /// The index for `(entity, attr)`, when built.
    pub fn get(&self, entity: &str, attr: &str) -> Option<&ValueIndex> {
        self.indexes.get(&(entity.to_string(), attr.to_string()))
    }

    /// Number of indexes.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// True when no index was built.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }
}

/// The materialised result of one per-source subquery: a fresh OEM store
/// whose `result` root holds one `row` object per passing binding; each
/// row object carries the select items under their labels. Selected
/// complex objects are deep-copied — this models shipping the data from
/// the source to the integration site.
#[derive(Debug, Clone)]
pub struct SubqueryResult {
    /// The shipped fragment.
    pub store: OemStore,
    /// The `result` root inside [`SubqueryResult::store`].
    pub root: Oid,
    /// Number of rows shipped.
    pub rows: usize,
    /// Whether the wrapper's own [`AccessIndexes`] answered the
    /// subquery (the explicit join-key fast path).
    pub used_index: bool,
    /// Whether the Lorel query planner answered the scan path with an
    /// index seek (selection pushdown inside the evaluator). Orthogonal
    /// to [`SubqueryResult::used_index`]: cost accounting is identical
    /// either way, this only reports the access path taken.
    pub planner_index_backed: bool,
}

impl SubqueryResult {
    /// Iterates the row objects under the result root.
    pub fn row_oids(&self) -> Vec<Oid> {
        self.store.children(self.root, "row").collect()
    }

    /// Collects, for each row, the atomic text of the first value under
    /// `label` — a convenience for join-key extraction during fusion.
    pub fn column_text(&self, label: &str) -> Vec<Option<String>> {
        self.row_oids()
            .into_iter()
            .map(|r| self.store.child_value(r, label).map(|v| v.as_text()))
            .collect()
    }
}

/// A wrapper around one native annotation database.
///
/// The wrapper maintains the source's ANNODA-OML local model (an OEM
/// store rooted at the source name), answers Lorel subqueries over it,
/// and publishes the source description the mediator plans with.
///
/// `Send + Sync` lets the mediator fan subqueries out to independent
/// sources concurrently — a federated engine never serialises its
/// round trips.
pub trait Wrapper: std::any::Any + Send + Sync {
    /// The source description (name, capabilities, latency model).
    fn description(&self) -> &SourceDescription;

    /// Downcasting hook: lets holders of `Box<dyn Wrapper>` reach the
    /// concrete wrapper (the freshness experiment mutates native
    /// databases through this).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// The current ANNODA-OML local model. The named root equals
    /// `description().name`.
    fn oml(&self) -> &OemStore;

    /// Re-exports the OML from the native database (picking up updates).
    /// Returns the number of objects in the refreshed model.
    fn refresh(&mut self) -> usize;

    /// The source name (OML root name).
    fn name(&self) -> &str {
        &self.description().name
    }

    /// Join-key indexes over the OML, when the wrapper maintains them
    /// (rebuilt on refresh). The default subquery path uses them to
    /// answer single-equality point lookups without a scan.
    fn indexes(&self) -> Option<&AccessIndexes> {
        None
    }

    /// The free-text documents this source contributes to the ranked
    /// search index (`annoda-search`): one [`TextDoc`] per text-bearing
    /// entity, keyed by the entity's stable accession and tagged with
    /// the gene loci it annotates. Harvested at ingest and after every
    /// [`Wrapper::refresh`] — the index is rebuilt from whatever this
    /// returns. Sources without indexable text (LocusLink's structured
    /// records, remote proxies) keep the empty default and simply do
    /// not participate in ranked search.
    fn text_docs(&self) -> Vec<TextDoc> {
        Vec::new()
    }

    /// Applies one record-level change to the *native* database: an
    /// upsert when `flat` carries the record's native flat-format
    /// serialization, a delete when it is `None`. The exported OML is
    /// NOT re-derived here — callers apply a whole batch and then call
    /// [`Wrapper::refresh`] once, amortising the re-export per batch
    /// instead of per record. Sources without a native flat-record
    /// format keep the refusing default and cannot be streamed.
    fn apply_change(&mut self, key: &str, flat: Option<&str>) -> Result<(), WrapError> {
        let _ = (key, flat);
        Err(WrapError::Unsupported(format!(
            "{} does not support record-level changes",
            self.name()
        )))
    }

    /// Dumps the native database as `(key, flat)` records — the
    /// bootstrap payload a change-feed server ships when journal
    /// compaction has outrun a subscriber. Must round-trip through
    /// [`Wrapper::apply_bootstrap`] to an identical native state.
    fn change_dump(&self) -> Result<Vec<(String, String)>, WrapError> {
        Err(WrapError::Unsupported(format!(
            "{} does not support change dumps",
            self.name()
        )))
    }

    /// Replaces the entire native database with the dumped records
    /// (records absent from the dump are gone afterwards — this is a
    /// replace, not a merge). Like [`Wrapper::apply_change`], the OML
    /// is only re-derived by a following [`Wrapper::refresh`].
    fn apply_bootstrap(&mut self, records: &[(String, String)]) -> Result<(), WrapError> {
        let _ = records;
        Err(WrapError::Unsupported(format!(
            "{} does not support bootstrap replacement",
            self.name()
        )))
    }

    /// The label paths present in the OML (depth ≤ 3), extracted from a
    /// DataGuide — the mediator's source-selection input and the
    /// matcher's schema input.
    fn schema_paths(&self) -> Vec<Vec<String>> {
        let oml = self.oml();
        let Some(root) = oml.named(self.name()) else {
            return Vec::new();
        };
        DataGuide::build(oml, &[root]).paths(3)
    }

    /// Executes a Lorel subquery over the local model, charging the
    /// simulated source cost, and ships the projected rows as a fresh
    /// OEM fragment.
    fn subquery(&self, lorel: &str, cost: &mut Cost) -> Result<SubqueryResult, WrapError> {
        let query = parse(lorel)?;
        let oml = self.oml();

        // Index-backed access path: `select … from <Src>.<Entity> X
        // where X.<Attr> = "<non-numeric literal>"`. Text-keyed lookup
        // is complete for non-numeric string keys (Lorel equality then
        // requires textual equality); candidates are re-verified against
        // the full predicate to remove textual false positives.
        let mut used_index = false;
        let mut planner_index_backed = false;
        let rows: Vec<Row> = 'rows: {
            if let Some(indexes) = self.indexes() {
                if let Some((entity, attr, keys, var)) = key_lookup_shape(&query, self.name()) {
                    if let Some(index) = indexes.get(&entity, &attr) {
                        let functions = FunctionRegistry::default();
                        let mut verified = Vec::new();
                        let mut seen: std::collections::HashSet<Oid> = Default::default();
                        for key in &keys {
                            for &candidate in index.lookup(key) {
                                if !seen.insert(candidate) {
                                    continue;
                                }
                                let row = Row {
                                    bindings: vec![(var.clone(), candidate)],
                                };
                                if row_passes(oml, &query, &row, &functions)? {
                                    verified.push(row);
                                }
                            }
                        }
                        // Preserve the scan path's row order (entity
                        // declaration order) so results are identical.
                        verified.sort_by_key(|r| r.bindings[0].1);
                        used_index = true;
                        break 'rows verified;
                    }
                }
            }
            let (rows, explain) = eval_rows_explained(oml, &query)?;
            planner_index_backed = explain.index_backed();
            rows
        };

        let mut out = OemStore::new();
        let root = out.new_complex();
        out.set_name_overwrite("result", root)
            .expect("fresh root is live");
        let mut memo: HashMap<Oid, Oid> = HashMap::new();
        let mut shipped_records = 0u64;
        for row in &rows {
            let row_obj = out.add_complex_child(root, "row").expect("root is complex");
            for (label, values) in project_row(oml, &query, row)? {
                for v in values {
                    shipped_records += 1;
                    match v {
                        Projected::Obj(oid) => {
                            let copied = if let Some(&c) = memo.get(&oid) {
                                c
                            } else {
                                import_fragment_memo(&mut out, oml, oid, &mut memo)
                            };
                            out.add_edge(row_obj, &label, copied)
                                .expect("row object is complex");
                        }
                        Projected::Val(v) => {
                            out.add_atomic_child(row_obj, &label, v)
                                .expect("row object is complex");
                        }
                    }
                }
            }
        }
        cost.charge(&self.description().latency, shipped_records);
        Ok(SubqueryResult {
            store: out,
            root,
            rows: rows.len(),
            used_index,
            planner_index_backed,
        })
    }
}

/// Matches the index-friendly shape: one range variable over
/// `<source>.<Entity>`, no ordering/grouping, and a `where` clause that
/// is a single equality — or a disjunction of equalities over the SAME
/// attribute (the bind-join form) — with **non-numeric** string
/// literals. Returns `(entity, attr, key texts, var)`.
fn key_lookup_shape(
    query: &annoda_lorel::Query,
    source: &str,
) -> Option<(String, String, Vec<String>, String)> {
    use annoda_oem::PathStep;
    if query.from.len() != 1 || !query.order_by.is_empty() || query.group_by.is_some() {
        return None;
    }
    let from = &query.from[0];
    if from.head != source || from.path.len() != 1 {
        return None;
    }
    let PathStep::Label(entity) = &from.path.steps()[0] else {
        return None;
    };
    let cond = query.where_.as_ref()?;
    let mut keys = Vec::new();
    let attr = collect_equality_keys(cond, &from.var, &mut keys)?;
    Some((entity.clone(), attr, keys, from.var.clone()))
}

/// Walks an `Or`-tree of `<var>.<Attr> = <non-numeric literal>` leaves,
/// collecting the keys; all leaves must use the same attribute. Returns
/// that attribute.
fn collect_equality_keys(
    cond: &annoda_lorel::Cond,
    var: &str,
    keys: &mut Vec<String>,
) -> Option<String> {
    use annoda_lorel::{CompOp, Cond, Expr};
    use annoda_oem::PathStep;
    match cond {
        Cond::Or(l, r) => {
            let a = collect_equality_keys(l, var, keys)?;
            let b = collect_equality_keys(r, var, keys)?;
            (a == b).then_some(a)
        }
        Cond::Cmp(Expr::Path { head, path }, CompOp::Eq, Expr::Literal(lit)) => {
            if head != var || path.len() != 1 {
                return None;
            }
            let PathStep::Label(attr) = &path.steps()[0] else {
                return None;
            };
            // Numeric keys can match differently-spelled values under
            // Lorel coercion; the text index only serves non-numeric
            // keys.
            if lit.as_real().is_some() {
                return None;
            }
            let key = lit.as_text();
            if key.trim() != key {
                return None;
            }
            keys.push(key);
            Some(attr.clone())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LatencyModel;
    use crate::descr::SourceDescription;
    use annoda_oem::AtomicValue;

    /// A minimal in-test wrapper over a hand-built OML.
    struct ToyWrapper {
        descr: SourceDescription,
        oml: OemStore,
    }

    fn toy() -> ToyWrapper {
        let mut oml = OemStore::new();
        let root = oml.new_complex();
        for (sym, id) in [("TP53", 7157i64), ("BRCA1", 672)] {
            let g = oml.add_complex_child(root, "Locus").unwrap();
            oml.add_atomic_child(g, "Symbol", sym).unwrap();
            oml.add_atomic_child(g, "LocusID", AtomicValue::Int(id))
                .unwrap();
        }
        oml.set_name("Toy", root).unwrap();
        ToyWrapper {
            descr: SourceDescription::remote("Toy", "toy data", "http://toy"),
            oml,
        }
    }

    impl Wrapper for ToyWrapper {
        fn description(&self) -> &SourceDescription {
            &self.descr
        }
        fn oml(&self) -> &OemStore {
            &self.oml
        }
        fn refresh(&mut self) -> usize {
            self.oml.len()
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn subquery_ships_rows_and_charges_cost() {
        let w = toy();
        let mut cost = Cost::new();
        let res = w
            .subquery("select L.Symbol from Toy.Locus L", &mut cost)
            .unwrap();
        assert_eq!(res.rows, 2);
        assert_eq!(cost.requests, 1);
        assert_eq!(cost.records, 2);
        assert_eq!(cost.virtual_us, LatencyModel::remote().request_cost(2));
        let col = res.column_text("Symbol");
        assert_eq!(col, vec![Some("TP53".into()), Some("BRCA1".into())]);
    }

    #[test]
    fn subquery_result_is_detached_from_oml() {
        let w = toy();
        let mut cost = Cost::new();
        let res = w.subquery("select L from Toy.Locus L", &mut cost).unwrap();
        // Mutating the shipped copy is possible without touching the OML.
        let mut shipped = res.store;
        let rows = shipped.children(res.root, "row").collect::<Vec<_>>();
        assert_eq!(rows.len(), 2);
        let locus = shipped.child(rows[0], "L").unwrap();
        assert_eq!(
            shipped.child_value(locus, "Symbol"),
            Some(&AtomicValue::Str("TP53".into()))
        );
        shipped
            .add_atomic_child(locus, "Annotation", "extra")
            .unwrap();
        assert_eq!(w.oml().len(), 7, "OML unchanged");
    }

    #[test]
    fn schema_paths_come_from_dataguide() {
        let w = toy();
        let paths = w.schema_paths();
        assert!(paths.contains(&vec!["Locus".to_string(), "Symbol".to_string()]));
        assert!(paths.contains(&vec!["Locus".to_string()]));
    }

    #[test]
    fn bad_subquery_is_a_wrap_error() {
        let w = toy();
        let mut cost = Cost::new();
        assert!(matches!(
            w.subquery("select", &mut cost),
            Err(WrapError::Query(_))
        ));
        assert!(matches!(
            w.subquery("select X from Nowhere.Y X", &mut cost),
            Err(WrapError::Query(_))
        ));
        assert_eq!(cost.requests, 0, "failed queries charge nothing");
    }

    #[test]
    fn index_fast_path_matches_the_scan_path() {
        // The same point lookup through an indexed wrapper and a plain
        // one must produce identical rows; only `used_index` differs.
        struct Indexed {
            descr: SourceDescription,
            oml: OemStore,
            indexes: AccessIndexes,
        }
        impl Wrapper for Indexed {
            fn description(&self) -> &SourceDescription {
                &self.descr
            }
            fn oml(&self) -> &OemStore {
                &self.oml
            }
            fn refresh(&mut self) -> usize {
                self.oml.len()
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
            fn indexes(&self) -> Option<&AccessIndexes> {
                Some(&self.indexes)
            }
        }
        let plain = toy();
        let indexed = Indexed {
            descr: plain.descr.clone(),
            indexes: AccessIndexes::build(&plain.oml, "Toy", &[("Locus", "Symbol")]),
            oml: plain.oml.clone(),
        };
        let q = r#"select L.Symbol, L.LocusID from Toy.Locus L where L.Symbol = "TP53""#;
        let mut c1 = Cost::new();
        let scan = plain.subquery(q, &mut c1).unwrap();
        let mut c2 = Cost::new();
        let fast = indexed.subquery(q, &mut c2).unwrap();
        assert!(!scan.used_index);
        assert!(fast.used_index);
        assert_eq!(scan.rows, fast.rows);
        assert_eq!(scan.column_text("Symbol"), fast.column_text("Symbol"));
        assert_eq!(scan.column_text("LocusID"), fast.column_text("LocusID"));

        // Numeric keys and complex predicates bypass the index.
        let mut c = Cost::new();
        let numeric = indexed
            .subquery("select L from Toy.Locus L where L.LocusID = 7157", &mut c)
            .unwrap();
        assert!(!numeric.used_index);
        assert_eq!(numeric.rows, 1);
        let compound = indexed
            .subquery(
                r#"select L from Toy.Locus L where L.Symbol = "TP53" and L.LocusID = 7157"#,
                &mut c,
            )
            .unwrap();
        assert!(!compound.used_index);
        assert_eq!(compound.rows, 1);
        // Bind-join style OR-chains over one attribute are indexed too.
        let or_chain = indexed
            .subquery(
                r#"select L from Toy.Locus L where (L.Symbol = "TP53" or L.Symbol = "BRCA1" or L.Symbol = "NOPE")"#,
                &mut c,
            )
            .unwrap();
        assert!(or_chain.used_index);
        assert_eq!(or_chain.rows, 2);
        let scan_chain = plain
            .subquery(
                r#"select L from Toy.Locus L where (L.Symbol = "TP53" or L.Symbol = "BRCA1" or L.Symbol = "NOPE")"#,
                &mut c,
            )
            .unwrap();
        assert_eq!(
            scan_chain.column_text("L").len(),
            or_chain.column_text("L").len()
        );
        // Mixed attributes in the chain bypass the index.
        let mixed = indexed
            .subquery(
                r#"select L from Toy.Locus L where (L.Symbol = "TP53" or L.LocusID = "x")"#,
                &mut c,
            )
            .unwrap();
        assert!(!mixed.used_index);

        // Misses return empty, still via the index.
        let miss = indexed
            .subquery(
                r#"select L from Toy.Locus L where L.Symbol = "NOPE""#,
                &mut c,
            )
            .unwrap();
        assert!(miss.used_index);
        assert_eq!(miss.rows, 0);
    }

    #[test]
    fn shared_objects_ship_once() {
        // Two rows selecting the same object: the copy is shared.
        let mut oml = OemStore::new();
        let root = oml.new_complex();
        let shared = oml.add_complex_child(root, "Item").unwrap();
        oml.add_atomic_child(shared, "v", 1i64).unwrap();
        oml.add_edge(root, "Item", shared).unwrap(); // set semantics: still one edge
        let other = oml.add_complex_child(root, "Item").unwrap();
        oml.add_edge(other, "ref", shared).unwrap();
        oml.set_name("Toy", root).unwrap();
        let w = ToyWrapper {
            descr: SourceDescription::remote("Toy", "", ""),
            oml,
        };
        let mut cost = Cost::new();
        let res = w.subquery("select I from Toy.Item I", &mut cost).unwrap();
        assert_eq!(res.rows, 2);
        // `shared` is shipped as part of row 1 and referenced by row 2's
        // copy of `other`; the memo must make both point at one object.
        let rows = res.row_oids();
        let copy_shared = res.store.child(rows[0], "I").unwrap();
        let copy_other = res.store.child(rows[1], "I").unwrap();
        assert_eq!(res.store.child(copy_other, "ref"), Some(copy_shared));
    }
}
