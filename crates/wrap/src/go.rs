//! The Gene Ontology wrapper.

use std::collections::HashMap;

use annoda_oem::{atomic_text, AtomicValue, DocSpec, HarvestText, OemStore, TextDoc};
use annoda_sources::GoDb;

use crate::descr::SourceDescription;
use crate::wrapper::{AccessIndexes, Wrapper};

/// Wraps a [`GoDb`] as the `GO` ANNODA-OML local model.
///
/// The model has two child kinds under the `GO` root:
///
/// * `Term` objects with `Accession`, `TermName`, `Ontology`,
///   `Definition`, `Url` atoms and `IsA` / `PartOf` **object references to
///   the parent terms** (the DAG survives the export);
/// * `Annotation` objects with `Gene`, `Accession`, `EvidenceCode` atoms.
///
/// Note the vocabulary differs from LocusLink's on purpose (`Accession`
/// vs `GOID`, `Gene` vs `Symbol`): MDSM has to discover those
/// correspondences.
#[derive(Debug, Clone)]
pub struct GoWrapper {
    descr: SourceDescription,
    indexes: AccessIndexes,
    db: GoDb,
    oml: OemStore,
}

impl GoWrapper {
    /// Builds the wrapper and exports the initial OML.
    pub fn new(db: GoDb) -> Self {
        let descr = SourceDescription::remote(
            "GO",
            "gene ontology terms and gene annotations",
            "http://www.geneontology.org",
        );
        let oml = export(&db);
        let indexes = AccessIndexes::build(
            &oml,
            "GO",
            &[
                ("Annotation", "Gene"),
                ("Annotation", "Accession"),
                ("Term", "Accession"),
                ("Term", "Ontology"),
            ],
        );
        GoWrapper {
            descr,
            indexes,
            db,
            oml,
        }
    }

    /// Read access to the native database.
    pub fn db(&self) -> &GoDb {
        &self.db
    }

    /// Mutable access to the native database.
    pub fn db_mut(&mut self) -> &mut GoDb {
        &mut self.db
    }
}

impl Wrapper for GoWrapper {
    fn description(&self) -> &SourceDescription {
        &self.descr
    }

    fn oml(&self) -> &OemStore {
        &self.oml
    }

    fn refresh(&mut self) -> usize {
        self.oml = export(&self.db);
        self.indexes = AccessIndexes::build(
            &self.oml,
            "GO",
            &[
                ("Annotation", "Gene"),
                ("Annotation", "Accession"),
                ("Term", "Accession"),
                ("Term", "Ontology"),
            ],
        );
        self.oml.len()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn indexes(&self) -> Option<&AccessIndexes> {
        Some(&self.indexes)
    }

    /// One document per GO term: accession keys the term name +
    /// definition. Loci need the annotation join — a term's documents
    /// rank the genes annotated *to* it, so gene symbols come from the
    /// `Annotation` children grouped by term accession.
    fn text_docs(&self) -> Vec<TextDoc> {
        let mut docs = self.oml.harvest_docs(
            "GO",
            &DocSpec {
                entity: "Term",
                key: "Accession",
                text: &["TermName", "Definition"],
                loci: &[],
            },
        );
        let Some(root) = self.oml.named("GO") else {
            return docs;
        };
        let mut genes_by_term: HashMap<String, Vec<String>> = HashMap::new();
        for ann in self.oml.children(root, "Annotation") {
            let gene = self.oml.child_value(ann, "Gene").and_then(atomic_text);
            let term = self.oml.child_value(ann, "Accession").and_then(atomic_text);
            if let (Some(gene), Some(term)) = (gene, term) {
                genes_by_term.entry(term).or_default().push(gene);
            }
        }
        for doc in &mut docs {
            if let Some(mut genes) = genes_by_term.remove(&doc.key) {
                genes.sort();
                genes.dedup();
                doc.loci = genes;
            }
        }
        docs
    }
}

fn export(db: &GoDb) -> OemStore {
    let mut oml = OemStore::new();
    let root = oml.new_complex();
    // First pass: create all term objects so DAG edges can be wired.
    let mut term_oid = HashMap::new();
    for term in db.terms() {
        let t = oml.add_complex_child(root, "Term").expect("root complex");
        term_oid.insert(term.id.clone(), t);
        oml.add_atomic_child(t, "Accession", term.id.as_str())
            .expect("term complex");
        oml.add_atomic_child(t, "TermName", term.name.as_str())
            .expect("term complex");
        oml.add_atomic_child(t, "Ontology", term.namespace.as_str())
            .expect("term complex");
        oml.add_atomic_child(t, "Definition", term.definition.as_str())
            .expect("term complex");
        oml.add_atomic_child(t, "Url", AtomicValue::Url(term.url()))
            .expect("term complex");
    }
    // Second pass: DAG references.
    for term in db.terms() {
        let t = term_oid[&term.id];
        for p in &term.is_a {
            if let Some(&parent) = term_oid.get(p) {
                oml.add_edge(t, "IsA", parent).expect("term complex");
            }
        }
        for p in &term.part_of {
            if let Some(&parent) = term_oid.get(p) {
                oml.add_edge(t, "PartOf", parent).expect("term complex");
            }
        }
    }
    for ann in db.annotations() {
        let a = oml
            .add_complex_child(root, "Annotation")
            .expect("root complex");
        oml.add_atomic_child(a, "Gene", ann.gene_symbol.as_str())
            .expect("annotation complex");
        oml.add_atomic_child(a, "Accession", ann.term_id.as_str())
            .expect("annotation complex");
        oml.add_atomic_child(a, "EvidenceCode", ann.evidence.as_str())
            .expect("annotation complex");
        // Object reference to the annotated term when it is in the DAG.
        if let Some(&t) = term_oid.get(&ann.term_id) {
            oml.add_edge(a, "Term", t).expect("annotation complex");
        }
    }
    oml.set_name("GO", root).expect("fresh store");
    oml
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use annoda_sources::{EvidenceCode, GoAnnotation, GoNamespace, GoTerm};

    fn small_db() -> GoDb {
        GoDb::from_parts(
            [
                GoTerm {
                    id: "GO:0003674".into(),
                    name: "molecular_function".into(),
                    namespace: GoNamespace::MolecularFunction,
                    definition: "root".into(),
                    is_a: vec![],
                    part_of: vec![],
                },
                GoTerm {
                    id: "GO:0003700".into(),
                    name: "transcription factor".into(),
                    namespace: GoNamespace::MolecularFunction,
                    definition: "TF".into(),
                    is_a: vec!["GO:0003674".into()],
                    part_of: vec![],
                },
            ],
            [GoAnnotation {
                gene_symbol: "TP53".into(),
                term_id: "GO:0003700".into(),
                evidence: EvidenceCode::Ida,
            }],
        )
    }

    #[test]
    fn export_preserves_dag_as_object_references() {
        let w = GoWrapper::new(small_db());
        let oml = w.oml();
        let root = oml.named("GO").unwrap();
        let terms: Vec<_> = oml.children(root, "Term").collect();
        assert_eq!(terms.len(), 2);
        let tf = terms
            .iter()
            .copied()
            .find(|&t| {
                oml.child_value(t, "Accession") == Some(&AtomicValue::Str("GO:0003700".into()))
            })
            .unwrap();
        let parent = oml.child(tf, "IsA").unwrap();
        assert_eq!(
            oml.child_value(parent, "Accession"),
            Some(&AtomicValue::Str("GO:0003674".into()))
        );
    }

    #[test]
    fn annotations_reference_their_terms() {
        let w = GoWrapper::new(small_db());
        let oml = w.oml();
        let root = oml.named("GO").unwrap();
        let ann = oml.child(root, "Annotation").unwrap();
        assert_eq!(
            oml.child_value(ann, "Gene"),
            Some(&AtomicValue::Str("TP53".into()))
        );
        let term = oml.child(ann, "Term").unwrap();
        assert_eq!(
            oml.child_value(term, "TermName"),
            Some(&AtomicValue::Str("transcription factor".into()))
        );
    }

    #[test]
    fn subquery_can_join_annotation_to_term() {
        let w = GoWrapper::new(small_db());
        let mut cost = Cost::new();
        let res = w
            .subquery(
                r#"select A.Gene, A.Term.TermName from GO.Annotation A where A.EvidenceCode = "IDA""#,
                &mut cost,
            )
            .unwrap();
        assert_eq!(res.rows, 1);
        assert_eq!(res.column_text("Gene"), vec![Some("TP53".into())]);
        assert_eq!(
            res.column_text("TermName"),
            vec![Some("transcription factor".into())]
        );
    }

    #[test]
    fn refresh_reexports() {
        let mut w = GoWrapper::new(small_db());
        w.db_mut().insert_annotation(GoAnnotation {
            gene_symbol: "EGFR".into(),
            term_id: "GO:0003674".into(),
            evidence: EvidenceCode::Iea,
        });
        let mut cost = Cost::new();
        let before = w
            .subquery("select A from GO.Annotation A", &mut cost)
            .unwrap();
        assert_eq!(before.rows, 1);
        w.refresh();
        let after = w
            .subquery("select A from GO.Annotation A", &mut cost)
            .unwrap();
        assert_eq!(after.rows, 2);
    }

    #[test]
    fn text_docs_join_annotated_genes_onto_terms() {
        let w = GoWrapper::new(small_db());
        let docs = w.text_docs();
        assert_eq!(docs.len(), 2, "one doc per term");
        let tf = docs.iter().find(|d| d.key == "GO:0003700").unwrap();
        assert_eq!(tf.text, "transcription factor TF");
        assert_eq!(tf.loci, vec!["TP53".to_string()]);
        // The unannotated root term indexes with no loci.
        let mf = docs.iter().find(|d| d.key == "GO:0003674").unwrap();
        assert!(mf.loci.is_empty());
    }

    #[test]
    fn text_docs_track_refresh() {
        let mut w = GoWrapper::new(small_db());
        w.db_mut().insert_annotation(GoAnnotation {
            gene_symbol: "EGFR".into(),
            term_id: "GO:0003674".into(),
            evidence: EvidenceCode::Iea,
        });
        w.refresh();
        let docs = w.text_docs();
        let mf = docs.iter().find(|d| d.key == "GO:0003674").unwrap();
        assert_eq!(mf.loci, vec!["EGFR".to_string()]);
    }
}
