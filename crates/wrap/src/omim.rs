//! The OMIM wrapper.

use annoda_oem::{AtomicValue, DocSpec, HarvestText, OemStore, TextDoc};
use annoda_sources::{OmimDb, OmimEntry, OmimType};

use crate::descr::SourceDescription;
use crate::wrapper::{AccessIndexes, WrapError, Wrapper};

/// A single entry's native flat serialization — the change-feed payload
/// for an upserted OMIM entry.
pub fn omim_flat(entry: &OmimEntry) -> String {
    OmimDb::from_entries([entry.clone()]).to_flat()
}

/// Wraps an [`OmimDb`] as the `OMIM` ANNODA-OML local model.
///
/// Each catalogue entry becomes an `Entry` object with `MimNumber`
/// (Integer), `Title`, `EntryType`, zero or more `GeneSymbol` atoms, an
/// optional `Inheritance` atom, `Text`, and a `Url` web-link.
#[derive(Debug, Clone)]
pub struct OmimWrapper {
    descr: SourceDescription,
    indexes: AccessIndexes,
    db: OmimDb,
    oml: OemStore,
}

impl OmimWrapper {
    /// Builds the wrapper and exports the initial OML.
    pub fn new(db: OmimDb) -> Self {
        let descr = SourceDescription::remote(
            "OMIM",
            "mendelian disorders and gene-disease associations",
            "http://www.ncbi.nlm.nih.gov/omim",
        );
        let oml = export(&db);
        let indexes = AccessIndexes::build(
            &oml,
            "OMIM",
            &[
                ("Entry", "GeneSymbol"),
                ("Entry", "Title"),
                ("Entry", "EntryType"),
            ],
        );
        OmimWrapper {
            descr,
            indexes,
            db,
            oml,
        }
    }

    /// Read access to the native database.
    pub fn db(&self) -> &OmimDb {
        &self.db
    }

    /// Mutable access to the native database.
    pub fn db_mut(&mut self) -> &mut OmimDb {
        &mut self.db
    }
}

impl Wrapper for OmimWrapper {
    fn description(&self) -> &SourceDescription {
        &self.descr
    }

    fn oml(&self) -> &OemStore {
        &self.oml
    }

    fn refresh(&mut self) -> usize {
        self.oml = export(&self.db);
        self.indexes = AccessIndexes::build(
            &self.oml,
            "OMIM",
            &[
                ("Entry", "GeneSymbol"),
                ("Entry", "Title"),
                ("Entry", "EntryType"),
            ],
        );
        self.oml.len()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn indexes(&self) -> Option<&AccessIndexes> {
        Some(&self.indexes)
    }

    fn apply_change(&mut self, key: &str, flat: Option<&str>) -> Result<(), WrapError> {
        match flat {
            Some(flat) => {
                let parsed = OmimDb::from_flat(flat).map_err(|e| {
                    WrapError::Unsupported(format!("bad OMIM change for `{key}`: {e}"))
                })?;
                let mut entries: Vec<OmimEntry> = parsed.scan().cloned().collect();
                let entry = match (entries.pop(), entries.is_empty()) {
                    (Some(entry), true) => entry,
                    _ => {
                        return Err(WrapError::Unsupported(format!(
                            "OMIM change for `{key}` must carry exactly one entry"
                        )))
                    }
                };
                if entry.mim_number.to_string() != key {
                    return Err(WrapError::Unsupported(format!(
                        "OMIM change key `{key}` disagrees with MIM number {}",
                        entry.mim_number
                    )));
                }
                self.db.upsert(entry);
            }
            None => {
                let mim: u32 = key
                    .parse()
                    .map_err(|_| WrapError::Unsupported(format!("bad OMIM delete key `{key}`")))?;
                self.db.remove(mim);
            }
        }
        Ok(())
    }

    fn change_dump(&self) -> Result<Vec<(String, String)>, WrapError> {
        Ok(self
            .db
            .scan()
            .map(|entry| (entry.mim_number.to_string(), omim_flat(entry)))
            .collect())
    }

    fn apply_bootstrap(&mut self, records: &[(String, String)]) -> Result<(), WrapError> {
        let joined: String = records.iter().map(|(_, flat)| flat.as_str()).collect();
        self.db = OmimDb::from_flat(&joined)
            .map_err(|e| WrapError::Unsupported(format!("bad OMIM bootstrap: {e}")))?;
        Ok(())
    }

    /// One document per entry: MIM number keys the title + disease
    /// text; the entry's gene symbols are the ranked loci.
    fn text_docs(&self) -> Vec<TextDoc> {
        self.oml.harvest_docs(
            "OMIM",
            &DocSpec {
                entity: "Entry",
                key: "MimNumber",
                text: &["Title", "Text"],
                loci: &["GeneSymbol"],
            },
        )
    }
}

fn entry_type_text(t: OmimType) -> &'static str {
    match t {
        OmimType::Gene => "gene",
        OmimType::Phenotype => "phenotype",
        OmimType::GenePhenotype => "gene/phenotype",
    }
}

fn export(db: &OmimDb) -> OemStore {
    let mut oml = OemStore::new();
    let root = oml.new_complex();
    for e in db.scan() {
        let entry = oml.add_complex_child(root, "Entry").expect("root complex");
        oml.add_atomic_child(entry, "MimNumber", AtomicValue::Int(e.mim_number as i64))
            .expect("entry complex");
        oml.add_atomic_child(entry, "Title", e.title.as_str())
            .expect("entry complex");
        oml.add_atomic_child(entry, "EntryType", entry_type_text(e.entry_type))
            .expect("entry complex");
        for g in &e.gene_symbols {
            oml.add_atomic_child(entry, "GeneSymbol", g.as_str())
                .expect("entry complex");
        }
        if let Some(inh) = e.inheritance {
            oml.add_atomic_child(entry, "Inheritance", inh.as_str())
                .expect("entry complex");
        }
        if !e.text.is_empty() {
            oml.add_atomic_child(entry, "Text", e.text.as_str())
                .expect("entry complex");
        }
        oml.add_atomic_child(entry, "Url", AtomicValue::Url(e.url()))
            .expect("entry complex");
    }
    oml.set_name("OMIM", root).expect("fresh store");
    oml
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use annoda_sources::{Inheritance, OmimEntry};

    fn small_db() -> OmimDb {
        OmimDb::from_entries([
            OmimEntry {
                mim_number: 151623,
                title: "LI-FRAUMENI SYNDROME 1".into(),
                entry_type: OmimType::Phenotype,
                gene_symbols: vec!["TP53".into(), "CHEK2".into()],
                inheritance: Some(Inheritance::AutosomalDominant),
                text: "Cancer predisposition.".into(),
            },
            OmimEntry {
                mim_number: 191170,
                title: "TUMOR PROTEIN p53".into(),
                entry_type: OmimType::Gene,
                gene_symbols: vec!["TP53".into()],
                inheritance: None,
                text: String::new(),
            },
        ])
    }

    #[test]
    fn export_shape() {
        let w = OmimWrapper::new(small_db());
        let oml = w.oml();
        let root = oml.named("OMIM").unwrap();
        let entries: Vec<_> = oml.children(root, "Entry").collect();
        assert_eq!(entries.len(), 2);
        let lfs = entries[0];
        assert_eq!(
            oml.child_value(lfs, "MimNumber"),
            Some(&AtomicValue::Int(151623))
        );
        assert_eq!(oml.children(lfs, "GeneSymbol").count(), 2);
        assert_eq!(
            oml.child_value(lfs, "Inheritance"),
            Some(&AtomicValue::Str("Autosomal dominant".into()))
        );
        // Gene entries have no Inheritance edge at all.
        let gene = entries[1];
        assert!(oml.child(gene, "Inheritance").is_none());
        assert!(oml.child(gene, "Text").is_none(), "empty text omitted");
    }

    #[test]
    fn subquery_filters_by_entry_type() {
        let w = OmimWrapper::new(small_db());
        let mut cost = Cost::new();
        let res = w
            .subquery(
                r#"select E.Title, E.GeneSymbol from OMIM.Entry E where E.EntryType = "phenotype""#,
                &mut cost,
            )
            .unwrap();
        assert_eq!(res.rows, 1);
        // Multi-valued GeneSymbol ships every instance.
        let rows = res.row_oids();
        assert_eq!(res.store.children(rows[0], "GeneSymbol").count(), 2);
    }

    #[test]
    fn subquery_by_gene_symbol() {
        let w = OmimWrapper::new(small_db());
        let mut cost = Cost::new();
        let res = w
            .subquery(
                r#"select E.MimNumber from OMIM.Entry E where E.GeneSymbol = "TP53""#,
                &mut cost,
            )
            .unwrap();
        assert_eq!(res.rows, 2, "TP53 appears in both entries");
    }

    #[test]
    fn text_docs_carry_title_text_and_symbols() {
        let w = OmimWrapper::new(small_db());
        let docs = w.text_docs();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].key, "151623");
        assert_eq!(
            docs[0].text,
            "LI-FRAUMENI SYNDROME 1 Cancer predisposition."
        );
        assert_eq!(docs[0].loci, vec!["CHEK2".to_string(), "TP53".to_string()]);
        // The gene entry has no free text beyond its title.
        assert_eq!(docs[1].text, "TUMOR PROTEIN p53");
    }
}
