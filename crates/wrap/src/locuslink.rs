//! The LocusLink wrapper — produces the OML of Figures 2–3.

use annoda_oem::{AtomicValue, OemStore};
use annoda_sources::{LocusLinkDb, LocusRecord};

use crate::descr::SourceDescription;
use crate::wrapper::{AccessIndexes, WrapError, Wrapper};

/// A single record's native flat serialization — the change-feed
/// payload for an upserted locus.
pub fn locus_flat(rec: &LocusRecord) -> String {
    LocusLinkDb::from_records([rec.clone()]).to_flat()
}

/// Wraps a [`LocusLinkDb`] as the `LocusLink` ANNODA-OML local model.
///
/// The model follows Figure 2: a `LocusLink` root with one `Locus` child
/// per record, each carrying `LocusID` (Integer), `Organism`, `Symbol`,
/// `Description`, `Position` (String) and a complex `Links` object whose
/// children are `Url` atoms labelled by the target database. Machine-
/// readable cross-references (`GOID`, `MIM`) mirror the `GO:`/`OMIM:`
/// fields of the native flat format.
#[derive(Debug, Clone)]
pub struct LocusLinkWrapper {
    descr: SourceDescription,
    indexes: AccessIndexes,
    db: LocusLinkDb,
    oml: OemStore,
}

impl LocusLinkWrapper {
    /// Builds the wrapper and exports the initial OML.
    pub fn new(db: LocusLinkDb) -> Self {
        let descr = SourceDescription::remote(
            "LocusLink",
            "curated gene loci with official nomenclature",
            "http://www.ncbi.nlm.nih.gov/LocusLink",
        );
        let oml = export(&db);
        let indexes = AccessIndexes::build(
            &oml,
            "LocusLink",
            &[
                ("Locus", "Symbol"),
                ("Locus", "Organism"),
                ("Locus", "GOID"),
                ("Locus", "Position"),
            ],
        );
        LocusLinkWrapper {
            descr,
            indexes,
            db,
            oml,
        }
    }

    /// Read access to the native database.
    pub fn db(&self) -> &LocusLinkDb {
        &self.db
    }

    /// Mutable access to the native database (updates become visible in
    /// the OML after [`Wrapper::refresh`]).
    pub fn db_mut(&mut self) -> &mut LocusLinkDb {
        &mut self.db
    }
}

impl Wrapper for LocusLinkWrapper {
    fn description(&self) -> &SourceDescription {
        &self.descr
    }

    fn oml(&self) -> &OemStore {
        &self.oml
    }

    fn refresh(&mut self) -> usize {
        self.oml = export(&self.db);
        self.indexes = AccessIndexes::build(
            &self.oml,
            "LocusLink",
            &[
                ("Locus", "Symbol"),
                ("Locus", "Organism"),
                ("Locus", "GOID"),
                ("Locus", "Position"),
            ],
        );
        self.oml.len()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn indexes(&self) -> Option<&AccessIndexes> {
        Some(&self.indexes)
    }

    fn apply_change(&mut self, key: &str, flat: Option<&str>) -> Result<(), WrapError> {
        match flat {
            Some(flat) => {
                let parsed = LocusLinkDb::from_flat(flat).map_err(|e| {
                    WrapError::Unsupported(format!("bad LocusLink change for `{key}`: {e}"))
                })?;
                let mut records: Vec<LocusRecord> = parsed.scan().cloned().collect();
                let rec = match (records.pop(), records.is_empty()) {
                    (Some(rec), true) => rec,
                    _ => {
                        return Err(WrapError::Unsupported(format!(
                            "LocusLink change for `{key}` must carry exactly one record"
                        )))
                    }
                };
                if rec.locus_id.to_string() != key {
                    return Err(WrapError::Unsupported(format!(
                        "LocusLink change key `{key}` disagrees with record id {}",
                        rec.locus_id
                    )));
                }
                self.db.upsert(rec);
            }
            None => {
                let id: u32 = key.parse().map_err(|_| {
                    WrapError::Unsupported(format!("bad LocusLink delete key `{key}`"))
                })?;
                self.db.remove(id);
            }
        }
        Ok(())
    }

    fn change_dump(&self) -> Result<Vec<(String, String)>, WrapError> {
        Ok(self
            .db
            .scan()
            .map(|rec| (rec.locus_id.to_string(), locus_flat(rec)))
            .collect())
    }

    fn apply_bootstrap(&mut self, records: &[(String, String)]) -> Result<(), WrapError> {
        let joined: String = records.iter().map(|(_, flat)| flat.as_str()).collect();
        self.db = LocusLinkDb::from_flat(&joined)
            .map_err(|e| WrapError::Unsupported(format!("bad LocusLink bootstrap: {e}")))?;
        Ok(())
    }
}

fn export(db: &LocusLinkDb) -> OemStore {
    let mut oml = OemStore::new();
    let root = oml.new_complex();
    for rec in db.scan() {
        let locus = oml.add_complex_child(root, "Locus").expect("root complex");
        oml.add_atomic_child(locus, "LocusID", AtomicValue::Int(rec.locus_id as i64))
            .expect("locus complex");
        oml.add_atomic_child(locus, "Organism", rec.organism.as_str())
            .expect("locus complex");
        oml.add_atomic_child(locus, "Symbol", rec.symbol.as_str())
            .expect("locus complex");
        oml.add_atomic_child(locus, "Description", rec.description.as_str())
            .expect("locus complex");
        oml.add_atomic_child(locus, "Position", rec.position.as_str())
            .expect("locus complex");
        oml.add_atomic_child(locus, "Url", AtomicValue::Url(rec.url()))
            .expect("locus complex");
        let links = oml
            .add_complex_child(locus, "Links")
            .expect("locus complex");
        oml.add_atomic_child(links, "LocusLink", AtomicValue::Url(rec.url()))
            .expect("links complex");
        for go_id in &rec.go_ids {
            oml.add_atomic_child(
                links,
                "GO",
                AtomicValue::Url(format!("http://www.geneontology.org/term/{go_id}")),
            )
            .expect("links complex");
            oml.add_atomic_child(locus, "GOID", go_id.as_str())
                .expect("locus complex");
        }
        for &mim in &rec.omim_ids {
            oml.add_atomic_child(
                links,
                "OMIM",
                AtomicValue::Url(format!("http://www.ncbi.nlm.nih.gov/omim/{mim}")),
            )
            .expect("links complex");
            oml.add_atomic_child(locus, "MIM", AtomicValue::Int(mim as i64))
                .expect("locus complex");
        }
        for (dbname, url) in &rec.links {
            oml.add_atomic_child(links, dbname, AtomicValue::Url(url.clone()))
                .expect("links complex");
        }
    }
    oml.set_name("LocusLink", root).expect("fresh store");
    oml
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use annoda_sources::LocusRecord;

    fn tp53_db() -> LocusLinkDb {
        LocusLinkDb::from_records([LocusRecord {
            locus_id: 7157,
            symbol: "TP53".into(),
            organism: "Homo sapiens".into(),
            description: "tumor protein p53".into(),
            position: "17p13.1".into(),
            go_ids: vec!["GO:0003700".into()],
            omim_ids: vec![191170],
            links: vec![("PubMed".into(), "http://pubmed/TP53".into())],
        }])
    }

    #[test]
    fn oml_matches_figure2_shape() {
        let w = LocusLinkWrapper::new(tp53_db());
        let oml = w.oml();
        let root = oml.named("LocusLink").unwrap();
        let locus = oml.child(root, "Locus").unwrap();
        assert_eq!(
            oml.child_value(locus, "LocusID"),
            Some(&AtomicValue::Int(7157))
        );
        assert_eq!(
            oml.child_value(locus, "Symbol"),
            Some(&AtomicValue::Str("TP53".into()))
        );
        assert_eq!(
            oml.child_value(locus, "Position"),
            Some(&AtomicValue::Str("17p13.1".into()))
        );
        let links = oml.child(locus, "Links").unwrap();
        let labels: Vec<&str> = oml
            .edges_of(links)
            .iter()
            .map(|e| oml.label_name(e.label))
            .collect();
        assert!(labels.contains(&"GO"));
        assert!(labels.contains(&"OMIM"));
        assert!(labels.contains(&"PubMed"));
        // All link targets are Url-typed atoms.
        for e in oml.edges_of(links) {
            assert!(matches!(oml.value_of(e.target), Some(AtomicValue::Url(_))));
        }
    }

    #[test]
    fn refresh_picks_up_native_updates() {
        let mut w = LocusLinkWrapper::new(tp53_db());
        w.db_mut().by_id_mut(7157).unwrap().description = "updated".into();
        // Stale until refresh.
        let root = w.oml().named("LocusLink").unwrap();
        let locus = w.oml().child(root, "Locus").unwrap();
        assert_eq!(
            w.oml().child_value(locus, "Description"),
            Some(&AtomicValue::Str("tumor protein p53".into()))
        );
        w.refresh();
        let root = w.oml().named("LocusLink").unwrap();
        let locus = w.oml().child(root, "Locus").unwrap();
        assert_eq!(
            w.oml().child_value(locus, "Description"),
            Some(&AtomicValue::Str("updated".into()))
        );
    }

    #[test]
    fn subqueries_run_against_the_oml() {
        let w = LocusLinkWrapper::new(tp53_db());
        let mut cost = Cost::new();
        let res = w
            .subquery(
                r#"select L.Symbol from LocusLink.Locus L where L.GOID = "GO:0003700""#,
                &mut cost,
            )
            .unwrap();
        assert_eq!(res.rows, 1);
        assert_eq!(res.column_text("Symbol"), vec![Some("TP53".into())]);
    }

    #[test]
    fn schema_paths_expose_the_vocabulary() {
        let w = LocusLinkWrapper::new(tp53_db());
        let paths = w.schema_paths();
        assert!(paths.contains(&vec!["Locus".into(), "Symbol".into()]));
        assert!(paths.contains(&vec!["Locus".into(), "Links".into(), "GO".into()]));
    }
}
