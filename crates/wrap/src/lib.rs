//! # annoda-wrap — wrappers from native sources to ANNODA-OML
//!
//! A *wrapper* turns one native annotation database into an ANNODA-OML
//! local model: an OEM store whose named root is the source name and whose
//! labelled structure mirrors the source's own vocabulary. Figure 1 of the
//! paper places one wrapper under the mediator per participating source
//! (LocusLink, GO, OMIM).
//!
//! Each wrapper also publishes a [`SourceDescription`] — the "annotation
//! database description" box of Figure 1 — carrying capabilities and a
//! simulated latency model, and answers Lorel subqueries over its local
//! model, accounting the simulated cost in a [`Cost`] meter.
//!
//! Deliberately, the three OMLs use *different label vocabularies*
//! (`Symbol` vs `Gene` vs `GeneSymbol`, `LocusID` vs `Accession` vs
//! `MimNumber`): bridging that heterogeneity is the mapping module's job.

pub mod cost;
pub mod custom;
pub mod descr;
pub mod flaky;
pub mod go;
pub mod locuslink;
pub mod mutate;
pub mod omim;
pub mod pubmed;
pub mod wrapper;

pub use cost::{Cost, LatencyModel};
pub use custom::CustomWrapper;
pub use descr::{Capabilities, SourceDescription};
pub use flaky::{DelayMode, FailureMode, FlakyWrapper};
pub use go::GoWrapper;
pub use locuslink::{locus_flat, LocusLinkWrapper};
pub use mutate::scripted_mutation;
pub use omim::{omim_flat, OmimWrapper};
pub use pubmed::PubmedWrapper;
pub use wrapper::{AccessIndexes, SubqueryResult, WrapError, Wrapper};
