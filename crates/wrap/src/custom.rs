//! A wrapper over a caller-supplied OML — the plug-in path for sources
//! that do not ship with the tool (user labs, new public databases).
//!
//! The B2 experiment registers many of these to measure how ANNODA
//! scales with the number of participating sources, and the
//! `plug_new_source` example uses one to demonstrate the paper's
//! "plugged in as it comes into existence" requirement.

use annoda_oem::OemStore;

use crate::descr::SourceDescription;
use crate::wrapper::Wrapper;

/// A source wrapped from an already-built ANNODA-OML store.
#[derive(Debug, Clone)]
pub struct CustomWrapper {
    descr: SourceDescription,
    oml: OemStore,
}

impl CustomWrapper {
    /// Wraps `oml`, whose named root must equal `descr.name`.
    ///
    /// # Panics
    /// Panics when the root name is missing — a custom OML without its
    /// root cannot be addressed by subqueries.
    pub fn new(descr: SourceDescription, oml: OemStore) -> Self {
        assert!(
            oml.named(&descr.name).is_some(),
            "OML must have a root named `{}`",
            descr.name
        );
        CustomWrapper { descr, oml }
    }

    /// Replaces the OML (the custom source's own refresh path).
    pub fn set_oml(&mut self, oml: OemStore) {
        assert!(oml.named(&self.descr.name).is_some());
        self.oml = oml;
    }
}

impl Wrapper for CustomWrapper {
    fn description(&self) -> &SourceDescription {
        &self.descr
    }

    fn oml(&self) -> &OemStore {
        &self.oml
    }

    fn refresh(&mut self) -> usize {
        // A custom OML has no native database behind it; the holder
        // refreshes it via [`CustomWrapper::set_oml`].
        self.oml.len()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;

    fn user_oml(name: &str) -> OemStore {
        let mut oml = OemStore::new();
        let root = oml.new_complex();
        let e = oml.add_complex_child(root, "Finding").unwrap();
        oml.add_atomic_child(e, "GeneSymbol", "TP53").unwrap();
        oml.add_atomic_child(e, "Note", "overexpressed in sample 7")
            .unwrap();
        oml.set_name(name, root).unwrap();
        oml
    }

    #[test]
    fn wraps_and_answers_subqueries() {
        let w = CustomWrapper::new(
            SourceDescription::remote("LabData", "in-house findings", "http://lab"),
            user_oml("LabData"),
        );
        let mut cost = Cost::new();
        let res = w
            .subquery("select F.GeneSymbol from LabData.Finding F", &mut cost)
            .unwrap();
        assert_eq!(res.rows, 1);
        assert_eq!(w.name(), "LabData");
    }

    #[test]
    #[should_panic(expected = "root named")]
    fn rejects_mismatched_root() {
        CustomWrapper::new(
            SourceDescription::remote("LabData", "", ""),
            user_oml("OtherName"),
        );
    }

    #[test]
    fn set_oml_replaces_data() {
        let mut w = CustomWrapper::new(
            SourceDescription::remote("LabData", "", ""),
            user_oml("LabData"),
        );
        let mut oml = user_oml("LabData");
        let root = oml.named("LabData").unwrap();
        let e = oml.add_complex_child(root, "Finding").unwrap();
        oml.add_atomic_child(e, "GeneSymbol", "EGFR").unwrap();
        w.set_oml(oml);
        let mut cost = Cost::new();
        let res = w
            .subquery("select F from LabData.Finding F", &mut cost)
            .unwrap();
        assert_eq!(res.rows, 2);
    }
}
