//! Source descriptions — the "annotation database description" of Fig. 1.

use crate::cost::LatencyModel;

/// What a source can answer natively. The mediator consults capabilities
/// when deciding how much of a decomposed query to push down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Point lookup by primary identifier (LocusID, GO accession, MIM).
    pub id_lookup: bool,
    /// Lookup by secondary key (gene symbol).
    pub key_lookup: bool,
    /// Full scan of the source.
    pub full_scan: bool,
    /// The source can evaluate simple selection predicates itself, so the
    /// mediator may push filters down instead of shipping everything.
    pub predicate_pushdown: bool,
}

impl Capabilities {
    /// Everything supported — a cooperative source.
    pub fn full() -> Self {
        Capabilities {
            id_lookup: true,
            key_lookup: true,
            full_scan: true,
            predicate_pushdown: true,
        }
    }

    /// Scan-only — a dump file behind a URL.
    pub fn scan_only() -> Self {
        Capabilities {
            id_lookup: false,
            key_lookup: false,
            full_scan: true,
            predicate_pushdown: false,
        }
    }
}

/// Metadata the mediator holds about one wrapped source.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceDescription {
    /// Unique source name; doubles as the OML root name (`LocusLink`).
    pub name: String,
    /// Human-readable content description.
    pub content: String,
    /// Base URL used to mint navigation web-links.
    pub base_url: String,
    /// Structural self-description keyword (`semistructured`, `relational`).
    pub structure: String,
    /// Native capabilities.
    pub capabilities: Capabilities,
    /// Simulated access latency.
    pub latency: LatencyModel,
}

impl SourceDescription {
    /// Convenience constructor with full capabilities and remote latency.
    pub fn remote(name: &str, content: &str, base_url: &str) -> Self {
        SourceDescription {
            name: name.to_string(),
            content: content.to_string(),
            base_url: base_url.to_string(),
            structure: "semistructured".to_string(),
            capabilities: Capabilities::full(),
            latency: LatencyModel::remote(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_constructor_defaults() {
        let d = SourceDescription::remote("GO", "gene ontology", "http://example/go");
        assert_eq!(d.name, "GO");
        assert_eq!(d.structure, "semistructured");
        assert!(d.capabilities.predicate_pushdown);
        assert_eq!(d.latency, LatencyModel::remote());
    }

    #[test]
    fn capability_presets_differ() {
        assert!(Capabilities::full().id_lookup);
        assert!(!Capabilities::scan_only().id_lookup);
        assert!(Capabilities::scan_only().full_scan);
    }
}
