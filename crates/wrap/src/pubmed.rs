//! The PubMed wrapper — the fourth-source extension.

use annoda_oem::{AtomicValue, DocSpec, HarvestText, OemStore, TextDoc};
use annoda_sources::PubmedDb;

use crate::descr::SourceDescription;
use crate::wrapper::{AccessIndexes, Wrapper};

/// Wraps a [`PubmedDb`] as the `PubMed` ANNODA-OML local model.
///
/// The model has `Citation` children under the `PubMed` root, each with
/// `Pmid` (Integer), `ArticleTitle`, `Year` (Integer), `Journal`,
/// `GeneSymbol` (multi-valued) and `Url` atoms — yet another vocabulary
/// for MDSM to bridge.
#[derive(Debug, Clone)]
pub struct PubmedWrapper {
    descr: SourceDescription,
    indexes: AccessIndexes,
    db: PubmedDb,
    oml: OemStore,
}

impl PubmedWrapper {
    /// Builds the wrapper and exports the initial OML.
    pub fn new(db: PubmedDb) -> Self {
        let descr = SourceDescription::remote(
            "PubMed",
            "literature citations linked to genes",
            "http://www.ncbi.nlm.nih.gov/pubmed",
        );
        let oml = export(&db);
        let indexes = AccessIndexes::build(
            &oml,
            "PubMed",
            &[("Citation", "GeneSymbol"), ("Citation", "Journal")],
        );
        PubmedWrapper {
            descr,
            indexes,
            db,
            oml,
        }
    }

    /// Read access to the native database.
    pub fn db(&self) -> &PubmedDb {
        &self.db
    }

    /// Mutable access to the native database.
    pub fn db_mut(&mut self) -> &mut PubmedDb {
        &mut self.db
    }
}

impl Wrapper for PubmedWrapper {
    fn description(&self) -> &SourceDescription {
        &self.descr
    }

    fn oml(&self) -> &OemStore {
        &self.oml
    }

    fn refresh(&mut self) -> usize {
        self.oml = export(&self.db);
        self.indexes = AccessIndexes::build(
            &self.oml,
            "PubMed",
            &[("Citation", "GeneSymbol"), ("Citation", "Journal")],
        );
        self.oml.len()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn indexes(&self) -> Option<&AccessIndexes> {
        Some(&self.indexes)
    }

    /// One document per citation: PMID keys the article title; the
    /// cited gene symbols are the ranked loci.
    fn text_docs(&self) -> Vec<TextDoc> {
        self.oml.harvest_docs(
            "PubMed",
            &DocSpec {
                entity: "Citation",
                key: "Pmid",
                text: &["ArticleTitle"],
                loci: &["GeneSymbol"],
            },
        )
    }
}

fn export(db: &PubmedDb) -> OemStore {
    let mut oml = OemStore::new();
    let root = oml.new_complex();
    for a in db.scan() {
        let c = oml
            .add_complex_child(root, "Citation")
            .expect("root complex");
        oml.add_atomic_child(c, "Pmid", AtomicValue::Int(a.pmid as i64))
            .expect("complex");
        oml.add_atomic_child(c, "ArticleTitle", a.title.as_str())
            .expect("complex");
        oml.add_atomic_child(c, "Year", AtomicValue::Int(a.year as i64))
            .expect("complex");
        oml.add_atomic_child(c, "Journal", a.journal.as_str())
            .expect("complex");
        for g in &a.gene_symbols {
            oml.add_atomic_child(c, "GeneSymbol", g.as_str())
                .expect("complex");
        }
        oml.add_atomic_child(c, "Url", AtomicValue::Url(a.url()))
            .expect("complex");
    }
    oml.set_name("PubMed", root).expect("fresh store");
    oml
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use annoda_sources::Article;

    fn small_db() -> PubmedDb {
        PubmedDb::from_articles([Article {
            pmid: 10_000_001,
            title: "p53 mutations in human cancers".into(),
            year: 1991,
            journal: "Science".into(),
            gene_symbols: vec!["TP53".into(), "MDM2".into()],
        }])
    }

    #[test]
    fn export_shape() {
        let w = PubmedWrapper::new(small_db());
        let oml = w.oml();
        let root = oml.named("PubMed").unwrap();
        let c = oml.child(root, "Citation").unwrap();
        assert_eq!(
            oml.child_value(c, "Pmid"),
            Some(&AtomicValue::Int(10_000_001))
        );
        assert_eq!(oml.children(c, "GeneSymbol").count(), 2);
        assert!(matches!(
            oml.child_value(c, "Url"),
            Some(AtomicValue::Url(_))
        ));
    }

    #[test]
    fn subquery_by_gene() {
        let w = PubmedWrapper::new(small_db());
        let mut cost = Cost::new();
        let res = w
            .subquery(
                r#"select C.ArticleTitle from PubMed.Citation C where C.GeneSymbol = "TP53""#,
                &mut cost,
            )
            .unwrap();
        assert_eq!(res.rows, 1);
        assert_eq!(
            res.column_text("ArticleTitle"),
            vec![Some("p53 mutations in human cancers".into())]
        );
    }

    #[test]
    fn refresh_picks_up_new_articles() {
        let mut w = PubmedWrapper::new(small_db());
        w.db_mut().upsert(Article {
            pmid: 2,
            title: "another".into(),
            year: 2000,
            journal: "Cell".into(),
            gene_symbols: vec![],
        });
        w.refresh();
        let mut cost = Cost::new();
        let res = w
            .subquery("select C from PubMed.Citation C", &mut cost)
            .unwrap();
        assert_eq!(res.rows, 2);
    }
}
