//! Simulated source-access cost accounting.
//!
//! The paper's sources are remote web databases; this reproduction runs
//! everything in-process, so network and source-side cost is *modelled*,
//! not slept. Every wrapper operation charges a [`Cost`] meter according
//! to the source's [`LatencyModel`]; the architecture benchmarks (B1/B4/
//! B5) report these virtual microseconds alongside wall time, which keeps
//! the *shape* of the comparison (who contacts which source how often)
//! independent of the host machine.

use std::ops::AddAssign;

/// Latency parameters of one (simulated) remote source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed cost per request round-trip, in virtual microseconds.
    pub per_request_us: u64,
    /// Marginal cost per record shipped, in virtual microseconds.
    pub per_record_us: u64,
}

impl LatencyModel {
    /// A typical 2005-era web database: ~40 ms round trip, 50 µs/record.
    pub fn remote() -> Self {
        LatencyModel {
            per_request_us: 40_000,
            per_record_us: 50,
        }
    }

    /// A warehouse-local store: no round trip, 1 µs/record.
    pub fn local() -> Self {
        LatencyModel {
            per_request_us: 100,
            per_record_us: 1,
        }
    }

    /// The virtual cost of one request shipping `records` records.
    pub fn request_cost(&self, records: u64) -> u64 {
        self.per_request_us + self.per_record_us * records
    }
}

/// Accumulated simulated cost of a (multi-source) operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Number of source requests issued.
    pub requests: u64,
    /// Number of records shipped from sources.
    pub records: u64,
    /// Total virtual microseconds.
    pub virtual_us: u64,
    /// Number of subqueries answered from the mediator's result cache
    /// instead of a source round trip (those charge no request and no
    /// virtual time).
    pub cache_hits: u64,
    /// *Measured* wall-clock microseconds spent blocked on the source,
    /// alongside the modelled `virtual_us`. Zero for purely in-process
    /// wrappers (their work is effectively free at this resolution);
    /// real for remote wrappers and for anything the mediator times
    /// around a scatter-gather round trip. Summing across subqueries
    /// gives total blocking time; the concurrent wall-clock lower bound
    /// is the per-phase max the mediator reports separately.
    pub wall_us: u64,
}

impl Cost {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cost of one cache-served subquery: no request, no records,
    /// no virtual time — just the hit recorded.
    pub fn cache_hit() -> Self {
        Cost {
            cache_hits: 1,
            ..Cost::default()
        }
    }

    /// Charges one request of `records` records under `model`.
    pub fn charge(&mut self, model: &LatencyModel, records: u64) {
        self.requests += 1;
        self.records += records;
        self.virtual_us += model.request_cost(records);
    }

    /// Virtual milliseconds, for reporting.
    pub fn virtual_ms(&self) -> f64 {
        self.virtual_us as f64 / 1000.0
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.requests += rhs.requests;
        self.records += rhs.records;
        self.virtual_us += rhs.virtual_us;
        self.cache_hits += rhs.cache_hits;
        self.wall_us += rhs.wall_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut c = Cost::new();
        let m = LatencyModel {
            per_request_us: 1000,
            per_record_us: 10,
        };
        c.charge(&m, 5);
        c.charge(&m, 0);
        assert_eq!(c.requests, 2);
        assert_eq!(c.records, 5);
        assert_eq!(c.virtual_us, 1000 + 50 + 1000);
        assert!((c.virtual_ms() - 2.05).abs() < 1e-9);
    }

    #[test]
    fn add_assign_merges_meters() {
        let m = LatencyModel::local();
        let mut a = Cost::new();
        a.charge(&m, 3);
        let mut b = Cost::new();
        b.charge(&m, 7);
        b += a;
        assert_eq!(b.requests, 2);
        assert_eq!(b.records, 10);
    }

    #[test]
    fn remote_dominates_local() {
        assert!(LatencyModel::remote().request_cost(10) > LatencyModel::local().request_cost(10));
    }
}
