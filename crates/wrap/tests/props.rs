//! Property tests for the wrapper layer: the index-backed access path
//! must be indistinguishable from the scan path on arbitrary data, and
//! the failure injector must honour its schedule exactly.

use proptest::prelude::*;

use annoda_oem::{AtomicValue, OemStore};
use annoda_wrap::{
    AccessIndexes, Cost, CustomWrapper, FailureMode, FlakyWrapper, SourceDescription, Wrapper,
};

/// Builds an OML of `Entity` objects with a multi-valued `Key` attribute
/// drawn from a small alphabet, plus a payload.
fn oml_from(keysets: &[Vec<String>]) -> OemStore {
    let mut oml = OemStore::new();
    let root = oml.new_complex();
    for (i, keys) in keysets.iter().enumerate() {
        let e = oml.add_complex_child(root, "Entity").unwrap();
        for k in keys {
            oml.add_atomic_child(e, "Key", k.as_str()).unwrap();
        }
        oml.add_atomic_child(e, "Payload", AtomicValue::Int(i as i64))
            .unwrap();
    }
    oml.set_name("S", root).unwrap();
    oml
}

/// An indexed wrapper over the same OML as a plain one.
struct Indexed {
    descr: SourceDescription,
    oml: OemStore,
    indexes: AccessIndexes,
}
impl Wrapper for Indexed {
    fn description(&self) -> &SourceDescription {
        &self.descr
    }
    fn oml(&self) -> &OemStore {
        &self.oml
    }
    fn refresh(&mut self) -> usize {
        self.oml.len()
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn indexes(&self) -> Option<&AccessIndexes> {
        Some(&self.indexes)
    }
}

fn key() -> impl Strategy<Value = String> {
    // Non-numeric keys (letters only) — the domain the index serves.
    proptest::string::string_regex("[a-d]{1,3}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_subqueries_equal_scans(
        keysets in proptest::collection::vec(
            proptest::collection::vec(key(), 0..3),
            0..10,
        ),
        probe in key(),
        extra in key(),
    ) {
        let oml = oml_from(&keysets);
        let plain = CustomWrapper::new(
            SourceDescription::remote("S", "scan", "http://s"),
            oml.clone(),
        );
        let indexed = Indexed {
            descr: SourceDescription::remote("S", "indexed", "http://s"),
            indexes: AccessIndexes::build(&oml, "S", &[("Entity", "Key")]),
            oml,
        };
        let queries = [
            format!(r#"select E.Payload from S.Entity E where E.Key = "{probe}""#),
            format!(
                r#"select E.Payload from S.Entity E where (E.Key = "{probe}" or E.Key = "{extra}")"#
            ),
        ];
        for q in &queries {
            let mut c1 = Cost::new();
            let scan = plain.subquery(q, &mut c1).unwrap();
            let mut c2 = Cost::new();
            let fast = indexed.subquery(q, &mut c2).unwrap();
            prop_assert!(fast.used_index, "fast path not taken for {q}");
            prop_assert!(!scan.used_index);
            prop_assert_eq!(scan.rows, fast.rows, "row counts differ for {}", q);
            prop_assert_eq!(
                scan.column_text("Payload"),
                fast.column_text("Payload"),
                "payloads differ for {}",
                q
            );
            prop_assert_eq!(c1, c2, "identical cost accounting");
        }
    }

    #[test]
    fn flaky_schedule_is_exact(n in 1u64..40, k in 1u64..6) {
        let oml = oml_from(&[vec!["a".to_string()]]);
        let w = FlakyWrapper::new(
            CustomWrapper::new(SourceDescription::remote("S", "", ""), oml),
            FailureMode::EveryNth(k),
        );
        let mut failures = 0u64;
        let mut cost = Cost::new();
        for _ in 0..n {
            if w.subquery("select E from S.Entity E", &mut cost).is_err() {
                failures += 1;
            }
        }
        prop_assert_eq!(failures, n / k);
        prop_assert_eq!(w.attempts(), n);
    }
}
