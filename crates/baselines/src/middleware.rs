//! SQL-middleware federation (DiscoveryLink style).
//!
//! A global schema, source wrappers, and a single access point — the
//! same skeleton as ANNODA — but queries are SQL against an
//! object-relational global schema, and the integrator performs **no
//! reconciliation of results**: rows from different sources are unioned
//! and disagreements pass through silently. There is also no
//! self-describing data model, no user annotations, and no runtime
//! plug-in of self-generated data (drivers are installed by DBAs, not
//! end users).
//!
//! Implementation note: the data path deliberately reuses the mediator
//! (wrappers + global schema + pushdown) so that the *architectural*
//! deltas — reconciliation, interface, extensibility — are the only
//! differences the probes and benchmarks observe.

use annoda_mediator::{GeneQuestion as MQ, Mediator, ReconcilePolicy};
use annoda_sources::{GoDb, LocusLinkDb, OmimDb};
use annoda_wrap::{GoWrapper, LocusLinkWrapper, OmimWrapper};

use crate::system::{
    GeneQuestion, IntegrationSystem, InterfaceKind, Reconciliation, SystemAnswer, SystemError,
};

/// The DiscoveryLink-style SQL middleware system.
pub struct MiddlewareSystem {
    mediator: Mediator,
}

impl MiddlewareSystem {
    /// Builds the middleware over the three sources.
    pub fn new(locuslink: LocusLinkDb, go: GoDb, omim: OmimDb) -> Self {
        let mut mediator = Mediator::new();
        mediator.policy = ReconcilePolicy::Union;
        mediator.register(Box::new(LocusLinkWrapper::new(locuslink)));
        mediator.register(Box::new(GoWrapper::new(go)));
        mediator.register(Box::new(OmimWrapper::new(omim)));
        MiddlewareSystem { mediator }
    }

    /// The SQL text a user would submit for a question — middleware
    /// users write SQL, they do not fill biological forms.
    pub fn sql_for(question: &GeneQuestion) -> String {
        let mut sql = String::from("SELECT g.* FROM gene g");
        let mut wheres: Vec<String> = Vec::new();
        if question.function.is_active() {
            sql.push_str(" LEFT JOIN annotation a ON a.symbol = g.symbol");
        }
        if question.disease.is_active() {
            sql.push_str(" LEFT JOIN disease d ON d.symbol = g.symbol");
        }
        if let Some(o) = &question.organism {
            wheres.push(format!("g.organism = '{o}'"));
        }
        if let Some(p) = &question.symbol_like {
            wheres.push(format!("g.symbol LIKE '{p}'"));
        }
        if question.function.is_active() {
            wheres.push("a.function_id IS NOT NULL".into());
        }
        if question.disease.is_active() {
            wheres.push("d.disease_id IS NULL".into());
        }
        if !wheres.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&wheres.join(" AND "));
        }
        sql
    }
}

impl IntegrationSystem for MiddlewareSystem {
    fn name(&self) -> &str {
        "DiscoveryLink (SQL middleware)"
    }

    fn architecture(&self) -> &'static str {
        "SQL middleware federation"
    }

    fn data_model(&self) -> &'static str {
        "Global schema using object-oriented model"
    }

    fn interface(&self) -> InterfaceKind {
        InterfaceKind::QueryLanguage("SQL")
    }

    fn reconciliation(&self) -> Reconciliation {
        Reconciliation::None
    }

    fn answer(&mut self, question: &GeneQuestion) -> Result<SystemAnswer, SystemError> {
        let q: &MQ = question;
        let answer = self
            .mediator
            .answer(q)
            .map_err(|e| SystemError::Internal(e.to_string()))?;
        Ok(SystemAnswer {
            genes: answer.fused.genes,
            // The union result ships as-is; no conflict report exists in
            // this architecture.
            conflicts: 0,
            cost: answer.cost,
        })
    }

    fn refresh(&mut self) -> usize {
        self.mediator.refresh_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annoda_sources::{Corpus, CorpusConfig};

    fn system() -> MiddlewareSystem {
        let c = Corpus::generate(CorpusConfig::tiny(42));
        MiddlewareSystem::new(c.locuslink, c.go, c.omim)
    }

    #[test]
    fn answers_like_a_federation_but_reports_no_conflicts() {
        let mut s = system();
        let ans = s.answer(&GeneQuestion::figure5()).unwrap();
        assert_eq!(ans.conflicts, 0);
        assert!(ans.cost.requests >= 3);
    }

    #[test]
    fn sql_rendering_reflects_the_question() {
        let sql = MiddlewareSystem::sql_for(&GeneQuestion::figure5());
        assert!(sql.contains("LEFT JOIN annotation"));
        assert!(sql.contains("d.disease_id IS NULL"));
        let sql2 = MiddlewareSystem::sql_for(&GeneQuestion {
            organism: Some("Homo sapiens".into()),
            ..GeneQuestion::default()
        });
        assert!(sql2.contains("g.organism = 'Homo sapiens'"));
    }

    #[test]
    fn no_annoda_extensions() {
        let mut s = system();
        assert!(!s.annotate("X", "note"));
        assert!(s.self_describe("X").is_none());
        assert!(!s.plug_user_source("mine", &[]));
        assert!(s.archive().is_none());
        assert!(s.eval("f", "X").is_none());
    }
}
