//! Hypertext navigation (SRS / Entrez style).
//!
//! The indexed-data-sources approach: the user queries one member
//! database, gets a page of results with cross-reference links, and
//! interactively follows links into the other databases. Integration is
//! achieved "with minimal effort", but there is no global schema, no
//! automated joins, and every link followed is a round trip.
//!
//! [`HypertextSystem::answer`] emulates a user mechanically clicking
//! through the question — one request per page view — which is exactly
//! why this architecture "does not support automated large-scale
//! analysis tasks": the request count scales with genes × links.

use annoda_mediator::fusion::{passes_question, DiseaseInfo, FunctionInfo, IntegratedGene};
use annoda_mediator::WebLink;
use annoda_sources::{GoDb, LocusLinkDb, LocusRecord, OmimDb};
use annoda_wrap::{Cost, LatencyModel};

use crate::system::{
    GeneQuestion, IntegrationSystem, InterfaceKind, Reconciliation, SystemAnswer, SystemError,
};

/// Genes listed per index page (pagination of the keyword search).
const PAGE_SIZE: usize = 20;

/// The SRS/Entrez-style link-navigation system.
pub struct HypertextSystem {
    locuslink: LocusLinkDb,
    go: GoDb,
    omim: OmimDb,
    latency: LatencyModel,
}

impl HypertextSystem {
    /// Builds the system over the native databases (hypertext systems
    /// index the sources directly; there is no wrapper layer).
    pub fn new(locuslink: LocusLinkDb, go: GoDb, omim: OmimDb) -> Self {
        HypertextSystem {
            locuslink,
            go,
            omim,
            latency: LatencyModel::remote(),
        }
    }

    /// One page view: the gene report for `symbol`, with its outgoing
    /// links. Charges a request.
    pub fn gene_page(&self, symbol: &str, cost: &mut Cost) -> Option<(LocusRecord, Vec<WebLink>)> {
        cost.charge(&self.latency, 1);
        let rec = self.locuslink.by_symbol(symbol)?.clone();
        let mut links = vec![WebLink::external("LocusLink", rec.url())];
        for g in &rec.go_ids {
            links.push(WebLink::external(
                "GO",
                format!("http://www.geneontology.org/term/{g}"),
            ));
        }
        for &m in &rec.omim_ids {
            links.push(WebLink::external(
                "OMIM",
                format!("http://www.ncbi.nlm.nih.gov/omim/{m}"),
            ));
        }
        Some((rec, links))
    }

    /// Follows a link to a GO term page. Charges a request.
    pub fn go_page(&self, term_id: &str, cost: &mut Cost) -> Option<FunctionInfo> {
        cost.charge(&self.latency, 1);
        let term = self.go.term(term_id)?;
        Some(FunctionInfo {
            id: term.id.clone(),
            name: Some(term.name.clone()),
            namespace: Some(term.namespace.as_str().to_string()),
            evidence: None,
            sources: vec!["GO".to_string()],
            link: WebLink::external("GO", term.url()),
        })
    }

    /// Follows a link to an OMIM entry page. Charges a request.
    pub fn omim_page(&self, mim: u32, cost: &mut Cost) -> Option<DiseaseInfo> {
        cost.charge(&self.latency, 1);
        let e = self.omim.by_mim(mim)?;
        Some(DiseaseInfo {
            id: mim.to_string(),
            name: Some(e.title.clone()),
            inheritance: e.inheritance.map(|i| i.as_str().to_string()),
            sources: vec!["OMIM".to_string()],
            link: WebLink::external("OMIM", e.url()),
        })
    }
}

impl IntegrationSystem for HypertextSystem {
    fn name(&self) -> &str {
        "SRS/Entrez (hypertext)"
    }

    fn architecture(&self) -> &'static str {
        "hypertext navigation"
    }

    fn data_model(&self) -> &'static str {
        "Indexed flat files with cross-reference links; no global schema"
    }

    fn interface(&self) -> InterfaceKind {
        InterfaceKind::QueryLanguage("keyword search + manual link navigation")
    }

    fn reconciliation(&self) -> Reconciliation {
        Reconciliation::None
    }

    /// Emulates the user clicking through the whole corpus: page through
    /// the gene index, open every gene report, follow every GO and OMIM
    /// link, and keep the genes whose pages satisfy the question. The
    /// cost is the point: requests ≈ genes × (1 + links).
    fn answer(&mut self, question: &GeneQuestion) -> Result<SystemAnswer, SystemError> {
        let mut cost = Cost::new();
        let symbols: Vec<String> = self.locuslink.scan().map(|r| r.symbol.clone()).collect();
        // Index pages.
        for _ in symbols.chunks(PAGE_SIZE) {
            cost.charge(&self.latency, PAGE_SIZE as u64);
        }
        let mut genes = Vec::new();
        for symbol in &symbols {
            let Some((rec, _links)) = self.gene_page(symbol, &mut cost) else {
                continue;
            };
            let mut functions = Vec::new();
            for g in &rec.go_ids {
                if let Some(f) = self.go_page(g, &mut cost) {
                    functions.push(f);
                }
            }
            let mut diseases = Vec::new();
            for &m in &rec.omim_ids {
                if let Some(d) = self.omim_page(m, &mut cost) {
                    diseases.push(d);
                }
            }
            let gene = IntegratedGene {
                symbol: rec.symbol.clone(),
                gene_id: Some(rec.locus_id as i64),
                organism: Some(rec.organism.clone()),
                description: Some(rec.description.clone()),
                position: Some(rec.position.clone()),
                functions,
                diseases,
                publications: Vec::new(), // link navigation / the expert
                // program do not consult PubMed
                links: vec![WebLink::external("LocusLink", rec.url())],
            };
            // The "user" applies the conditions by reading the pages.
            if passes_question(question, &gene) {
                genes.push(gene);
            }
        }
        genes.sort_by(|a, b| a.symbol.cmp(&b.symbol));
        Ok(SystemAnswer {
            genes,
            conflicts: 0, // link navigation cannot see disagreements
            cost,
        })
    }

    fn refresh(&mut self) -> usize {
        // Hypertext reads the live sources; nothing is cached.
        self.locuslink.len() + self.go.term_count() + self.omim.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annoda_mediator::decompose::AspectClause;
    use annoda_sources::{Corpus, CorpusConfig};

    fn system() -> HypertextSystem {
        let c = Corpus::generate(CorpusConfig::tiny(42));
        HypertextSystem::new(c.locuslink, c.go, c.omim)
    }

    #[test]
    fn page_views_charge_requests() {
        let s = system();
        let mut cost = Cost::new();
        let symbol = s.locuslink.scan().next().unwrap().symbol.clone();
        let (rec, links) = s.gene_page(&symbol, &mut cost).unwrap();
        assert_eq!(cost.requests, 1);
        assert_eq!(rec.symbol, symbol);
        assert!(!links.is_empty());
        assert!(s.gene_page("NO_SUCH_GENE", &mut cost).is_none());
    }

    #[test]
    fn answer_cost_scales_with_navigation() {
        let mut s = system();
        let q = GeneQuestion::figure5();
        let ans = s.answer(&q).unwrap();
        // Every gene page was opened plus every cross link followed.
        let min_requests = s.locuslink.len() as u64;
        assert!(
            ans.cost.requests > min_requests,
            "navigation must dominate: {} requests",
            ans.cost.requests
        );
        assert_eq!(ans.conflicts, 0);
    }

    #[test]
    fn figure5_semantics_match_the_gene_side_of_the_data() {
        // Hypertext only sees the locus record's own links, so the
        // answer is: genes with GO links and no OMIM links.
        let mut s = system();
        let ans = s.answer(&GeneQuestion::figure5()).unwrap();
        for g in &ans.genes {
            assert!(!g.functions.is_empty());
            assert!(g.diseases.is_empty());
        }
        // And it misses GO-side-only annotations by construction: a gene
        // whose only GO evidence lives in GO's annotation table is not
        // reachable by link navigation from the locus page.
        let q = GeneQuestion {
            function: AspectClause::Require(None),
            ..GeneQuestion::default()
        };
        let from_pages = s.answer(&q).unwrap().genes.len();
        let with_go_side = s
            .locuslink
            .scan()
            .filter(|r| {
                !r.go_ids.is_empty() || s.go.annotations_of_gene(&r.symbol).next().is_some()
            })
            .count();
        assert!(from_pages <= with_go_side);
    }
}
