//! The common surface every integration architecture implements.
//!
//! The Table 1 probes and the quantitative benchmarks drive all systems
//! through this trait. Methods default to "not supported" so each
//! architecture only implements what it genuinely offers — the probes
//! then *observe* the differences rather than reading a feature list.

use std::fmt;
use std::sync::Arc;

pub use annoda_mediator::decompose::GeneQuestion;
use annoda_mediator::IntegratedGene;
use annoda_wrap::Cost;

/// How the user expresses queries against the system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterfaceKind {
    /// Structured biological questions (no query-language knowledge).
    BiologicalForm,
    /// A query language the user must know (SQL, OQL, CPL).
    QueryLanguage(&'static str),
}

impl fmt::Display for InterfaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterfaceKind::BiologicalForm => {
                write!(
                    f,
                    "Require Biological terms and knowledge; No require knowledge of SQL"
                )
            }
            InterfaceKind::QueryLanguage(l) => write!(f, "Require knowledge of {l}"),
        }
    }
}

/// When (if ever) the system reconciles inconsistent sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reconciliation {
    /// Results are shipped as-is; disagreements pass through silently.
    None,
    /// Data is reconciled and cleansed when loaded into the repository.
    AtLoad,
    /// Results are reconciled at query time, with conflicts reported.
    AtQuery,
}

/// An answer from any system, in the common integrated form.
#[derive(Debug, Clone)]
pub struct SystemAnswer {
    /// Integrated genes passing the question.
    pub genes: Vec<IntegratedGene>,
    /// Conflicts the system *detected* (0 for non-reconciling systems
    /// even when the data disagrees — that is the point of row 8).
    pub conflicts: usize,
    /// Simulated source-access cost of producing the answer.
    pub cost: Cost,
}

/// Errors a system may raise while answering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// The architecture cannot answer this automatically.
    Unsupported(String),
    /// An internal failure (wrapper, query, …).
    Internal(String),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Unsupported(what) => write!(f, "not supported: {what}"),
            SystemError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for SystemError {}

/// A user-registered specialty evaluation function over integrated genes
/// (Table 1 row 14).
pub type EvalFn = Arc<dyn Fn(&IntegratedGene) -> f64 + Send + Sync>;

/// Statistics for one query run, used by the architecture benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Genes returned.
    pub genes: usize,
    /// Conflicts detected.
    pub conflicts: usize,
    /// Source requests issued.
    pub requests: u64,
    /// Records shipped.
    pub records: u64,
    /// Simulated microseconds.
    pub virtual_us: u64,
}

impl QueryStats {
    /// Derives stats from an answer.
    pub fn of(answer: &SystemAnswer) -> Self {
        QueryStats {
            genes: answer.genes.len(),
            conflicts: answer.conflicts,
            requests: answer.cost.requests,
            records: answer.cost.records,
            virtual_us: answer.cost.virtual_us,
        }
    }
}

/// One integration architecture over the wrapped annotation sources.
pub trait IntegrationSystem {
    /// Display name (`ANNODA`, `K2/Kleisli`, …).
    fn name(&self) -> &str;

    /// The architecture class (`federated`, `warehouse`, …).
    fn architecture(&self) -> &'static str;

    /// The global data-model answer for Table 1 row 2.
    fn data_model(&self) -> &'static str;

    /// How users pose queries (row 4).
    fn interface(&self) -> InterfaceKind;

    /// When the system reconciles (row 8) — verified behaviourally by
    /// the probe against the conflicts the answer reports.
    fn reconciliation(&self) -> Reconciliation;

    /// Answers a biological question through the architecture's own
    /// machinery (for query-language systems this runs the equivalent
    /// canned expert program).
    fn answer(&mut self, question: &GeneQuestion) -> Result<SystemAnswer, SystemError>;

    /// Propagates native-source updates into the system (re-export /
    /// re-ETL). Returns the number of objects now visible.
    fn refresh(&mut self) -> usize;

    /// Attaches a user annotation to an integrated object (row 11).
    fn annotate(&mut self, _symbol: &str, _note: &str) -> bool {
        false
    }

    /// User annotations previously attached (row 11).
    fn annotations_of(&self, _symbol: &str) -> Vec<String> {
        Vec::new()
    }

    /// The self-describing (OEM textual) form of one integrated object
    /// (row 12).
    fn self_describe(&mut self, _symbol: &str) -> Option<String> {
        None
    }

    /// Plugs in a self-generated data source at runtime (row 13).
    fn plug_user_source(&mut self, _name: &str, _items: &[(String, String)]) -> bool {
        false
    }

    /// Registers a specialty evaluation function (row 14).
    fn register_eval_fn(&mut self, _name: &str, _f: EvalFn) -> bool {
        false
    }

    /// Evaluates a registered function over a symbol's integrated record
    /// (row 14).
    fn eval(&mut self, _fn_name: &str, _symbol: &str) -> Option<f64> {
        None
    }

    /// Takes an archival snapshot; returns the number of archived
    /// objects (row 15).
    fn archive(&mut self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_kind_displays() {
        assert!(InterfaceKind::BiologicalForm
            .to_string()
            .contains("Biological"));
        assert!(!InterfaceKind::BiologicalForm.to_string().contains("SQL\""));
        assert!(InterfaceKind::QueryLanguage("SQL")
            .to_string()
            .contains("SQL"));
    }

    #[test]
    fn stats_derive_from_answer() {
        let a = SystemAnswer {
            genes: vec![],
            conflicts: 3,
            cost: Cost {
                requests: 2,
                records: 10,
                virtual_us: 999,
                ..Cost::default()
            },
        };
        let s = QueryStats::of(&a);
        assert_eq!(s.conflicts, 3);
        assert_eq!(s.requests, 2);
        assert_eq!(s.virtual_us, 999);
        assert_eq!(s.genes, 0);
    }
}
