//! # annoda-baselines — the rival integration architectures
//!
//! Section 2 of the paper classifies bioinformatics database
//! interoperation into four approaches; Section 5 compares ANNODA against
//! the three systems closest to it (K2/Kleisli, DiscoveryLink, GUS). To
//! regenerate Table 1 and to quantify the architectural trade-offs, this
//! crate implements each approach as a *runnable system over the same
//! wrapped sources*:
//!
//! * [`hypertext`] — indexed link navigation (SRS / Entrez style): query
//!   one source, then follow cross-reference links interactively; no
//!   global schema, no automated joins;
//! * [`multidb`] — unmediated multidatabase queries (CPL/Kleisli style):
//!   the user writes one subquery **per source in the source's own
//!   vocabulary** and combines results in user code; format/access
//!   transparency without schema transparency;
//! * [`middleware`] — SQL-middleware federation (DiscoveryLink style):
//!   global schema and single access point, but **no reconciliation** of
//!   inconsistent results and no semi-structured self-description;
//! * [`warehouse`] — materialised integration (GUS style): an ETL pass
//!   translates every source into one warehouse store; queries are local
//!   and fast, data is reconciled at load, but results go **stale**
//!   between refreshes;
//! * [`probe`] — the capability probes behind each Table 1 row, executed
//!   against any [`IntegrationSystem`].
//!
//! All systems implement [`IntegrationSystem`], so the Table 1 harness
//! and the architecture benchmarks drive them uniformly.

pub mod hypertext;
pub mod middleware;
pub mod multidb;
pub mod probe;
pub mod system;
pub mod warehouse;

pub use hypertext::HypertextSystem;
pub use middleware::MiddlewareSystem;
pub use multidb::MultiDbSystem;
pub use probe::{probe_all, probe_row, Capability, ProbeOutcome, TABLE1_ROWS};
pub use system::{
    EvalFn, GeneQuestion, IntegrationSystem, InterfaceKind, QueryStats, Reconciliation,
    SystemAnswer, SystemError,
};
pub use warehouse::WarehouseSystem;
