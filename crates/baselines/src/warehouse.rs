//! Data warehousing (GUS style).
//!
//! An ETL pass extracts every source, translates it into the warehouse
//! schema, reconciles and cleanses it, and loads one materialised store.
//! Queries then run locally — fast and with integrated results — but
//! the warehouse goes **stale** between refreshes, and every refresh
//! repeats the full extraction cost. GUS-style systems additionally
//! support user annotations on warehouse rows, integration of
//! self-generated data, and archival snapshots; Table 1 credits them for
//! exactly those rows.

use std::collections::HashMap;

use annoda_mediator::fusion::passes_question;
use annoda_mediator::{
    GeneQuestion as MQ, IntegratedGene, Mediator, OptimizerConfig, ReconcilePolicy,
};
use annoda_oem::OemStore;
use annoda_sources::{GoDb, LocusLinkDb, OmimDb};
use annoda_wrap::{Cost, GoWrapper, LatencyModel, LocusLinkWrapper, OmimWrapper};

use crate::system::{
    GeneQuestion, IntegrationSystem, InterfaceKind, Reconciliation, SystemAnswer, SystemError,
};

/// The GUS-style warehouse.
pub struct WarehouseSystem {
    /// Used only at ETL time (extraction from the remote sources).
    mediator: Mediator,
    /// The materialised, reconciled store.
    store: Vec<IntegratedGene>,
    /// Conflicts cleansed during the last load.
    cleansed_at_load: usize,
    /// Cumulative ETL cost (extraction is the expensive part).
    etl_cost: Cost,
    /// User annotations on warehouse rows.
    annotations: HashMap<String, Vec<String>>,
    /// Archived snapshots: (version, genes archived).
    archives: Vec<(usize, usize)>,
    version: usize,
    local: LatencyModel,
    /// Per-source OML snapshots taken at the last load, for the
    /// diff-driven incremental refresh.
    oml_snapshots: HashMap<String, OemStore>,
}

impl WarehouseSystem {
    /// Builds the warehouse and runs the initial ETL load.
    pub fn new(locuslink: LocusLinkDb, go: GoDb, omim: OmimDb) -> Self {
        let mut mediator = Mediator::new();
        mediator.policy = ReconcilePolicy::Union;
        // ETL extracts everything; no pushdown, no source selection.
        mediator.optimizer = OptimizerConfig {
            pushdown: false,
            source_selection: false,
            bind_join: false,
        };
        mediator.register(Box::new(LocusLinkWrapper::new(locuslink)));
        mediator.register(Box::new(GoWrapper::new(go)));
        mediator.register(Box::new(OmimWrapper::new(omim)));
        let mut wh = WarehouseSystem {
            mediator,
            store: Vec::new(),
            cleansed_at_load: 0,
            etl_cost: Cost::new(),
            annotations: HashMap::new(),
            archives: Vec::new(),
            version: 0,
            local: LatencyModel::local(),
            oml_snapshots: HashMap::new(),
        };
        wh.load();
        wh
    }

    /// The ETL pass: extract all sources, reconcile, materialise.
    pub fn load(&mut self) -> usize {
        let answer = self
            .mediator
            .answer(&MQ::default())
            .expect("ETL over registered sources");
        self.etl_cost += answer.cost;
        self.cleansed_at_load = answer.fused.conflicts.len();
        self.store = answer.fused.genes;
        self.version += 1;
        // Snapshot the OMLs so the next refresh can detect change.
        self.oml_snapshots = self
            .mediator
            .sources()
            .iter()
            .map(|d| d.name.clone())
            .collect::<Vec<_>>()
            .into_iter()
            .filter_map(|name| {
                self.mediator
                    .wrapper(&name)
                    .map(|w| (name.clone(), w.oml().clone()))
            })
            .collect();
        self.store.len()
    }

    /// Diff-driven incremental refresh: re-export every OML and compare
    /// it structurally against the snapshot taken at the last load; run
    /// the expensive ETL only when some source actually changed.
    /// Returns the number of sources that changed.
    pub fn refresh_incremental(&mut self) -> usize {
        self.mediator.refresh_all();
        let names: Vec<String> = self
            .mediator
            .sources()
            .iter()
            .map(|d| d.name.clone())
            .collect();
        let mut changed = 0usize;
        for name in names {
            let Some(wrapper) = self.mediator.wrapper(&name) else {
                continue;
            };
            let fresh = wrapper.oml();
            let unchanged = match self.oml_snapshots.get(&name) {
                Some(old) => match (old.named(&name), fresh.named(&name)) {
                    (Some(ra), Some(rb)) => annoda_oem::graph::diff(old, ra, fresh, rb).is_empty(),
                    _ => false,
                },
                None => false,
            };
            if !unchanged {
                changed += 1;
            }
        }
        if changed > 0 {
            self.load();
        }
        changed
    }

    /// Conflicts reconciled and cleansed during the last load.
    pub fn cleansed_at_load(&self) -> usize {
        self.cleansed_at_load
    }

    /// Cumulative extraction cost across loads.
    pub fn etl_cost(&self) -> Cost {
        self.etl_cost
    }

    /// The current warehouse version (increments per load).
    pub fn version(&self) -> usize {
        self.version
    }

    /// Mutable access to the underlying mediator's wrappers — the
    /// freshness experiment updates the native sources through this.
    pub fn mediator_mut(&mut self) -> &mut Mediator {
        &mut self.mediator
    }
}

impl IntegrationSystem for WarehouseSystem {
    fn name(&self) -> &str {
        "GUS (data warehouse)"
    }

    fn architecture(&self) -> &'static str {
        "data warehouse"
    }

    fn data_model(&self) -> &'static str {
        "GUS schema based on relational model; OO views"
    }

    fn interface(&self) -> InterfaceKind {
        InterfaceKind::QueryLanguage("SQL")
    }

    fn reconciliation(&self) -> Reconciliation {
        Reconciliation::AtLoad
    }

    /// Queries run against the local materialised store: one local
    /// "request" scanning the warehouse — no source round trips.
    fn answer(&mut self, question: &GeneQuestion) -> Result<SystemAnswer, SystemError> {
        let mut cost = Cost::new();
        cost.charge(&self.local, self.store.len() as u64);
        let genes: Vec<IntegratedGene> = self
            .store
            .iter()
            .filter(|g| passes_question(question, g))
            .cloned()
            .collect();
        Ok(SystemAnswer {
            genes,
            conflicts: 0, // already cleansed at load
            cost,
        })
    }

    /// Refresh = full re-ETL (the expensive warehouse maintenance).
    fn refresh(&mut self) -> usize {
        self.mediator.refresh_all();
        self.load()
    }

    fn annotate(&mut self, symbol: &str, note: &str) -> bool {
        if self.store.iter().any(|g| g.symbol == symbol) {
            self.annotations
                .entry(symbol.to_string())
                .or_default()
                .push(note.to_string());
            true
        } else {
            false
        }
    }

    fn annotations_of(&self, symbol: &str) -> Vec<String> {
        self.annotations.get(symbol).cloned().unwrap_or_default()
    }

    fn plug_user_source(&mut self, name: &str, items: &[(String, String)]) -> bool {
        // Self-generated data is loaded into the warehouse like any
        // other extraction: notes land on the matching rows.
        let mut loaded = false;
        for (symbol, note) in items {
            if self.store.iter().any(|g| &g.symbol == symbol) {
                self.annotations
                    .entry(symbol.clone())
                    .or_default()
                    .push(format!("[{name}] {note}"));
                loaded = true;
            }
        }
        loaded
    }

    fn archive(&mut self) -> Option<usize> {
        self.archives.push((self.version, self.store.len()));
        Some(self.store.len())
    }

    fn self_describe(&mut self, _symbol: &str) -> Option<String> {
        None // relational rows are not self-describing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annoda_sources::{Corpus, CorpusConfig};
    use annoda_wrap::Wrapper;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::tiny(42))
    }

    fn system() -> WarehouseSystem {
        let c = corpus();
        WarehouseSystem::new(c.locuslink, c.go, c.omim)
    }

    #[test]
    fn queries_are_local_after_load() {
        let mut s = system();
        let etl = s.etl_cost();
        assert!(etl.requests >= 3, "load contacted every source");
        let ans = s.answer(&GeneQuestion::figure5()).unwrap();
        assert_eq!(ans.cost.requests, 1, "one local scan");
        assert!(
            ans.cost.virtual_us < etl.virtual_us,
            "query {} must be far cheaper than ETL {}",
            ans.cost.virtual_us,
            etl.virtual_us
        );
    }

    #[test]
    fn conflicts_are_cleansed_at_load_not_at_query() {
        let c = Corpus::generate(CorpusConfig {
            loci: 60,
            go_terms: 30,
            omim_entries: 20,
            seed: 9,
            inconsistency_rate: 0.5,
        });
        let mut s = WarehouseSystem::new(c.locuslink, c.go, c.omim);
        assert!(s.cleansed_at_load() > 0);
        let ans = s.answer(&GeneQuestion::default()).unwrap();
        assert_eq!(ans.conflicts, 0);
    }

    #[test]
    fn staleness_until_refresh() {
        let mut s = system();
        // Update a native source through the mediator's wrapper.
        let symbol = s.store[0].symbol.clone();
        {
            let w = s
                .mediator_mut()
                .wrapper_mut("LocusLink")
                .unwrap()
                .as_any_mut()
                .downcast_mut::<annoda_wrap::LocusLinkWrapper>()
                .unwrap();
            let id = w.db().by_symbol(&symbol).unwrap().locus_id;
            w.db_mut().by_id_mut(id).unwrap().description = "FRESH DESCRIPTION".into();
            w.refresh();
        }
        // The warehouse still serves the stale row…
        let stale = s.answer(&GeneQuestion::default()).unwrap();
        let row = stale.genes.iter().find(|g| g.symbol == symbol).unwrap();
        assert_ne!(row.description.as_deref(), Some("FRESH DESCRIPTION"));
        // …until the ETL re-runs.
        let v = s.version();
        s.refresh();
        assert_eq!(s.version(), v + 1);
        let fresh = s.answer(&GeneQuestion::default()).unwrap();
        let row = fresh.genes.iter().find(|g| g.symbol == symbol).unwrap();
        assert_eq!(row.description.as_deref(), Some("FRESH DESCRIPTION"));
    }

    #[test]
    fn incremental_refresh_skips_unchanged_sources() {
        let mut s = system();
        let etl_before = s.etl_cost();
        let v = s.version();
        // Nothing changed: no re-ETL.
        assert_eq!(s.refresh_incremental(), 0);
        assert_eq!(s.version(), v);
        assert_eq!(s.etl_cost(), etl_before, "no extraction cost paid");

        // Change one native source: exactly one source reports change
        // and the warehouse reloads.
        let symbol = s.store[0].symbol.clone();
        {
            let w = s
                .mediator_mut()
                .wrapper_mut("LocusLink")
                .unwrap()
                .as_any_mut()
                .downcast_mut::<annoda_wrap::LocusLinkWrapper>()
                .unwrap();
            let id = w.db().by_symbol(&symbol).unwrap().locus_id;
            w.db_mut().by_id_mut(id).unwrap().description = "CHANGED".into();
        }
        assert_eq!(s.refresh_incremental(), 1);
        assert_eq!(s.version(), v + 1);
        assert!(s.etl_cost().virtual_us > etl_before.virtual_us);
        let row = s
            .answer(&GeneQuestion::default())
            .unwrap()
            .genes
            .into_iter()
            .find(|g| g.symbol == symbol)
            .unwrap();
        assert_eq!(row.description.as_deref(), Some("CHANGED"));
    }

    #[test]
    fn gus_features_annotations_plugin_archive() {
        let mut s = system();
        let symbol = s.store[0].symbol.clone();
        assert!(s.annotate(&symbol, "my observation"));
        assert!(!s.annotate("NO_SUCH", "x"));
        assert_eq!(s.annotations_of(&symbol), vec!["my observation"]);
        assert!(s.plug_user_source("lab-data", &[(symbol.clone(), "expr high".into())]));
        assert_eq!(s.annotations_of(&symbol).len(), 2);
        assert_eq!(s.archive(), Some(s.store.len()));
        // But no self-describing model.
        assert!(s.self_describe(&symbol).is_none());
    }
}
